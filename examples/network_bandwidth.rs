//! Network Objects (§6): communication resources under reservations.
//!
//! Two sites are connected by a 100 Mbps WAN link guarded by a Network
//! Object. Wide-area stencil applications need 40 Mbps of halo traffic
//! each; the Network Broker co-allocates link bandwidth the way the
//! Enactor co-allocates hosts. When the link fills, admission control
//! refuses the placement *before* any object starts, and the
//! application falls back to a single-site plan.
//!
//! Run with: `cargo run --example network_bandwidth`

use legion::network::{grid_edges, NetworkBroker, NetworkDirectory};
use legion::prelude::*;
use legion::schedulers::GridSpec;

fn main() {
    let tb = Testbed::build(TestbedConfig::wide(2, 8, 808));
    let grid = GridSpec::new(4, 4);
    let class = tb.register_class("wide-app", 10, 32);
    tb.tick(SimDuration::from_secs(1));

    // One Network Object per inter-domain link, 100 Mbps each.
    let netdir = NetworkDirectory::for_fabric(&tb.fabric, 100, 3);
    let broker = NetworkBroker::new(netdir);
    let link = broker
        .directory()
        .lookup(legion::fabric::DomainId(0), legion::fabric::DomainId(1))
        .expect("the 0-1 link is managed");
    println!(
        "WAN link site0-site1: {} Mbps capacity, guarded by Network Object {}\n",
        link.capacity_mbps(),
        link.loid()
    );

    let scheduler = StencilScheduler::new(grid);
    for app in 1..=3 {
        // The banded placement splits the grid across both sites; its
        // boundary row needs 4 edges x 10 Mbps on the WAN link.
        let sched = scheduler
            .compute_schedule(&PlacementRequest::new().class(class, 16), &tb.ctx())
            .expect("schedule");
        let hosts: Vec<Loid> =
            sched.schedules[0].master.mappings.iter().map(|m| m.host).collect();
        let edges = grid_edges(&hosts, grid.rows, grid.cols, 10);
        let demand = NetworkBroker::demand_for_edges(&tb.fabric, &edges);
        let mbps: u32 = demand.values().sum();
        let now = tb.fabric.clock().now();

        match broker.reserve(class, &demand, SimDuration::from_secs(3600), now) {
            Ok(plan) => {
                broker.confirm(&plan, now).expect("confirm");
                println!(
                    "app {app}: cross-site placement granted ({mbps} Mbps); link now {}/{} Mbps",
                    link.held_mbps(now),
                    link.capacity_mbps()
                );
            }
            Err(e) => {
                println!("app {app}: refused by the Network Object ({e})");
                // Fall back: place inside site0 only — no WAN demand.
                let req = PlacementRequest::new().class_where(
                    class,
                    16,
                    r#"$host_domain == "site0.edu""#,
                );
                match scheduler.compute_schedule(&req, &tb.ctx()) {
                    Ok(_) => println!(
                        "         fallback: single-site placement in site0.edu (0 Mbps WAN)"
                    ),
                    Err(e) => println!("         fallback failed too: {e}"),
                }
            }
        }
    }

    println!(
        "\nThe link object applies the same Table 2 reservation semantics as\n\
         Hosts — bandwidth is just another resource with a guardian."
    );
}
