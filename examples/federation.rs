//! Site autonomy and co-allocation across a federation.
//!
//! "we have two goals which can often be at odds: users want to optimize
//! ... while administrators want to ensure that their systems are safe
//! and secure, and will grant resource access according to their own
//! policies." (§1)
//!
//! Four administrative domains; each applies its own local policies:
//! site0 accepts everyone, site1 refuses requests from site3, site2 only
//! accepts work at night (virtual time), site3 caps load. The Enactor
//! co-allocates one instance per domain on behalf of a requester in
//! site3 and must route around the refusals with variant schedules.
//!
//! Run with: `cargo run --example federation`

use legion::hosts::{DomainRefusal, LoadCeiling, TimeOfDayWindow};
use legion::prelude::*;
use legion::schedule::{
    MasterSchedule, ScheduleRequest, ScheduleRequestList, VariantSchedule,
};
use std::sync::Arc;

fn main() {
    let tb = Testbed::build(TestbedConfig::wide(4, 3, 777));
    let class = tb.register_class("federated-app", 50, 64);
    tb.tick(SimDuration::from_secs(1));

    // Administrators express their policies (paper §3.1).
    println!("site policies:");
    println!("  site0.edu: accept all");
    println!("  site1.edu: refuse requests from site3.edu");
    println!("  site2.edu: accept external work 18:00-08:00 only");
    println!("  site3.edu: refuse when load > 0.5");
    for (i, h) in tb.unix_hosts.iter().enumerate() {
        match i / 3 {
            1 => h.add_policy(Arc::new(DomainRefusal::new(["site3.edu"]))),
            2 => h.add_policy(Arc::new(TimeOfDayWindow { from_hour: 18, to_hour: 8 })),
            3 => h.add_policy(Arc::new(LoadCeiling { max_load: 0.5 })),
            _ => {}
        }
    }

    // The requester lives in site3.edu; it wants one instance in every
    // domain (co-allocation), with the other hosts of each domain as
    // variant spares.
    let m = |d: usize, i: usize| {
        Mapping::new(class, tb.unix_hosts[d * 3 + i].loid(), tb.vault_loids[d])
    };
    let master: Vec<Mapping> = (0..4).map(|d| m(d, 0)).collect();
    let mut sched = ScheduleRequest { master: MasterSchedule::new(master), variants: vec![] };
    for v in 1..3 {
        let repl: Vec<(usize, Mapping)> = (0..4).map(|d| (d, m(d, v))).collect();
        sched = sched.with_variant(VariantSchedule::replacing(4, &repl));
    }
    let request = ScheduleRequestList { schedules: vec![sched] };

    let enactor = Enactor::with_config(
        tb.fabric.clone(),
        EnactorConfig { requester_domain: Some("site3.edu".into()), ..Default::default() },
    );

    // Attempt at noon (virtual): site2 refuses daytime work, site1
    // refuses site3 outright — co-allocation cannot complete.
    tb.fabric.clock().advance_to(SimTime::from_secs(12 * 3600));
    let fb = enactor.make_reservations(&request);
    println!("\nat 12:00 virtual: reserved = {} (site1 refuses us; site2 is closed)", fb.reserved());

    // Retry at 02:00 the next virtual day: site2 is open, but site1
    // still refuses site3 — only a schedule avoiding site1 can work.
    tb.fabric.clock().advance_to(SimTime::from_secs(26 * 3600));
    let fb = enactor.make_reservations(&request);
    println!("at 02:00 virtual: reserved = {} (site1 still refuses site3)", fb.reserved());

    // The requester adapts: replace site1 with a second instance in
    // site0 — autonomy respected, application served.
    let master = vec![m(0, 0), m(0, 1), m(2, 0), m(3, 0)];
    let adapted = ScheduleRequestList::single(master);
    let fb = enactor.make_reservations(&adapted);
    println!("adapted schedule (skip site1): reserved = {}", fb.reserved());
    if fb.reserved() {
        let placed = enactor.enact_schedule(&fb).expect("enactment");
        println!("\nco-allocated {} instances:", placed.len());
        for (mapping, instance) in placed {
            let host = tb.fabric.lookup_host(mapping.host).expect("host exists");
            let dom = host
                .attributes()
                .get_str(legion::core::host::well_known::DOMAIN)
                .unwrap_or("?")
                .to_string();
            println!("  {instance} in {dom}");
        }
    }

    let m = tb.fabric.metrics().snapshot();
    println!(
        "\nnegotiation cost: {} reservation calls, {} denied by policy/capacity, {} granted",
        m.reservation_requests, m.reservations_denied, m.reservations_granted
    );
}
