//! A drill for the closed-loop rebalancer: skewed load plus churn,
//! swept to convergence, then replayed from the trace.
//!
//! Ten 0.2-CPU objects start piled five-and-five on two hosts of a
//! nine-host bed. The [`Rebalancer`] sweeps every 30 s, detecting
//! hotspots against the hysteresis band, planning budget-bounded
//! migrations, and checking convergence — each sweep one traced
//! `rebalance` episode with `detect → plan → migrate → converge`
//! spans. Mid-drill the hottest host crashes (churn): the Watchdog
//! restarts its objects from their vault OPRs, piling them onto one
//! acceptor, and later sweeps dissolve that pile too.
//!
//! Run with: `cargo run --example rebalance_drill`

use legion::core::ObjectSpec;
use legion::prelude::*;

/// Starts `n` 0.2-CPU objects directly on one host (the skew).
fn pile_on(tb: &Testbed, class: Loid, host_idx: usize, n: usize) {
    let h = &tb.unix_hosts[host_idx];
    let vault = h.get_compatible_vaults()[0];
    for _ in 0..n {
        let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(1 << 20))
            .with_demand(20, 48);
        let tok = h.make_reservation(&req, tb.fabric.clock().now()).expect("skew reservation");
        let obj = h
            .start_object(&tok, &[ObjectSpec::new(class)], tb.fabric.clock().now())
            .expect("skew start")[0];
        tb.fabric.lookup_class(class).unwrap().note_instance_location(obj, h.loid());
    }
}

fn main() {
    let tb = Testbed::build(TestbedConfig::wide(3, 3, 42));
    let class = tb.register_class("drill-app", 20, 48);
    let sink = tb.fabric.enable_tracing();
    tb.tick(SimDuration::from_secs(1));

    pile_on(&tb, class, 0, 5);
    pile_on(&tb, class, 1, 5);
    println!("skew installed: 5 + 5 objects on {} and {}", tb.host_loids[0], tb.host_loids[1]);

    let config = RebalanceConfig::default();
    println!(
        "hysteresis: enter at {:.2}x mean, exit at {:.2}x mean, floor {:.2}, budget {}/sweep\n",
        config.enter_ratio, config.exit_ratio, config.load_floor, config.budget_per_sweep
    );
    let rb = Rebalancer::closed_loop(tb.fabric.clone(), tb.collection.clone(), config);
    let dog = Watchdog::new(tb.fabric.clone(), 2);

    let mut last_episode = None;
    for sweep_no in 1..=12 {
        tb.tick(SimDuration::from_secs(30));
        if sweep_no == 4 {
            // Churn: fail-stop the hottest host. Its objects restart
            // from their OPRs wherever the Watchdog can put them.
            tb.unix_hosts[0].crash();
            println!("t={:>4}s  !! crashed {}", tb.fabric.clock().now().as_secs_f64() as u64, tb.host_loids[0]);
        }
        let now = tb.fabric.clock().now();
        for r in dog.patrol(now) {
            println!(
                "t={:>4}s  watchdog restarted {} on {} via vault {}",
                now.as_secs_f64() as u64,
                r.object,
                r.to,
                r.via_vault
            );
        }
        let report = rb.sweep(now);
        println!(
            "t={:>4}s  sweep {:>2}: {} hotspot(s), {} migrated, {} failed, \
             max {:.2} / mean {:.2}{}{}",
            now.as_secs_f64() as u64,
            sweep_no,
            report.hotspots.len(),
            report.completed.len(),
            report.failed.len(),
            report.max_load,
            report.mean_load,
            if report.stale_records > 0 { " [stale records]" } else { "" },
            if report.converged { "  CONVERGED" } else { "" },
        );
        for rec in &report.completed {
            println!("          moved {} from {} to {}", rec.object, rec.from, rec.to);
        }
        last_episode = report.episode;
        if report.converged && sweep_no > 4 {
            break;
        }
    }

    let m = tb.fabric.metrics().snapshot();
    println!(
        "\ntotals: {} sweeps, {} migrations, {} rolled back, {} re-homed, {} watchdog restarts",
        m.rebalance_sweeps, m.migrations, m.rebalance_rollbacks, m.rebalance_rehomes, m.monitor_restarts
    );

    // Replay the final sweep from the trace: its episode as a span
    // tree, then the per-stage latency histograms for the whole drill.
    if let Some(ep) = last_episode {
        println!("\n--- final rebalance episode ---\n{}", legion::trace::episode_report(&sink, ep));
    }
    println!("{}", legion::trace::latency_report(&sink));
    let rollup = sink.rollup();
    println!(
        "trace saw {} detect, {} plan, {} migrate, {} converge spans",
        rollup.count(SpanKind::RebalanceDetect),
        rollup.count(SpanKind::RebalancePlan),
        rollup.count(SpanKind::RebalanceMigrate),
        rollup.count(SpanKind::RebalanceConverge),
    );
}
