//! A parameter space study — the paper's other motivating application
//! class (§4.3) — scheduled with IRS under contention.
//!
//! 32 independent simulation tasks are placed on a 3-domain testbed
//! where background load varies per host (AR(1) processes, the kind the
//! Network Weather Service forecasts). We compare the bag-of-tasks
//! makespan under Random, IRS and Load-aware placement.
//!
//! Run with: `cargo run --example param_study`

use legion::apps::{BagOfTasks, LoadRegime, Testbed, TestbedConfig};
use legion::prelude::*;

fn main() {
    let bag = BagOfTasks::generate(32, SimDuration::from_secs(120), 0.3, 99);
    println!(
        "parameter study: {} tasks, {:.0} s total serial work\n",
        bag.tasks.len(),
        bag.total_work().as_secs_f64()
    );

    println!("{:<22} {:>8} {:>14} {:>16}", "scheduler", "placed", "makespan (s)", "vs serial");
    for which in ["random", "irs", "load-aware"] {
        // Identical loaded testbeds: 3 domains x 8 hosts, mean load 0.6.
        let tb = Testbed::build(TestbedConfig {
            load: LoadRegime::Ar1 { mean: 0.6 },
            ..TestbedConfig::wide(3, 8, 4242)
        });
        // Quarter-CPU tasks so several can share a host (24 hosts, 32 tasks).
        let class = tb.register_class("sim-task", 25, 64);
        // Let loads evolve and the Collection catch up.
        for _ in 0..4 {
            tb.tick(SimDuration::from_secs(30));
        }

        let scheduler: std::sync::Arc<dyn Scheduler> = match which {
            "random" => std::sync::Arc::new(RandomScheduler::new(1)),
            "irs" => std::sync::Arc::new(IrsScheduler::new(1, 6)),
            _ => std::sync::Arc::new(LoadAwareScheduler::new()),
        };
        let enactor = Enactor::new(tb.fabric.clone());
        let driver =
            ScheduleDriver::new(std::sync::Arc::clone(&scheduler), std::sync::Arc::new(enactor));
        let request = PlacementRequest::new().class(class, 32);
        let Ok(outcome) = driver.place(&request, &tb.ctx()) else {
            println!("{which:<22} {:>8} {:>14} {:>16}", 0, "failed", "-");
            continue;
        };

        // Score the placement with the bag-of-tasks model: task i runs
        // on the host of mapping i, slowed by that host's load.
        let assignment: Vec<Loid> = outcome.placed.iter().map(|(m, _)| m.host).collect();
        let makespan = bag.makespan(&assignment, |h| {
            tb.fabric
                .lookup_host(h)
                .map(|host| {
                    host.attributes()
                        .get_f64(legion::core::host::well_known::LOAD)
                        .unwrap_or(0.0)
                })
                .unwrap_or(0.0)
        });
        println!(
            "{:<22} {:>8} {:>14.1} {:>15.1}x",
            scheduler.name(),
            outcome.placed.len(),
            makespan.as_secs_f64(),
            bag.total_work().as_secs_f64() / makespan.as_secs_f64().max(1e-9)
        );
    }

    println!(
        "\nLoad-aware placement reads the rich host attributes the paper's\n\
         Collection exports; IRS tolerates contention with variant schedules;\n\
         Random is the 90% solution."
    );
}
