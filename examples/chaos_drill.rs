//! A fire drill for the chaos fabric: fault injection, crash
//! detection, and restart-from-OPR (§2.1).
//!
//! Objects are placed across two domains, then a scripted `FaultPlan`
//! crashes a host and briefly partitions the two domains. The
//! Watchdog's patrol misses the crashed host's probes, declares it
//! dead, and restarts its objects elsewhere from their vault OPRs.
//! When the plan restarts the host, the patrol probes it back to
//! health.
//!
//! Run with: `cargo run --example chaos_drill`

use legion::prelude::*;

fn main() {
    let tb = Testbed::build(TestbedConfig::wide(2, 3, 77));
    let class = tb.register_class("service", 20, 48);
    let sink = tb.fabric.enable_tracing();
    tb.tick(SimDuration::from_secs(1));

    // Place six instances with the stock scheduler/enactor pipeline.
    let scheduler = LoadAwareScheduler::new();
    let enactor = Enactor::new(tb.fabric.clone());
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
    let report = driver
        .place(&PlacementRequest::new().class(class, 6), &tb.ctx())
        .expect("placement on an idle testbed");
    println!("placed {} instances across the federation", report.placed.len());

    // Script the weather: at t+60s the first placement's host crashes
    // for five minutes; at t+90s the two domains partition for a
    // minute.
    let victim_host = report.placed[0].0.host;
    let now = tb.fabric.clock().now();
    let plan = FaultPlan::new()
        .at(now + SimDuration::from_secs(60), FaultAction::CrashHost(victim_host))
        .at(now + SimDuration::from_secs(360), FaultAction::RestartHost(victim_host))
        .at(
            now + SimDuration::from_secs(90),
            FaultAction::Partition {
                a: DomainId(0),
                b: DomainId(1),
                heal_at: now + SimDuration::from_secs(150),
            },
        );
    let expected = plan.counts();
    tb.fabric.install_fault_plan(plan);
    println!(
        "fault plan installed: {} crash, {} restart, {} partition\n",
        expected.host_crashes, expected.host_restarts, expected.partitions
    );

    // The Watchdog patrols every 30 s; 3 misses ≈ 90 s of silence
    // before a host is declared dead — longer than the 60 s partition
    // (no split-brain), far shorter than the 300 s crash.
    let dog = Watchdog::new(tb.fabric.clone(), 3);
    for _round in 1..=14 {
        tb.tick(SimDuration::from_secs(30));
        let recovered = dog.patrol(tb.fabric.clock().now());
        let t = tb.fabric.clock().now().as_secs_f64() as u64;
        print!("t={t:>4}s  victim misses={}", dog.misses_for(victim_host));
        for r in &recovered {
            print!("  → restarted {} on {} via vault {}", r.object, r.to, r.via_vault);
        }
        println!();
    }

    let m = tb.fabric.metrics().snapshot();
    println!(
        "\ntotals: {} faults injected ({} crash, {} restart, {} partition start / {} heal)",
        m.faults_injected, m.host_crashes, m.host_restarts, m.partitions_started, m.partitions_healed
    );
    let class_obj = tb.fabric.lookup_class(class).expect("class registered");
    let hosts_running: std::collections::BTreeSet<_> =
        legion::core::ClassObject::instances(&*class_obj).into_iter().map(|(_, h)| h).collect();
    println!(
        "watchdog restarts: {}; the {} instances now run on {} host(s)",
        m.monitor_restarts,
        legion::core::ClassObject::instances(&*class_obj).len(),
        hosts_running.len()
    );
    assert_eq!(m.faults_injected, expected.total(), "every scripted fault fired");

    // Replay the drill from the trace: the watchdog's recovery episode
    // as a span tree, then the per-stage latency histograms for the
    // whole run (faults, failed probes and restarts included).
    if let Some((recovery, _)) =
        sink.episodes().iter().find(|(_, label)| label == "recover")
    {
        println!("\n--- recovery episode ---\n{}", legion::trace::episode_report(&sink, *recovery));
    }
    println!("{}", legion::trace::latency_report(&sink));
    let rollup = sink.rollup();
    println!(
        "trace saw {} fault spans and {} ok restart-from-OPR spans",
        rollup.count(SpanKind::Fault),
        rollup.ok_count(SpanKind::RestartFromOpr)
    );
}
