//! Triggers, the Monitor, and object migration (§2.1, §3.5).
//!
//! Six objects run on one host. Its background load spikes; the RGE
//! load trigger fires, the Monitor's outcall delivers the event, and
//! the Rebalancer migrates objects — OPR and all — to idle hosts, one
//! per monitoring round, until the trigger calms.
//!
//! Run with: `cargo run --example migration`

use legion::hosts::BackgroundLoad;
use legion::prelude::*;

fn main() {
    let tb = Testbed::build(TestbedConfig::wide(2, 3, 31));
    let class = tb.register_class("worker", 15, 64);

    // Start six objects on host 0 by hand (a deliberately bad placement).
    let h0 = &tb.unix_hosts[0];
    let vault = h0.get_compatible_vaults()[0];
    for _ in 0..6 {
        let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(1 << 20))
            .with_demand(15, 64);
        let tok = h0.make_reservation(&req, tb.fabric.clock().now()).expect("reservation");
        let started = h0
            .start_object(
                &tok,
                &[legion::core::ObjectSpec::new(class)],
                tb.fabric.clock().now(),
            )
            .expect("start");
        if let Some(c) = tb.fabric.lookup_class(class) {
            c.note_instance_location(started[0], h0.loid());
        }
    }
    println!("host 0 runs {} objects; everyone else is idle\n", h0.running_objects().len());

    // The Monitor registers load triggers + outcalls on every host.
    let rb = Rebalancer::new(tb.fabric.clone());
    rb.watch_all(1.2);

    // The machine's owner starts a big local job: background load spikes.
    h0.set_background_load(BackgroundLoad::steady(2.0));
    println!("background load on host 0 spikes to 2.0 — trigger threshold is 1.2\n");

    for round in 1..=8 {
        tb.tick(SimDuration::from_secs(30));
        let migrations = rb.rebalance_once();
        let load =
            h0.attributes().get_f64(legion::core::host::well_known::LOAD).unwrap_or(0.0);
        print!(
            "round {round}: host0 load {load:.2}, {} objects local",
            h0.running_objects().len()
        );
        for mig in &migrations {
            print!("  → migrated {} to {} ({} B of OPR)", mig.object, mig.to, mig.opr_bytes);
        }
        println!();
        if migrations.is_empty() && round > 2 {
            break;
        }
    }

    let m = tb.fabric.metrics().snapshot();
    println!(
        "\ntotals: {} trigger firings, {} deactivations, {} reactivations, {} migrations",
        m.trigger_firings, m.objects_deactivated, m.objects_reactivated, m.migrations
    );
    println!(
        "objects now spread over {} hosts",
        tb.unix_hosts.iter().filter(|h| !h.running_objects().is_empty()).count()
    );
}
