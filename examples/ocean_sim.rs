//! The §4.3 specialized policy: scheduling an MPI-style ocean simulation.
//!
//! "we are working with the DoD MSRC in Stennis, Mississippi to develop
//! a Scheduler for an MPI-based ocean simulation which uses
//! nearest-neighbor communication within a 2-D grid."
//!
//! This example schedules a 6x6 rank grid over four administrative
//! domains with every scheduler in the library and compares the
//! predicted completion time of the stencil application model.
//!
//! Run with: `cargo run --example ocean_sim`

use legion::apps::{StencilApp, Testbed, TestbedConfig};
use legion::prelude::*;
use legion::schedulers::{GridSpec, RoundRobinScheduler};

fn main() {
    let grid = GridSpec::new(6, 6);
    let app = StencilApp { grid, cycles: 500, compute_per_cycle: SimDuration::from_millis(40) };
    println!(
        "ocean simulation: {}x{} ranks, {} cycles, {} compute per rank per cycle\n",
        grid.rows, grid.cols, app.cycles, app.compute_per_cycle
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RandomScheduler::new(7)),
        Box::new(RoundRobinScheduler::new()),
        Box::new(LoadAwareScheduler::new()),
        Box::new(StencilScheduler::new(grid)),
    ];

    println!(
        "{:<14} {:>10} {:>16} {:>14}",
        "scheduler", "placed", "comm cost (ms)", "completion (s)"
    );
    for s in schedulers {
        // Fresh identical testbed per scheduler: 4 domains x 5 hosts,
        // WAN latency 30 ms, LAN latency 100 us.
        let tb = Testbed::build(TestbedConfig::wide(4, 5, 2024));
        // 15-centi ranks: up to six ranks share a CPU under timesharing.
        let class = tb.register_class("ocean-rank", 15, 64);
        tb.tick(SimDuration::from_secs(1));

        let sched = s
            .compute_schedule(&PlacementRequest::new().class(class, grid.len() as u32), &tb.ctx())
            .expect("schedule");
        // Enact it for real: objects actually start on hosts.
        let enactor = Enactor::new(tb.fabric.clone());
        let fb = enactor.make_reservations(&sched);
        let placed = if fb.reserved() {
            enactor.enact_schedule(&fb).map(|v| v.len()).unwrap_or(0)
        } else {
            0
        };

        let mappings = &sched.schedules[0].master.mappings;
        let comm = app.edge_cost(&tb.fabric, mappings);
        let completion = app.completion(&tb.fabric, mappings, |_| 0.0);
        println!(
            "{:<14} {:>10} {:>16.3} {:>14.2}",
            s.name(),
            placed,
            comm as f64 / 1e3,
            completion.as_secs_f64()
        );
    }

    println!(
        "\nThe stencil scheduler keeps nearest-neighbour ranks inside one\n\
         administrative domain, so halo exchanges avoid WAN latency — the\n\
         paper's motivation for application-class-specific Schedulers."
    );
}
