//! Quickstart: the Fig. 3 pipeline end to end.
//!
//! Builds a two-domain metacomputing testbed, registers an application
//! class, computes a schedule with the stock Random scheduler (Fig. 7),
//! lets the Enactor obtain reservations and instantiate the objects,
//! and prints what happened at each step.
//!
//! Run with: `cargo run --example quickstart`

use legion::prelude::*;

fn main() {
    // Step 0: a metacomputing fabric — 2 administrative domains, 4 Unix
    // hosts each, one vault per domain, a Collection populated by the
    // Data Collection Daemon (step 1 of Fig. 3).
    let tb = Testbed::build(TestbedConfig::wide(2, 4, 42));
    println!(
        "testbed: {} hosts across {} domains, Collection holds {} records",
        tb.host_count(),
        tb.config().domains,
        tb.collection.len()
    );

    // An application class: instances need a quarter CPU and 64 MB.
    let class = tb.register_class("hello-legion", 25, 64);
    println!("registered class {class}");

    // Steps 2-3: the Scheduler queries the Collection for hosts that can
    // run the class's implementations.
    let ctx = tb.ctx();
    let report = ctx.class_report(class).expect("class is registered");
    let candidates = ctx.candidates_for(&report, None).expect("query succeeds");
    println!("collection query found {} candidate hosts", candidates.len());

    // Turn on pipeline tracing so the placement below is captured as a
    // span tree (one episode per ScheduleDriver::place call).
    let sink = tb.fabric.enable_tracing();

    // Compute the schedule (Fig. 7 random policy) and drive it through
    // the Enactor (steps 4-11) with the Fig. 9 retry wrapper.
    let scheduler = RandomScheduler::new(7);
    let enactor = Enactor::new(tb.fabric.clone());
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
    let request = PlacementRequest::new().class(class, 6);
    let outcome = driver.place(&request, &ctx).expect("placement succeeds");

    println!("\nplaced {} instances:", outcome.placed.len());
    for (mapping, instance) in &outcome.placed {
        println!("  instance {instance} on host {} (vault {})", mapping.host, mapping.vault);
    }
    println!(
        "\ngenerations: {}, reservation rounds: {}",
        outcome.generations, outcome.reservation_rounds
    );

    let m = tb.fabric.metrics().snapshot();
    println!(
        "fabric cost: {} messages, {} reservation calls ({} granted), {} collection queries",
        m.messages, m.reservation_requests, m.reservations_granted, m.collection_queries
    );

    // The same placement, replayed from the trace: the episode's span
    // tree and the per-stage latency histograms.
    let episode = outcome.episode.expect("tracing was enabled");
    println!("\n--- traced episode ---\n{}", legion::trace::episode_report(&sink, episode));
    println!("{}", legion::trace::latency_report(&sink));

    // Export the full trace as JSON ("legion-trace/v1") for tooling;
    // CI smoke-validates this file against the schema.
    let json = legion::trace::trace_json(&sink);
    let path = std::env::var("LEGION_TRACE_OUT")
        .unwrap_or_else(|_| "target/quickstart-trace.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("trace exported to {path} ({} bytes)", json.len()),
        Err(e) => println!("trace export to {path} failed: {e}"),
    }
}
