//! A fire drill for the multi-tenant front door: fair-use admission,
//! typed backpressure, the grant workflow, and the sim-driven
//! fairness bed.
//!
//! Two tenants share one Interactive token-bucket policy. A burst from
//! the first shows the typed rejections; a grant is requested,
//! approved, and deliberately left unconfirmed until it expires and
//! releases its token. Finally the whole six-tenant workload runs as a
//! discrete-event simulation at 1x and 4x arrival rate, printing the
//! goodput-fairness ratios that the `admission` bench publishes.
//!
//! Run with: `cargo run --example ingress_drill`

use legion::ingress::{GrantState, IngressError};
use legion::prelude::*;
use std::sync::Arc;

fn main() {
    let tb = Testbed::build(TestbedConfig::wide(2, 3, 2026));
    let class = tb.register_class("storefront", 20, 48);
    tb.tick(SimDuration::from_secs(1));

    let scheduler: Arc<dyn Scheduler> = Arc::new(LoadAwareScheduler::new());
    let enactor = Arc::new(Enactor::new(tb.fabric.clone()));
    let door = FrontDoor::new(
        tb.ctx(),
        scheduler,
        enactor,
        tb.vault_loids[0],
        IngressConfig::default(),
    );

    // --- admission and typed backpressure ------------------------------
    let alice = door.register_tenant("alice", PriorityClass::Interactive);
    let bob = door.register_tenant("bob", PriorityClass::Interactive);
    println!("registered alice and bob (interactive: 2/s sustained, burst 4)\n");

    println!("alice bursts 8 placements back to back:");
    for i in 1..=8 {
        match door.submit(alice, &PlacementRequest::new().class(class, 1)) {
            Ok(report) => println!("  #{i}: placed on {}", report.placed[0].0.host),
            Err(IngressError::Rejected(r)) => println!("  #{i}: rejected — {r}"),
            Err(e) => println!("  #{i}: failed — {e}"),
        }
    }
    let stats = door.stats(alice).unwrap();
    println!(
        "alice: {} admitted, {} rate-limited — the bucket, not the bed, said no\n",
        stats.admitted, stats.rejected_rate
    );

    // Bob's bucket is untouched by alice's burst.
    let report = door
        .submit(bob, &PlacementRequest::new().class(class, 1))
        .expect("bob's tokens are his own");
    println!("bob still places instantly on {} — per-tenant buckets\n", report.placed[0].0.host);

    // --- the grant workflow --------------------------------------------
    let id = door
        .request_grant(bob, class, tb.vault_loids[1], SimDuration::from_secs(600))
        .expect("grant request");
    println!("bob requests a 600s reservation grant: {id} (pending record in the vault ledger)");
    // Approve against a host the burst didn't fill.
    let grant_host = *tb.host_loids.last().expect("bed has hosts");
    door.approve_grant(id, grant_host).expect("host is up and has capacity");
    println!("operator approves against {grant_host} — host reservation made");

    // Bob wanders off; the confirm window lapses.
    tb.tick(SimDuration::from_secs(31));
    let expired = door.expire_due_grants();
    let state = door.grant(id).unwrap().state;
    println!(
        "bob never confirms: {expired} grant expired (state {state:?}), reservation \
         cancelled, token refunded\n"
    );
    assert_eq!(state, GrantState::Expired);

    // --- the fairness bed ----------------------------------------------
    println!("six-tenant open-loop sim (Poisson + heavy-tailed), 1x vs 4x arrival rate:");
    for scale in [1.0, 4.0] {
        let mut cfg = IngressSimConfig::seeded(0xD1A_0BEE);
        // Tight policies (the `admission` bench's), so every class
        // overdrives its bucket and fair use is what shapes goodput.
        cfg.ingress.policies = [
            legion::ingress::ClassPolicy { rate_per_sec: 0.25, burst: 4, queue_capacity: 4 },
            legion::ingress::ClassPolicy { rate_per_sec: 0.15, burst: 4, queue_capacity: 8 },
            legion::ingress::ClassPolicy { rate_per_sec: 0.10, burst: 8, queue_capacity: 16 },
        ];
        let cfg = cfg.rate_scaled(scale);
        let report = run_ingress_sim(&cfg).unwrap_or_else(|e| panic!("{e}"));
        let admitted: u64 = report.tenants.iter().map(|t| t.stats.admitted).sum();
        let rejected: u64 = report.tenants.iter().map(|t| t.stats.rejected()).sum();
        println!("  {scale}x: {admitted} admitted, {rejected} rejected");
        for (class, ratio) in &report.fairness {
            if let Some(r) = ratio {
                println!("      {:<12} goodput fairness {r:.3}", format!("{class:?}"));
            }
        }
    }
    println!("\nadmitted stays flat as arrival rate quadruples: fair use holds.");
}
