//! A deterministic soak: hours of virtual time on a federated bed with
//! churn — placements, completions, load spikes, migrations, host
//! drains — while checking global invariants every tick.
//!
//! The loop runs on a pure sim-time horizon: rounds continue until the
//! virtual clock crosses one hour, never a wall-clock sleep or a
//! hard-coded iteration count. The tick index is *derived from the
//! clock* (30-second rounds after the 1-second warm-up), so the RNG
//! draw order and the `% 17` / `% 23` spike cadences are byte-for-byte
//! the ones the original counter-driven loop produced.

use legion::hosts::BackgroundLoad;
use legion::prelude::*;
use legion::schedulers::RoundRobinScheduler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WARMUP_US: u64 = 1_000_000;
const ROUND_US: u64 = 30_000_000;

#[test]
fn soak_federation_under_churn() {
    let tb = Testbed::build(TestbedConfig::wide(3, 4, 4242));
    let class = tb.register_class("churn", 20, 48);
    tb.tick(SimDuration::from_micros(WARMUP_US));
    let horizon = SimTime::from_micros(WARMUP_US + 120 * ROUND_US);

    let scheduler = RoundRobinScheduler::new();
    let enactor = Enactor::new(tb.fabric.clone());
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
    let rb = Rebalancer::new(tb.fabric.clone());
    rb.watch_all(1.5);

    let mut rng = SmallRng::seed_from_u64(99);
    let mut live: Vec<Loid> = Vec::new();
    let mut placed_total = 0u64;
    let mut killed_total = 0u64;
    let class_obj = tb.fabric.lookup_class(class).unwrap();

    let mut rounds = 0u64;
    while tb.fabric.clock().now() < horizon {
        // This round's index, read off the virtual clock.
        let tick = (tb.fabric.clock().now().as_micros() - WARMUP_US) / ROUND_US;
        assert_eq!(tick, rounds, "clock advanced by something other than the round length");
        rounds += 1;
        // Arrival: one new placement most ticks.
        if rng.gen_bool(0.7) {
            if let Ok(report) =
                driver.place(&PlacementRequest::new().class(class, 1), &tb.ctx())
            {
                live.push(report.placed[0].1);
                placed_total += 1;
            }
        }
        // Departure: objects finish at random.
        if !live.is_empty() && rng.gen_bool(0.5) {
            let idx = rng.gen_range(0..live.len());
            let victim = live.swap_remove(idx);
            if class_obj.destroy_instance(victim, &*tb.fabric).is_ok() {
                killed_total += 1;
            }
        }
        // Occasionally spike a host's background load...
        if tick.is_multiple_of(17) {
            let i = rng.gen_range(0..tb.unix_hosts.len());
            tb.unix_hosts[i].set_background_load(BackgroundLoad::steady(2.5));
        }
        // ...and occasionally calm one down.
        if tick.is_multiple_of(23) {
            let i = rng.gen_range(0..tb.unix_hosts.len());
            tb.unix_hosts[i].set_background_load(BackgroundLoad::steady(0.1));
        }

        tb.tick(SimDuration::from_micros(ROUND_US));
        rb.rebalance_once();

        // Invariant 1: every live object runs on exactly one host, and
        // the class's location bookkeeping matches reality.
        let mut seen = std::collections::BTreeMap::new();
        for h in &tb.unix_hosts {
            for o in h.running_objects() {
                *seen.entry(o).or_insert(0) += 1;
            }
        }
        for (obj, count) in &seen {
            assert_eq!(*count, 1, "object {obj} running on {count} hosts at tick {tick}");
        }
        for &obj in &live {
            assert!(seen.contains_key(&obj), "live object {obj} vanished at tick {tick}");
        }
        // Invariant 2: no host over its memory capacity.
        for h in &tb.unix_hosts {
            let free = h
                .attributes()
                .get_i64(legion::core::host::well_known::FREE_MEMORY_MB)
                .unwrap();
            assert!(free >= 0, "host over-committed memory at tick {tick}");
        }
    }

    // The horizon produced exactly the original 120 rounds, and an hour
    // of virtual time elapsed.
    assert_eq!(rounds, 120, "sim-time horizon changed the iteration count");
    assert!(tb.fabric.clock().now() >= SimTime::from_secs(3600));

    // The run actually did something.
    assert!(placed_total >= 60, "placed {placed_total}");
    assert!(killed_total >= 30, "killed {killed_total}");
    let m = tb.fabric.metrics().snapshot();
    assert_eq!(m.objects_started, placed_total);
    assert!(m.reservations_granted >= placed_total);
    // Load spikes should have produced at least a few migrations.
    assert!(m.migrations >= 1, "churn with spikes should migrate something");
    // Bookkeeping closes: objects started minus killed, with migrations
    // (deactivate + reactivate) cancelling out, equals the live set.
    assert_eq!(
        m.objects_started + m.objects_reactivated - killed_total - m.objects_deactivated,
        live.len() as u64,
        "object conservation: started={} reactivated={} killed={killed_total} \
         deactivated={} live={}",
        m.objects_started,
        m.objects_reactivated,
        m.objects_deactivated,
        live.len()
    );
}
