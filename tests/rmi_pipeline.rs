//! Full Fig. 3 pipeline: every numbered step of the paper's object
//! placement walkthrough, across crates, through the facade.

use legion::prelude::*;
use legion::schedulers::RoundRobinScheduler;

#[test]
fn thirteen_step_walkthrough() {
    // Step 1: the Collection is populated with resource descriptions
    // (the testbed's pull daemon does this).
    let tb = Testbed::build(TestbedConfig::wide(2, 4, 1));
    assert_eq!(tb.collection.len(), 8);

    let class = tb.register_class("app", 25, 64);
    let ctx = tb.ctx();

    // Steps 2-3: the Scheduler acquires application knowledge from the
    // class...
    let report = ctx.class_report(class).unwrap();
    assert_eq!(report.cpu_centis, 25);
    // ...and queries the Collection.
    let candidates = ctx.candidates_for(&report, None).unwrap();
    assert_eq!(candidates.len(), 8);

    // The Scheduler computes a mapping of objects to resources.
    let scheduler = RandomScheduler::new(3);
    let sched = scheduler
        .compute_schedule(&PlacementRequest::new().class(class, 4), &ctx)
        .unwrap();
    assert_eq!(sched.schedules[0].master.len(), 4);

    // Steps 4-6: the Enactor obtains reservations from the resources
    // named in the mapping.
    let enactor = Enactor::new(tb.fabric.clone());
    let feedback = enactor.make_reservations(&sched);
    assert!(feedback.reserved());
    assert_eq!(feedback.reservations.len(), 4);
    // Every token is verifiable by its host (non-forgeable, host-bound).
    for (tok, m) in feedback.reservations.iter().zip(&feedback.mappings) {
        assert_eq!(tok.host, m.host);
        let host = tb.fabric.lookup_host(m.host).unwrap();
        assert!(host.check_reservation(tok, tb.fabric.clock().now()).is_ok());
    }

    // Step 7: the Enactor consults the Scheduler to confirm — modelled
    // as the caller deciding to proceed.
    // Steps 8-9: instantiate through the class objects; 10-11: results
    // return to the Scheduler.
    let placed = enactor.enact_schedule(&feedback).unwrap();
    assert_eq!(placed.len(), 4);
    let class_obj = tb.fabric.lookup_class(class).unwrap();
    assert_eq!(class_obj.instances().len(), 4);

    // Steps 12-13: a resource decides an object must move; the Monitor
    // notifies and rescheduling happens (covered in depth by the
    // migration_monitor test; here we just verify the hook exists).
    let monitor = Monitor::new();
    let host = tb.fabric.lookup_host(placed[0].0.host).unwrap();
    monitor.watch_load(&host, 0.5);
    assert_eq!(monitor.watched().len(), 1);
}

#[test]
fn default_class_placement_works_without_scheduler() {
    // §2.1: in the absence of a placement argument the Class makes a
    // quick placement decision itself.
    let tb = Testbed::build(TestbedConfig::local(4, 2));
    let class = tb.register_class("auto", 25, 64);
    let class_obj = tb.fabric.lookup_class(class).unwrap();
    let instance = class_obj.create_instance(None, &*tb.fabric).unwrap();
    let located = class_obj.instances();
    assert_eq!(located.len(), 1);
    assert_eq!(located[0].0, instance);
    // It actually runs on the chosen host.
    let host = tb.fabric.lookup_host(located[0].1).unwrap();
    assert!(host.running_objects().contains(&instance));
}

#[test]
fn directed_placement_validates_token_ownership() {
    // §3.4: the Class checks directed placements for validity.
    let tb = Testbed::build(TestbedConfig::local(2, 3));
    let class_a = tb.register_class("a", 25, 64);
    let class_b = tb.register_class("b", 25, 64);
    let host = tb.unix_hosts[0].clone();
    let vault = host.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(class_a, vault, SimDuration::from_secs(60));
    let tok = host.make_reservation(&req, tb.fabric.clock().now()).unwrap();

    // A token minted for class A cannot instantiate class B.
    let class_b_obj = tb.fabric.lookup_class(class_b).unwrap();
    let placement =
        legion::core::Placement { host: host.loid(), vault, token: tok.clone() };
    let err = class_b_obj.create_instance(Some(placement), &*tb.fabric);
    assert!(matches!(err, Err(LegionError::MalformedSchedule(_))));

    // The right class accepts it.
    let class_a_obj = tb.fabric.lookup_class(class_a).unwrap();
    let placement = legion::core::Placement { host: host.loid(), vault, token: tok };
    class_a_obj.create_instance(Some(placement), &*tb.fabric).unwrap();
}

#[test]
fn fabric_meters_the_negotiation() {
    let tb = Testbed::build(TestbedConfig::wide(2, 2, 4));
    let class = tb.register_class("app", 25, 64);
    let before = tb.fabric.metrics().snapshot();

    let scheduler = RoundRobinScheduler::new();
    let enactor = Enactor::new(tb.fabric.clone());
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
    driver.place(&PlacementRequest::new().class(class, 4), &tb.ctx()).unwrap();

    let d = tb.fabric.metrics().snapshot().delta(&before);
    assert_eq!(d.collection_queries, 1, "one Collection lookup for the class");
    assert_eq!(d.reservations_granted, 4);
    assert_eq!(d.objects_started, 4);
    assert_eq!(d.enact_instantiations, 4);
    assert!(d.messages >= 8, "reservation + instantiation traffic");
    assert!(d.sim_latency_us > 0);
}

#[test]
fn class_selects_implementation_per_platform() {
    use legion::core::{LegionClass, ObjectImplementation};
    use std::sync::Arc;
    // A bed with one IRIX host and one Linux host; a class shipping two
    // binaries must instantiate on both, selecting per platform (§3.3).
    let tb = Testbed::build(TestbedConfig::local(1, 5));
    let linux = StandardHost::new(
        HostConfig::unix("lx", "site0.edu").platform("x86", "Linux", "2.2"),
        tb.fabric.clone(),
        88,
    );
    let linux_loid = linux.loid();
    tb.fabric.register_host(linux as Arc<dyn HostObject>, DomainId(0));

    let class = Arc::new(LegionClass::new(
        "portable",
        vec![
            ObjectImplementation::new("mips", "IRIX"),
            ObjectImplementation::new("x86", "Linux"),
        ],
    ));
    let class_loid = class.loid();
    tb.fabric.register_class(class);
    let class_obj = tb.fabric.lookup_class(class_loid).unwrap();

    // Default placement walks hosts in order: first instance on the
    // IRIX box, then saturate it so the second lands on Linux.
    let a = class_obj.create_instance(None, &*tb.fabric).unwrap();
    let b = class_obj.create_instance(None, &*tb.fabric).unwrap();
    let locations: std::collections::BTreeSet<Loid> =
        class_obj.instances().iter().map(|&(_, h)| h).collect();
    assert_eq!(locations.len(), 2, "instances spread over both platforms");
    assert!(locations.contains(&linux_loid));
    assert_ne!(a, b);

    // A class with only an alpha/OSF binary can run nowhere here.
    let exotic = Arc::new(LegionClass::new(
        "exotic",
        vec![ObjectImplementation::new("alpha", "OSF1")],
    ));
    let exotic_loid = exotic.loid();
    tb.fabric.register_class(exotic);
    let exotic_obj = tb.fabric.lookup_class(exotic_loid).unwrap();
    assert!(matches!(
        exotic_obj.create_instance(None, &*tb.fabric),
        Err(LegionError::NoUsableImplementation { .. })
    ));
}
