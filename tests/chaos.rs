//! Chaos soak: the full RMI pipeline under injected faults.
//!
//! A fixed-seed [`FaultPlan`] crashes and restarts hosts, partitions
//! domains and degrades links while a steady stream of placement
//! requests flows through Scheduler → Enactor. The claim under test is
//! the paper's §3.1 — "Legion objects are built to accommodate failure
//! at any step in the scheduling process" — made concrete:
//!
//! * ≥95% of submitted placements eventually complete, via Enactor
//!   retry/backoff or Watchdog restart-from-OPR;
//! * nothing panics;
//! * the `MetricsLedger` injected-fault counters equal the plan's.
//!
//! Everything derives from `SEED`; every assertion message carries it so
//! a failure is reproducible by reading the log.
//!
//! All loop bounds here are pure sim-time horizons, not tick counts, so
//! the scenario is scheduler-agnostic: the same soak runs as discrete
//! events (and as a 32-seed sweep in under a minute) in
//! `tests/sim_determinism.rs` via `legion::prelude::run_chaos_soak`.

use legion::fabric::{FaultAction, FaultPlan};
use legion::monitor::Watchdog;
use legion::prelude::*;
use legion::schedule::ScheduleRequestList;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The single seed the whole run derives from.
const SEED: u64 = 0xC7A0_5EED;

#[test]
fn chaos_soak_under_crashes_and_partitions() {
    let tb = Testbed::build(TestbedConfig::wide(3, 4, SEED));
    let class = tb.register_class("chaos-app", 20, 48);
    let sink = tb.fabric.enable_tracing();
    tb.tick(SimDuration::from_secs(1));

    // Fault plan: host churn + transient partitions + one link burst,
    // all inside the first 6000s of the 7200s run so every event fires.
    let horizon = SimDuration::from_secs(6000);
    let churn = FaultPlan::random_churn(
        &tb.fabric.rng(),
        &tb.host_loids,
        horizon,
        6,
        SimDuration::from_secs(300),
    );
    let partitions = FaultPlan::random_partitions(
        &tb.fabric.rng(),
        3,
        horizon,
        3,
        SimDuration::from_secs(60),
    );
    let plan = churn.merge(partitions).at(
        SimTime::from_secs(1800),
        FaultAction::DegradeLinks {
            drop_prob: 0.25,
            extra_latency: SimDuration::from_millis(200),
            until: SimTime::from_secs(1860),
        },
    );
    let expected = plan.counts();
    tb.fabric.install_fault_plan(plan);

    let scheduler = LoadAwareScheduler::new();
    let enactor = Enactor::with_config(
        tb.fabric.clone(),
        EnactorConfig { deadline: Some(SimDuration::from_secs(45)), ..Default::default() },
    );
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
    // Partitions last 60s (≤2 consecutive missed probes at the 30s tick)
    // and the link burst can add a stray miss — 4 misses (120s) declares
    // dead only hosts that are down for real (300s).
    let dog = Watchdog::new(tb.fabric.clone(), 4);

    let mut rng = SmallRng::seed_from_u64(SEED ^ 0xD1CE);
    let class_obj = tb.fabric.lookup_class(class).unwrap();
    let mut live: Vec<Loid> = Vec::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut pending = 0u64;
    let mut recoveries = 0usize;

    // Two hours of 30s maintenance rounds under fire, then a short calm
    // drain so requests submitted near the end get their retries too.
    // Both bounds are virtual-time horizons: how many rounds it takes to
    // reach them is the clock's business, not the test's.
    let round = SimDuration::from_secs(30);
    let fire_until = SimTime::from_secs(7200);
    let drain_until = SimTime::from_secs(7800);
    while tb.fabric.clock().now() < drain_until {
        let arriving = tb.fabric.clock().now() < fire_until;
        let arrivals = if arriving && rng.gen_bool(0.6) { 1 } else { 0 };
        submitted += arrivals;
        pending += arrivals;

        // Retry every pending request this tick; leftovers roll over.
        let mut still_pending = 0;
        for _ in 0..pending {
            match driver.place(&PlacementRequest::new().class(class, 1), &tb.ctx()) {
                Ok(report) => {
                    live.push(report.placed[0].1);
                    completed += 1;
                }
                Err(_) => still_pending += 1,
            }
        }
        pending = still_pending;

        // Departures keep the bed from filling up.
        if !live.is_empty() && rng.gen_bool(0.55) {
            let idx = rng.gen_range(0..live.len());
            if class_obj.destroy_instance(live[idx], &*tb.fabric).is_ok() {
                live.swap_remove(idx);
            }
        }

        // Advance time: fires due faults, reassesses hosts, refreshes
        // the Collection (crashed hosts answer no pulls)...
        tb.tick(round);
        let now = tb.fabric.clock().now();
        // ...then the Monitor side: restart-from-OPR and record TTL
        // eviction so dead hosts stop matching scheduler queries.
        recoveries += dog.patrol(now).len();
        tb.collection.evict_stale(now, SimDuration::from_secs(150));

        // Invariant: no host is ever over its memory capacity, faults or
        // not.
        for h in &tb.unix_hosts {
            let free = h
                .attributes()
                .get_i64(legion::core::host::well_known::FREE_MEMORY_MB)
                .unwrap();
            assert!(free >= 0, "host over-committed at {now} (seed={SEED:#x})");
        }
    }

    // ≥95% of submissions eventually completed despite the chaos.
    assert!(submitted >= 100, "thin run: {submitted} submissions (seed={SEED:#x})");
    let ratio = completed as f64 / submitted as f64;
    assert!(
        ratio >= 0.95,
        "only {completed}/{submitted} = {ratio:.3} of placements completed (seed={SEED:#x})"
    );

    // The ledger saw exactly the planned injections.
    let m = tb.fabric.metrics().snapshot();
    assert_eq!(
        m.faults_injected,
        expected.total(),
        "injected-fault count != plan (seed={SEED:#x})"
    );
    assert_eq!(m.host_crashes, expected.host_crashes, "crash count (seed={SEED:#x})");
    assert_eq!(m.host_restarts, expected.host_restarts, "restart count (seed={SEED:#x})");
    assert_eq!(m.partitions_started, expected.partitions, "partitions (seed={SEED:#x})");
    assert_eq!(m.partitions_healed, expected.partitions, "heals (seed={SEED:#x})");
    assert_eq!(m.link_bursts, expected.link_bursts, "bursts (seed={SEED:#x})");
    assert_eq!(m.vaults_lost, 0, "no vault loss planned (seed={SEED:#x})");

    // Every host is back up and the watchdog agrees.
    for h in &tb.unix_hosts {
        assert!(!h.is_crashed(), "host still down at end (seed={SEED:#x})");
        assert!(!dog.considers_dead(h.loid()), "watchdog disagrees (seed={SEED:#x})");
    }

    // The run exercised the recovery paths, not just the happy path.
    eprintln!(
        "chaos soak (seed={SEED:#x}): {completed}/{submitted} placements, \
         {} backoffs, {recoveries} watchdog restarts, {} evictions",
        m.enactor_backoffs, m.collection_evictions
    );
    assert_eq!(m.monitor_restarts as usize, recoveries, "ledger vs patrol (seed={SEED:#x})");
    assert!(
        m.enactor_backoffs > 0 || recoveries > 0,
        "chaos run never hit a recovery path (seed={SEED:#x})"
    );

    // The trace saw the same chaos the ledger did: one Fault span per
    // injected fault, one Ok restart-from-OPR span per watchdog
    // recovery, and nothing left dangling.
    let rollup = sink.rollup();
    assert_eq!(
        rollup.count(SpanKind::Fault),
        m.faults_injected,
        "fault spans vs ledger (seed={SEED:#x})"
    );
    assert_eq!(
        rollup.ok_count(SpanKind::RestartFromOpr),
        m.monitor_restarts,
        "restart spans vs ledger (seed={SEED:#x})"
    );
    assert_eq!(sink.open_spans(), 0, "spans leaked open (seed={SEED:#x})");
}

#[test]
fn every_injected_fault_leaves_a_matching_trace_event() {
    // One scripted crash and restart against a host we know holds
    // objects, watched end to end: the fault itself, the placements it
    // fails, and the watchdog recovery must all appear in the trace.
    let tb = Testbed::build(TestbedConfig::local(3, SEED ^ 7));
    let class = tb.register_class("trace-app", 20, 48);
    let sink = tb.fabric.enable_tracing();
    sink.clear();

    let scheduler = RandomScheduler::new(5);
    let enactor = std::sync::Arc::new(Enactor::new(tb.fabric.clone()));
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::clone(&enactor));
    let report =
        driver.place(&PlacementRequest::new().class(class, 2), &tb.ctx()).unwrap();
    let victim = report.placed[0].0.host;

    let plan = FaultPlan::new()
        .at(SimTime::from_secs(60), FaultAction::CrashHost(victim))
        .at(SimTime::from_secs(600), FaultAction::RestartHost(victim));
    let expected = plan.counts();
    tb.fabric.install_fault_plan(plan);

    // Advance past the crash in pure sim-time; two patrols at 2 allowed
    // misses declare the host dead and restart its objects from their
    // OPRs.
    let probe = SimDuration::from_secs(60);
    let dog = Watchdog::new(tb.fabric.clone(), 2);
    while tb.fabric.clock().now() < SimTime::from_secs(180) {
        tb.tick(probe);
        dog.patrol(tb.fabric.clock().now());
    }

    // While the victim is still down, a schedule pinned to it must fail
    // with a HostDown-classed outcome in the trace.
    let pinned = ScheduleRequestList::single(vec![legion::schedule::Mapping::new(
        class,
        victim,
        tb.vault_loids[0],
    )]);
    let feedback = enactor.make_reservations(&pinned);
    assert!(!feedback.reserved(), "crashed host granted a reservation (seed={SEED:#x})");
    let hostdown = sink
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::MakeReservations)
        .filter(|s| s.outcome == SpanOutcome::HostDown)
        .count();
    assert!(hostdown >= 1, "no HostDown reservation span recorded (seed={SEED:#x})");

    // Advance past the scripted restart so the fault plan drains.
    while tb.fabric.clock().now() < SimTime::from_secs(660) {
        tb.tick(probe);
        dog.patrol(tb.fabric.clock().now());
    }

    let m = tb.fabric.metrics().snapshot();
    let spans = sink.spans();

    // Every planned fault fired and left exactly one Fault span.
    assert_eq!(m.faults_injected, expected.total(), "plan drained (seed={SEED:#x})");
    let faults: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Fault).collect();
    assert_eq!(faults.len() as u64, expected.total(), "fault spans (seed={SEED:#x})");
    let crash = faults
        .iter()
        .find(|s| s.attr_str("action") == Some("crash_host"))
        .expect("crash fault span");
    assert_eq!(crash.attr_str("host"), Some(victim.to_string().as_str()));
    assert!(faults.iter().any(|s| s.attr_str("action") == Some("restart_host")));

    // The watchdog recovery is visible: one Ok restart-from-OPR span
    // per ledger restart, each naming the dead host, inside a recovery
    // episode.
    assert!(m.monitor_restarts >= 1, "no recovery happened (seed={SEED:#x})");
    let restarts: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::RestartFromOpr && s.outcome == SpanOutcome::Ok)
        .collect();
    assert_eq!(restarts.len() as u64, m.monitor_restarts, "restart spans (seed={SEED:#x})");
    for r in &restarts {
        assert_eq!(r.attr_str("from"), Some(victim.to_string().as_str()), "{r:?}");
    }
    assert!(
        sink.episodes().iter().any(|(_, label)| label == "recover"),
        "recovery ran outside an episode (seed={SEED:#x})"
    );
    assert_eq!(sink.open_spans(), 0, "spans leaked open (seed={SEED:#x})");
}

#[test]
fn chaos_run_is_reproducible() {
    // Two identical runs over the same seed produce identical fault
    // plans and identical ledger fault counters.
    let run = |seed: u64| {
        let tb = Testbed::build(TestbedConfig::wide(2, 2, seed));
        let plan = FaultPlan::random_churn(
            &tb.fabric.rng(),
            &tb.host_loids,
            SimDuration::from_secs(600),
            4,
            SimDuration::from_secs(60),
        );
        // LOIDs are freshly minted each run; identify hosts by their
        // registration index so runs compare structurally.
        let idx = |l: Loid| tb.host_loids.iter().position(|&h| h == l).unwrap();
        let events: Vec<String> = plan
            .events()
            .iter()
            .map(|e| match e.action {
                FaultAction::CrashHost(h) => format!("{:?} crash h{}", e.at, idx(h)),
                FaultAction::RestartHost(h) => format!("{:?} restart h{}", e.at, idx(h)),
                ref other => format!("{:?} {other:?}", e.at),
            })
            .collect();
        tb.fabric.install_fault_plan(plan);
        // Run out the plan's 600s horizon with slack, in pure sim-time.
        while tb.fabric.clock().now() < SimTime::from_secs(900) {
            tb.tick(SimDuration::from_secs(30));
        }
        let m = tb.fabric.metrics().snapshot();
        (events, m.faults_injected, m.host_crashes, m.host_restarts)
    };
    let a = run(SEED);
    let b = run(SEED);
    assert_eq!(a, b, "same seed must replay identically (seed={SEED:#x})");
    let c = run(SEED ^ 1);
    assert_ne!(a.0, c.0, "different seed should differ (seed={SEED:#x})");
}
