//! The front door's contracts, end to end: typed backpressure, the
//! request → approve → confirm grant workflow and its failure edges
//! (expiry releases tokens, approve-after-crash reconciles the ledger),
//! and the chaos soak with ingress enabled replaying byte-identically.

use legion::core::{LegionError, Loid};
use legion::ingress::{ClassPolicy, GrantState, IngressError, Rejected};
use legion::prelude::*;
use std::sync::Arc;

/// A small bed with a front door over it. `policy` applies to every
/// class so tests can pick one tenant class and reason about it alone.
fn door_bed(seed: u64, policy: ClassPolicy, saturation_limit: u64) -> (Testbed, Arc<FrontDoor>, Loid) {
    let tb = Testbed::build(TestbedConfig::wide(2, 3, seed));
    let class = tb.register_class("door-app", 20, 48);
    tb.tick(SimDuration::from_secs(1));
    let config = IngressConfig {
        policies: [policy; 3],
        saturation_limit,
        confirm_window: SimDuration::from_secs(30),
        ..IngressConfig::default()
    };
    let scheduler: Arc<dyn Scheduler> = Arc::new(LoadAwareScheduler::new());
    let enactor = Arc::new(Enactor::new(tb.fabric.clone()));
    let door =
        Arc::new(FrontDoor::new(tb.ctx(), scheduler, enactor, tb.vault_loids[0], config));
    (tb, door, class)
}

/// One token, no refill: every admission question reduces to "was the
/// token released?".
fn one_token() -> ClassPolicy {
    ClassPolicy { rate_per_sec: 0.0, burst: 1, queue_capacity: 4 }
}

#[test]
fn admission_rejections_are_typed() {
    let (_tb, door, _class) =
        door_bed(11, ClassPolicy { rate_per_sec: 0.5, burst: 2, queue_capacity: 1 }, 64);
    let tenant = door.register_tenant("tenant", PriorityClass::Interactive);

    // First admission takes the single queue slot.
    let permit = door.admit(tenant).expect("bucket full, queue empty");
    // Queue bound hits before the bucket is debited again.
    match door.admit(tenant) {
        Err(Rejected::QueueFull { capacity: 1 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    door.conclude(permit, true);
    // Queue free again: the second token admits...
    let permit = door.admit(tenant).expect("one token left");
    door.conclude(permit, true);
    // ...and an empty bucket rejects with the exact accrual wait.
    match door.admit(tenant) {
        Err(Rejected::RateLimited { retry_in }) => {
            assert_eq!(retry_in, SimDuration::from_secs(2), "0.5/s rate accrues in 2s");
        }
        other => panic!("expected RateLimited, got {other:?}"),
    }
    let stats = door.stats(tenant).unwrap();
    assert_eq!((stats.admitted, stats.rejected_queue, stats.rejected_rate), (2, 1, 1));
}

#[test]
fn saturated_enactor_sheds_before_touching_the_bucket() {
    // saturation_limit 0 means the door always sees a saturated tier.
    let (tb, door, _class) = door_bed(12, one_token(), 0);
    let tenant = door.register_tenant("tenant", PriorityClass::Production);
    match door.admit(tenant) {
        Err(Rejected::Saturated { in_flight: 0, limit: 0 }) => {}
        other => panic!("expected Saturated, got {other:?}"),
    }
    // Shedding did not cost the tenant its token or a queue slot.
    let stats = door.stats(tenant).unwrap();
    assert_eq!((stats.rejected_saturated, stats.admitted, stats.in_queue()), (1, 0, 0));
    assert_eq!(tb.fabric.metrics().snapshot().ingress_rejected_saturated, 1);
}

#[test]
fn grant_workflow_confirms_within_window() {
    let (tb, door, class) = door_bed(13, one_token(), 64);
    let tenant = door.register_tenant("tenant", PriorityClass::Production);
    let (host, vault) = (tb.host_loids[0], tb.vault_loids[1]);

    let id = door
        .request_grant(tenant, class, vault, SimDuration::from_secs(600))
        .expect("token available");
    assert_eq!(door.grant(id).unwrap().state, GrantState::Requested);
    assert!(door.ledger_holds(id), "pending grant is vault-backed");

    door.approve_grant(id, host).expect("host is up");
    assert_eq!(door.grant(id).unwrap().state, GrantState::Approved);
    assert!(door.ledger_holds(id), "approved grant still pending in the ledger");

    let token = door.confirm_grant(id).expect("within the window");
    assert_eq!(token.host, host, "token binds the approved host");
    assert_eq!(door.grant(id).unwrap().state, GrantState::Confirmed);
    assert!(!door.ledger_holds(id), "confirmed grant left the pending ledger");

    let m = tb.fabric.metrics().snapshot();
    assert_eq!((m.grants_requested, m.grants_approved, m.grants_confirmed), (1, 1, 1));
    assert_eq!((m.grants_expired, m.grants_denied), (0, 0));
}

#[test]
fn unconfirmed_grant_expiry_releases_the_admission_token() {
    let (tb, door, class) = door_bed(14, one_token(), 64);
    let tenant = door.register_tenant("tenant", PriorityClass::Production);
    let vault = tb.vault_loids[1];

    // The only token goes to a grant that is never approved.
    let id = door
        .request_grant(tenant, class, vault, SimDuration::from_secs(600))
        .expect("token available");
    match door.request_grant(tenant, class, vault, SimDuration::from_secs(600)) {
        Err(IngressError::Rejected(Rejected::RateLimited { .. })) => {}
        other => panic!("bucket should be empty: {other:?}"),
    }

    // The confirm window lapses; the sweep expires the grant.
    tb.tick(SimDuration::from_secs(31));
    assert_eq!(door.expire_due_grants(), 1);
    assert_eq!(door.grant(id).unwrap().state, GrantState::Expired);
    assert!(!door.ledger_holds(id), "expired grant left the ledger");
    assert_eq!(tb.fabric.metrics().snapshot().grants_expired, 1);

    // The token came back: a fresh request succeeds, and late
    // transitions on the dead grant are typed.
    let id2 = door
        .request_grant(tenant, class, vault, SimDuration::from_secs(600))
        .expect("expiry refunded the token");
    assert_ne!(id, id2);
    match door.approve_grant(id, tb.host_loids[0]) {
        Err(IngressError::GrantNotPending(g, GrantState::Expired)) => assert_eq!(g, id),
        other => panic!("expected GrantNotPending(Expired), got {other:?}"),
    }
}

#[test]
fn approve_after_host_crash_reconciles_the_ledger() {
    let (tb, door, class) = door_bed(15, one_token(), 64);
    let tenant = door.register_tenant("tenant", PriorityClass::Production);
    let (host, vault) = (tb.host_loids[0], tb.vault_loids[1]);

    let id = door
        .request_grant(tenant, class, vault, SimDuration::from_secs(600))
        .expect("token available");
    assert!(door.ledger_holds(id));

    // The host crashes between request and approval.
    tb.fabric.unregister_host(host).expect("host was registered");
    match door.approve_grant(id, host) {
        Err(IngressError::Placement(LegionError::NoSuchHost(h))) => assert_eq!(h, host),
        other => panic!("expected the typed host failure, got {other:?}"),
    }

    // Reconciled: denied in the record, gone from the ledger, token
    // refunded, and the ledger counter says so.
    assert_eq!(door.grant(id).unwrap().state, GrantState::Denied);
    assert!(!door.ledger_holds(id), "denied grant must leave the pending ledger");
    assert_eq!(tb.fabric.metrics().snapshot().grants_denied, 1);
    door.request_grant(tenant, class, vault, SimDuration::from_secs(600))
        .expect("denial refunded the token");
}

#[test]
fn pinned_seed_ingress_chaos_soak_replays_byte_identically() {
    const SEED: u64 = 0xFA1_7D00;
    let guard = Loid::replay_guard();
    let cfg = IngressSimConfig {
        chaos_crashes: 3,
        crash_down_for: SimDuration::from_secs(180),
        horizon: SimDuration::from_secs(900),
        ..IngressSimConfig::seeded(SEED)
    };

    guard.rebase(1 << 40);
    let a = run_ingress_sim(&cfg).unwrap_or_else(|e| panic!("run A: {e}"));
    guard.rebase(1 << 40);
    let b = run_ingress_sim(&cfg).unwrap_or_else(|e| panic!("run B: {e}"));

    // The soak did real multi-tenant work under real chaos.
    assert!(a.metrics.ingress_admitted > 0, "nothing was admitted");
    assert!(a.metrics.ingress_completed > 0, "nothing completed");
    assert_eq!(
        a.metrics.faults_injected,
        a.fault_counts.total(),
        "every planned fault fired (seed={SEED:#x})"
    );

    // Byte-identical from one seed.
    assert_eq!(a.stats, b.stats, "event schedules diverged (seed={SEED:#x})");
    assert_eq!(a.metrics, b.metrics, "ledger snapshots diverged (seed={SEED:#x})");
    let (ja, jb) = (a.trace_json.as_ref().unwrap(), b.trace_json.as_ref().unwrap());
    assert!(ja == jb, "trace JSON diverged between same-seed runs (seed={SEED:#x})");
    assert!(ja.contains("\"admission\""), "export carries admission spans");
}

#[test]
fn submit_many_preserves_order_and_concludes_every_permit() {
    // Tenant A has 4 burst tokens, so its 5th submission is rejected in
    // place; tenant B's 2 ride the same batch. Results must come back
    // in submission order with the rejection holding its slot, and
    // every admitted permit concluded exactly as `submit` would.
    let (_tb, door, class) =
        door_bed(17, ClassPolicy { rate_per_sec: 0.0, burst: 4, queue_capacity: 8 }, 64);
    let a = door.register_tenant("a", PriorityClass::Interactive);
    let b = door.register_tenant("b", PriorityClass::Interactive);

    let mut subs: Vec<(TenantId, PlacementRequest)> =
        (0..5).map(|_| (a, PlacementRequest::new().class(class, 1))).collect();
    subs.extend((0..2).map(|_| (b, PlacementRequest::new().class(class, 1))));

    let results = door.submit_many(&subs, 4);
    assert_eq!(results.len(), 7);
    for (i, r) in results.iter().enumerate() {
        match (i, r) {
            (4, Err(IngressError::Rejected(Rejected::RateLimited { .. }))) => {}
            (4, other) => panic!("slot 4 should be the rate-limited reject, got {other:?}"),
            (_, Ok(report)) => assert_eq!(report.placed.len(), 1, "slot {i}"),
            (_, other) => panic!("slot {i} should place, got {other:?}"),
        }
    }

    // Admission accounting matches the one-at-a-time path: 4 admitted
    // and concluded for A (plus one rate rejection), 2 for B.
    let sa = door.stats(a).unwrap();
    assert_eq!((sa.admitted, sa.completed, sa.rejected_rate, sa.in_queue()), (4, 4, 1, 0));
    let sb = door.stats(b).unwrap();
    assert_eq!((sb.admitted, sb.completed, sb.in_queue()), (2, 2, 0));
}

#[test]
fn submit_many_matches_sequential_submits() {
    // The batcher is a throughput optimization, not a semantic change:
    // the same submissions through `submit_many` and through looped
    // `submit` land the same number of placements on identical beds.
    let policy = ClassPolicy { rate_per_sec: 0.0, burst: 8, queue_capacity: 8 };
    let run = |batched: bool| -> usize {
        let (_tb, door, class) = door_bed(23, policy, 64);
        let tenant = door.register_tenant("t", PriorityClass::Production);
        let subs: Vec<(TenantId, PlacementRequest)> =
            (0..6).map(|_| (tenant, PlacementRequest::new().class(class, 1))).collect();
        let results: Vec<_> = if batched {
            door.submit_many(&subs, 4)
        } else {
            subs.iter().map(|(t, r)| door.submit(*t, r)).collect()
        };
        results.iter().filter(|r| r.is_ok()).count()
    };
    assert_eq!(run(true), run(false), "batched and sequential goodput must agree");
}
