//! Trace-based assertions over the Fig. 3 pipeline.
//!
//! The `legion-trace` sink watches the same walkthrough the
//! `rmi_pipeline` test drives, but from the observability side: every
//! placement is one *episode* whose span tree must match the paper's
//! schedule → reserve → enact → start sequence exactly, nest correctly,
//! and reconcile with the `MetricsLedger` counters the fabric already
//! keeps (two independent measurement paths, one truth).

use legion::fabric::reconcile::{reconcile_trace, reconciliation_report};
use legion::prelude::*;
use legion::schedulers::Scheduler;
use legion::trace::Span;

/// Places `n` objects of `class` and returns the episode's spans.
fn traced_place(
    tb: &Testbed,
    scheduler: std::sync::Arc<dyn Scheduler>,
    class: Loid,
    n: u32,
) -> Vec<Span> {
    traced_place_with(tb, scheduler, class, n, EnactorConfig::default())
}

/// [`traced_place`] with an explicit Enactor configuration (fan-out
/// width, attempt budget, ...).
fn traced_place_with(
    tb: &Testbed,
    scheduler: std::sync::Arc<dyn Scheduler>,
    class: Loid,
    n: u32,
    config: EnactorConfig,
) -> Vec<Span> {
    let enactor = std::sync::Arc::new(Enactor::with_config(tb.fabric.clone(), config));
    let driver = ScheduleDriver::new(scheduler, enactor);
    let report = driver
        .place(&PlacementRequest::new().class(class, n), &tb.ctx())
        .expect("placement succeeds on an idle bed");
    let ep = report.episode.expect("tracing is enabled, so the report names its episode");
    tb.fabric.tracer().episode_spans(ep)
}

#[test]
fn random_placement_emits_exact_span_sequence() {
    let tb = Testbed::build(TestbedConfig::local(4, 21));
    let class = tb.register_class("seq", 25, 64);
    let sink = tb.fabric.enable_tracing();
    sink.clear();

    let spans = traced_place(&tb, std::sync::Arc::new(RandomScheduler::new(3)), class, 2);
    let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![
            SpanKind::Episode,          // one ScheduleDriver::place call
            SpanKind::Schedule,         // compute_schedule, generation 1
            SpanKind::CollectionQuery,  // its single candidate query
            SpanKind::MakeReservations, // Enactor front half
            SpanKind::ReserveAttempt,   // master fill pass, first try
            SpanKind::EnactSchedule,    // Enactor back half
            SpanKind::EnactInstantiation,
            SpanKind::StartObject, // host-side start, nested in its instantiation
            SpanKind::EnactInstantiation,
            SpanKind::StartObject,
        ],
        "healthy 2-object placement must follow the Fig. 3 walkthrough"
    );

    // Everything ended Ok and nothing is still open.
    assert!(spans.iter().all(|s| s.outcome == SpanOutcome::Ok), "{spans:#?}");
    assert_eq!(sink.open_spans(), 0);
}

#[test]
fn spans_nest_inside_their_episode() {
    let tb = Testbed::build(TestbedConfig::local(4, 22));
    let class = tb.register_class("nest", 25, 64);
    let sink = tb.fabric.enable_tracing();
    sink.clear();

    let spans = traced_place(&tb, std::sync::Arc::new(RandomScheduler::new(5)), class, 2);
    let by_kind = |k: SpanKind| spans.iter().filter(move |s| s.kind == k);
    let root = by_kind(SpanKind::Episode).next().expect("episode root span");
    assert!(!root.parent.is_some(), "episode roots have no parent");

    // Every span belongs to the same episode and points at a parent
    // that (a) exists in the episode and (b) opened before it did.
    for s in &spans {
        assert_eq!(s.episode, root.episode, "span leaked across episodes: {s:?}");
        assert!(s.end >= s.start, "negative duration: {s:?}");
        if s.kind == SpanKind::Episode {
            continue;
        }
        let parent = spans
            .iter()
            .find(|p| p.id == s.parent)
            .unwrap_or_else(|| panic!("orphaned span {s:?}"));
        assert!(parent.id < s.id, "parent must open before child: {s:?}");
    }

    // The stage-level containment the paper's figure implies.
    let parent_kind = |s: &Span| spans.iter().find(|p| p.id == s.parent).map(|p| p.kind);
    for q in by_kind(SpanKind::CollectionQuery) {
        assert_eq!(parent_kind(q), Some(SpanKind::Schedule), "{q:?}");
    }
    for a in by_kind(SpanKind::ReserveAttempt) {
        assert_eq!(parent_kind(a), Some(SpanKind::MakeReservations), "{a:?}");
    }
    for i in by_kind(SpanKind::EnactInstantiation) {
        assert_eq!(parent_kind(i), Some(SpanKind::EnactSchedule), "{i:?}");
    }
    for o in by_kind(SpanKind::StartObject) {
        assert_eq!(parent_kind(o), Some(SpanKind::EnactInstantiation), "{o:?}");
    }
    for top in [SpanKind::Schedule, SpanKind::MakeReservations, SpanKind::EnactSchedule] {
        for s in by_kind(top) {
            assert_eq!(parent_kind(s), Some(SpanKind::Episode), "{s:?}");
        }
    }
}

#[test]
fn irs_variants_need_fewer_collection_queries_than_repeated_random() {
    // §4.2: IRS "generates multiple variant schedules per invocation"
    // from one Collection snapshot, where re-running the random
    // scheduler pays one Collection query per schedule produced.
    const NSCHED: usize = 4;
    let tb = Testbed::build(TestbedConfig::wide(2, 4, 23));
    let class = tb.register_class("irs", 25, 64);
    let ctx = tb.ctx();
    let sink = tb.fabric.enable_tracing();
    let request = PlacementRequest::new().class(class, 3);

    sink.clear();
    let irs = IrsScheduler::new(7, NSCHED);
    let sched = irs.compute_schedule(&request, &ctx).unwrap();
    assert!(
        !sched.schedules[0].variants.is_empty(),
        "IRS produced master + variants from one snapshot"
    );
    let irs_queries = sink.rollup().count(SpanKind::CollectionQuery);
    assert_eq!(
        cache_labels(&sink.spans()),
        vec![Some("miss".to_string())],
        "IRS's one query is the context's first serve: a cache miss"
    );

    sink.clear();
    let random = RandomScheduler::new(7);
    for _ in 0..NSCHED {
        random.compute_schedule(&request, &ctx).unwrap();
    }
    let random_queries = sink.rollup().count(SpanKind::CollectionQuery);
    assert_eq!(
        cache_labels(&sink.spans()),
        vec![Some("hit".to_string()); NSCHED],
        "every random rerun serves from the candidate set the IRS miss materialized"
    );

    assert!(
        irs_queries < random_queries,
        "IRS should amortize the Collection query across its variants: \
         irs={irs_queries} random={random_queries}"
    );
    assert_eq!(irs_queries, 1, "one query per class per IRS invocation");
    assert_eq!(random_queries, NSCHED as u64, "one query per random schedule");
}

/// The `cache` attribute of every CollectionQuery span, in span order.
fn cache_labels(spans: &[Span]) -> Vec<Option<String>> {
    spans
        .iter()
        .filter(|s| s.kind == SpanKind::CollectionQuery)
        .map(|s| {
            s.attrs
                .iter()
                .find(|(k, _)| *k == "cache")
                .and_then(|(_, v)| v.as_str().map(str::to_string))
        })
        .collect()
}

#[test]
fn candidate_cache_serves_are_attributed_on_query_spans() {
    // One context, repeated placements: the span stream must narrate
    // the cache's behaviour — miss on first touch, hits while the
    // Collection is quiet, a patched serve after delta-logged churn,
    // and a ledger that still reconciles (every serve is one query).
    let tb = Testbed::build(TestbedConfig::local(4, 31));
    let class = tb.register_class("cache", 25, 64);
    let ctx = tb.ctx();
    ctx.collection.enable_deltas(1024);
    let sink = tb.fabric.enable_tracing();
    sink.clear();
    let before = tb.fabric.metrics().snapshot();

    let enactor = std::sync::Arc::new(Enactor::new(tb.fabric.clone()));
    let driver = ScheduleDriver::new(std::sync::Arc::new(RandomScheduler::new(3)), enactor);
    for _ in 0..3 {
        driver.place(&PlacementRequest::new().class(class, 1), &ctx).unwrap();
    }
    assert_eq!(
        cache_labels(&sink.spans()),
        vec![Some("miss".into()), Some("hit".into()), Some("hit".into())],
        "quiet Collection: one materializing miss, then epoch-validated hits"
    );

    // A tick refreshes every host record through the pull daemon; the
    // churn lands in the delta log, so the next serve patches.
    tb.tick(SimDuration::from_secs(1));
    driver.place(&PlacementRequest::new().class(class, 1), &ctx).unwrap();
    let labels = cache_labels(&sink.spans());
    assert_eq!(labels.last().unwrap().as_deref(), Some("patched"), "churn patches: {labels:?}");

    let stats = ctx.candidate_cache_stats();
    assert_eq!((stats.misses, stats.hits, stats.patched), (1, 2, 1));
    // Cached serves are still accounted queries: the ledger agrees with
    // the span stream, serve for serve.
    let delta = tb.fabric.metrics().snapshot().delta(&before);
    assert_eq!(delta.collection_queries, 4, "four serves, four accounted queries");
    let mismatches = reconcile_trace(&sink.rollup(), &delta);
    assert!(mismatches.is_empty(), "trace and ledger diverged: {mismatches:?}");
}

#[test]
fn trace_rollup_reconciles_with_the_metrics_ledger() {
    let tb = Testbed::build(TestbedConfig::wide(2, 3, 24));
    let class_a = tb.register_class("rec-a", 25, 64);
    let class_b = tb.register_class("rec-b", 40, 96);
    let sink = tb.fabric.enable_tracing();
    sink.clear();
    let before = tb.fabric.metrics().snapshot();

    let enactor = std::sync::Arc::new(Enactor::new(tb.fabric.clone()));
    let random: std::sync::Arc<dyn Scheduler> = std::sync::Arc::new(RandomScheduler::new(11));
    let irs: std::sync::Arc<dyn Scheduler> = std::sync::Arc::new(IrsScheduler::new(13, 3));
    for (scheduler, class, n) in [
        (std::sync::Arc::clone(&random), class_a, 2),
        (std::sync::Arc::clone(&irs), class_b, 3),
        (std::sync::Arc::clone(&random), class_b, 1),
    ] {
        ScheduleDriver::new(scheduler, std::sync::Arc::clone(&enactor))
            .place(&PlacementRequest::new().class(class, n), &tb.ctx())
            .unwrap();
    }

    let delta = tb.fabric.metrics().snapshot().delta(&before);
    let rollup = sink.rollup();
    let mismatches = reconcile_trace(&rollup, &delta);
    assert!(
        mismatches.is_empty(),
        "trace and ledger disagree:\n{}",
        reconciliation_report(&rollup, &delta)
    );
    // And the reconciliation actually covered real traffic.
    assert_eq!(rollup.ok_count(SpanKind::Episode), 3, "one Ok episode per placement");
    assert!(rollup.objects_started >= 6);
    assert!(delta.objects_started >= 6);
}

#[test]
fn latency_histograms_count_every_span_and_cost_is_visible() {
    let tb = Testbed::build(TestbedConfig::wide(2, 2, 25));
    let class = tb.register_class("hist", 25, 64);
    let sink = tb.fabric.enable_tracing();
    sink.clear();

    let spans = traced_place(&tb, std::sync::Arc::new(RandomScheduler::new(9)), class, 2);
    for kind in SpanKind::ALL {
        let expected = spans.iter().filter(|s| s.kind == kind).count() as u64;
        assert_eq!(
            sink.histogram(kind).count(),
            expected,
            "histogram[{kind:?}] must count exactly the closed spans"
        );
    }
    // The bed spans two domains, so message latency was charged to the
    // spans that sent the messages (the virtual clock itself does not
    // advance for messaging), and the rollup aggregates the same total.
    let charged: u64 = spans.iter().map(|s| s.charged.as_micros()).sum();
    assert!(charged > 0, "inter-domain traffic must charge span latency");
    assert_eq!(sink.rollup().charged_us, charged);
}

#[test]
fn concurrent_placements_keep_episodes_separate() {
    // The context stack is thread-local: four threads placing at once
    // must produce four clean, fully-closed episodes with no span
    // parented across threads, and the rollup must still reconcile.
    let tb = std::sync::Arc::new(Testbed::build(TestbedConfig::wide(2, 4, 26)));
    let class = tb.register_class("conc", 10, 16);
    let sink = tb.fabric.enable_tracing();
    sink.clear();
    let before = tb.fabric.metrics().snapshot();

    let episodes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tb = std::sync::Arc::clone(&tb);
                scope.spawn(move || {
                    let enactor = Enactor::new(tb.fabric.clone());
                    let scheduler = RandomScheduler::new(100 + i);
                    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
                    let report = driver
                        .place(&PlacementRequest::new().class(class, 1), &tb.ctx())
                        .expect("concurrent placement succeeds");
                    report.episode.unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(sink.open_spans(), 0, "every span closed despite interleaving");
    for &ep in &episodes {
        let spans = tb.fabric.tracer().episode_spans(ep);
        assert!(!spans.is_empty());
        for s in &spans {
            assert_eq!(s.episode, ep);
            // Parents stay inside the episode — the thread-local stack
            // never parented a span to another thread's work.
            if s.parent.is_some() {
                assert!(spans.iter().any(|p| p.id == s.parent), "cross-thread parent: {s:?}");
            }
        }
        let rollup = tb.fabric.tracer().rollup_for(ep);
        assert_eq!(rollup.ok_count(SpanKind::Episode), 1);
    }

    let delta = tb.fabric.metrics().snapshot().delta(&before);
    let rollup = sink.rollup();
    assert!(
        reconcile_trace(&rollup, &delta).is_empty(),
        "concurrent trace must still reconcile:\n{}",
        reconciliation_report(&rollup, &delta)
    );
}

#[test]
fn fanout_placement_emits_the_serial_span_sequence() {
    // The fan-out workers open no spans of their own — they adopt the
    // coordinator's attempt span — so the exported walkthrough is
    // byte-for-byte the serial Fig. 3 sequence, whatever the width.
    let tb = Testbed::build(TestbedConfig::local(4, 29));
    let class = tb.register_class("fanseq", 25, 64);
    let sink = tb.fabric.enable_tracing();
    sink.clear();

    let spans = traced_place_with(
        &tb,
        std::sync::Arc::new(RandomScheduler::new(3)),
        class,
        2,
        EnactorConfig { fanout: 8, ..Default::default() },
    );
    let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![
            SpanKind::Episode,
            SpanKind::Schedule,
            SpanKind::CollectionQuery,
            SpanKind::MakeReservations,
            SpanKind::ReserveAttempt,
            SpanKind::EnactSchedule,
            SpanKind::EnactInstantiation,
            SpanKind::StartObject,
            SpanKind::EnactInstantiation,
            SpanKind::StartObject,
        ],
        "fan-out must not change the exported span walkthrough"
    );
    assert!(spans.iter().all(|s| s.outcome == SpanOutcome::Ok), "{spans:#?}");
    assert_eq!(sink.open_spans(), 0);
}

#[test]
fn fanout_workers_charge_latency_to_the_attempt_span() {
    use legion::fabric::reconcile::{reconcile_trace, reconciliation_report};

    // A co-allocation spanning four domains, reserved 4-wide: each
    // worker's reservation message is charged — through the adopted
    // span context — to the same ReserveAttempt span the serial pass
    // charges, so the attempt's charged time is exactly one intra- plus
    // three inter-domain hops.
    let tb = Testbed::build(TestbedConfig::wide(4, 2, 30));
    let class = tb.register_class("fanchg", 10, 16);
    tb.tick(SimDuration::from_secs(1));
    let sink = tb.fabric.enable_tracing();
    sink.clear();
    let before = tb.fabric.metrics().snapshot();

    let enactor = Enactor::with_config(
        tb.fabric.clone(),
        EnactorConfig { fanout: 4, ..Default::default() },
    );
    // One host per domain: unix_hosts is domain-major, two per domain.
    let mappings: Vec<Mapping> = (0..4)
        .map(|d| {
            let host = &tb.unix_hosts[d * 2];
            Mapping::new(class, host.loid(), host.get_compatible_vaults()[0])
        })
        .collect();
    let fb = enactor.make_reservations(&ScheduleRequestList::single(mappings));
    assert!(fb.reserved());

    let spans = sink.spans();
    let attempt = spans
        .iter()
        .find(|s| s.kind == SpanKind::ReserveAttempt)
        .expect("one attempt span");
    let expected_us = 100 + 3 * 40_000; // intra hop + three inter hops
    assert_eq!(
        attempt.charged.as_micros(),
        expected_us,
        "worker-side messages must charge the attempt span"
    );
    assert_eq!(sink.open_spans(), 0, "adopted contexts all unwound");

    // And the cross-thread charging kept the books straight.
    let delta = tb.fabric.metrics().snapshot().delta(&before);
    let rollup = sink.rollup();
    assert!(
        reconcile_trace(&rollup, &delta).is_empty(),
        "fan-out trace must reconcile:\n{}",
        reconciliation_report(&rollup, &delta)
    );
}

#[test]
fn disabled_tracer_records_nothing_and_reports_no_episode() {
    let tb = Testbed::build(TestbedConfig::local(3, 27));
    let class = tb.register_class("off", 25, 64);
    // Tracing is off by default: the pipeline runs clean and unobserved.
    let enactor = Enactor::new(tb.fabric.clone());
    let scheduler = RandomScheduler::new(1);
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
    let report =
        driver.place(&PlacementRequest::new().class(class, 2), &tb.ctx()).unwrap();
    assert_eq!(report.placed.len(), 2);
    assert!(report.episode.is_none(), "disabled tracer mints no episodes");
    assert!(tb.fabric.tracer().spans().is_empty());
    assert_eq!(tb.fabric.tracer().rollup().total(), 0);
}
