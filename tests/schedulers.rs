//! Cross-crate scheduler behaviour through the facade.

use legion::prelude::*;
use legion::schedule::ScheduleOutcome;
use legion::schedulers::{KOfNScheduler, RoundRobinScheduler};

type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;

#[test]
fn every_stock_scheduler_places_on_an_idle_bed() {
    let schedulers: Vec<(&str, SchedulerFactory)> = vec![
        ("random", Box::new(|| Box::new(RandomScheduler::new(5)))),
        ("irs", Box::new(|| Box::new(IrsScheduler::new(5, 4)))),
        ("round-robin", Box::new(|| Box::new(RoundRobinScheduler::new()))),
        ("load-aware", Box::new(|| Box::new(LoadAwareScheduler::new()))),
        ("k-of-n", Box::new(|| Box::new(KOfNScheduler::new()))),
    ];
    for (name, mk) in schedulers {
        let tb = Testbed::build(TestbedConfig::wide(2, 4, 21));
        let class = tb.register_class("w", 25, 64);
        let scheduler = mk();
        let enactor = Enactor::new(tb.fabric.clone());
        let driver = ScheduleDriver::new(std::sync::Arc::from(scheduler), std::sync::Arc::new(enactor));
        let report = driver
            .place(&PlacementRequest::new().class(class, 4), &tb.ctx())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(report.placed.len(), 4, "{name}");
    }
}

#[test]
fn irs_beats_random_under_heavy_contention() {
    // Statistical comparison over 20 paired trials: IRS (variants +
    // feedback) must succeed at least as often as one-shot Random, and
    // strictly more in aggregate.
    let mut random_wins = 0;
    let mut irs_wins = 0;
    for trial in 0..20u64 {
        let mk = || {
            let tb = Testbed::build(TestbedConfig::local(12, 100 + trial));
            let class = tb.register_class("w", 100, 64);
            // Saturate 9 of 12 hosts.
            for h in &tb.unix_hosts[..9] {
                let vault = h.get_compatible_vaults()[0];
                let req = ReservationRequest::instantaneous(
                    class,
                    vault,
                    SimDuration::from_secs(1 << 20),
                )
                .with_type(ReservationType::REUSABLE_SPACE);
                h.make_reservation(&req, tb.fabric.clock().now()).unwrap();
            }
            tb.tick(SimDuration::from_secs(1));
            (tb, class)
        };

        let (tb, class) = mk();
        let s = RandomScheduler::new(trial);
        let e = Enactor::new(tb.fabric.clone());
        let sched = s
            .compute_schedule(&PlacementRequest::new().class(class, 2), &tb.ctx())
            .unwrap();
        if e.make_reservations(&sched).reserved() {
            random_wins += 1;
        }

        let (tb, class) = mk();
        let s = IrsScheduler::new(trial, 8);
        let e = Enactor::new(tb.fabric.clone());
        let sched = s
            .compute_schedule(&PlacementRequest::new().class(class, 2), &tb.ctx())
            .unwrap();
        if e.make_reservations(&sched).reserved() {
            irs_wins += 1;
        }
    }
    assert!(
        irs_wins > random_wins,
        "IRS ({irs_wins}/20) should beat Random ({random_wins}/20) under contention"
    );
    // Fig. 8 variants are *joint* redraws — variant l re-picks every
    // instance — so each schedule attempt succeeds with ~(3/12)^2 and
    // eight attempts give ~0.4 overall; Random's single master gives
    // ~0.06. Demand the comparative shape, not a fantasy bound.
    assert!(
        irs_wins >= 5,
        "IRS with NSched=8 should win a substantial fraction: {irs_wins}/20"
    );
    assert!(random_wins <= 5, "one-shot Random should rarely survive 75% blocking");
}

#[test]
fn scheduler_constraints_flow_to_collection_queries() {
    let tb = Testbed::build(TestbedConfig {
        domains: 1,
        unix_per_domain: 2,
        smp_per_domain: 2, // SMPs have 4 GB
        ..TestbedConfig::local(0, 23)
    });
    let class = tb.register_class("big", 100, 2048);
    let scheduler = RoundRobinScheduler::new();
    // Only the SMPs satisfy the memory constraint.
    let sched = scheduler
        .compute_schedule(
            &PlacementRequest::new().class_where(class, 2, "$host_memory_mb >= 4096"),
            &tb.ctx(),
        )
        .unwrap();
    let smp_loids: std::collections::BTreeSet<Loid> = tb
        .unix_hosts
        .iter()
        .filter(|h| h.config().ncpus == 4)
        .map(|h| h.loid())
        .collect();
    for m in &sched.schedules[0].master.mappings {
        assert!(smp_loids.contains(&m.host), "constraint must exclude workstations");
    }
}

#[test]
fn feedback_reports_which_schedule_won() {
    let tb = Testbed::build(TestbedConfig::local(3, 25));
    let class = tb.register_class("w", 100, 64);
    // Saturate host 0 so the first master fails.
    let h0 = &tb.unix_hosts[0];
    let vault = h0.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(1 << 20))
        .with_type(ReservationType::REUSABLE_SPACE);
    h0.make_reservation(&req, tb.fabric.clock().now()).unwrap();

    let m = |i: usize| Mapping::new(class, tb.unix_hosts[i].loid(), tb.vault_loids[0]);
    let request = ScheduleRequestList::default()
        .push(legion::schedule::ScheduleRequest::master_only(vec![m(0)]))
        .push(legion::schedule::ScheduleRequest::master_only(vec![m(1)]));
    let enactor = Enactor::new(tb.fabric.clone());
    let fb = enactor.make_reservations(&request);
    assert_eq!(fb.outcome, ScheduleOutcome::Reserved { schedule: 1, variant: None });
    // The feedback carries the original request, per the paper.
    assert_eq!(fb.request.schedules.len(), 2);
}
