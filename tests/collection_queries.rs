//! The Collection on a live testbed: the paper's query, push/pull,
//! authentication, and function injection end to end.

use legion::prelude::*;
use legion::collection::LoadForecaster;

#[test]
fn paper_example_query_against_live_hosts() {
    // Build a bed whose hosts run IRIX 5.3 (the testbed default) and add
    // one host on a different platform by hand.
    let tb = Testbed::build(TestbedConfig::local(3, 30));
    let linux = StandardHost::new(
        HostConfig::unix("lx0", "site0.edu").platform("x86", "Linux", "2.0.36"),
        tb.fabric.clone(),
        77,
    );
    tb.fabric
        .register_host(linux.clone() as std::sync::Arc<dyn HostObject>, DomainId(0));
    tb.daemon.track_host(linux as std::sync::Arc<dyn HostObject>);
    tb.tick(SimDuration::from_secs(1));

    // The query from §3.2, adapted to version matching.
    let rs = tb
        .collection
        .query(r#"match($host_os_name, "IRIX") and match("5\..*", $host_os_version)"#)
        .unwrap();
    assert_eq!(rs.len(), 3, "only the IRIX 5.x hosts match");

    let rs = tb.collection.query(r#"match($host_os_name, "Linux")"#).unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn rich_attributes_are_queryable() {
    // §3.1: hosts export "a rich set of information, well beyond the
    // minimal architecture, OS, and load average".
    let tb = Testbed::build(TestbedConfig::wide(2, 2, 31));
    let rec = &tb.collection.dump()[0];
    for attr in [
        "host_name",
        "host_domain",
        "host_arch",
        "host_os_name",
        "host_os_version",
        "host_ncpus",
        "host_memory_mb",
        "host_free_memory_mb",
        "host_load",
        "host_price_per_cpu_sec",
        "host_willingness",
        "host_flavor",
        "host_running_objects",
        "host_compatible_vaults",
    ] {
        assert!(rec.attrs.contains(attr), "missing {attr}");
    }
    // Compatible vaults round-trip as parseable LOIDs.
    let vaults = rec.attrs.get("host_compatible_vaults").unwrap().as_list().unwrap();
    assert!(!vaults.is_empty());
    for v in vaults {
        let s = v.as_str().unwrap();
        let parsed: Loid = s.parse().unwrap();
        assert!(tb.vault_loids.contains(&parsed));
    }

    // Domain-targeted query.
    let rs = tb.collection.query(r#"$host_domain == "site1.edu""#).unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn push_and_pull_coexist() {
    let tb = Testbed::build(TestbedConfig::local(2, 32));
    // A service object joins with initial data (push model, Fig. 4).
    let svc = Loid::fresh(legion::core::LoidKind::Service);
    let cred = tb.collection.join_with(
        svc,
        AttributeDb::new().with("service_kind", "enactor").with("version", 2i64),
        tb.fabric.clock().now(),
    );
    assert_eq!(tb.collection.len(), 3);

    // It pushes an update; the daemon's pulls don't disturb it.
    tb.collection
        .update(&cred, &AttributeDb::new().with("version", 3i64), tb.fabric.clock().now())
        .unwrap();
    tb.tick(SimDuration::from_secs(30));
    let rec = tb.collection.get(svc).unwrap();
    assert_eq!(rec.attrs.get_i64("version"), Some(3));
    assert_eq!(rec.attrs.get_str("service_kind"), Some("enactor"));

    // Unauthenticated update attempts fail.
    let forged = legion::collection::MemberCredential { member: svc, tag: 0 };
    assert!(matches!(
        tb.collection.update(&forged, &AttributeDb::new(), tb.fabric.clock().now()),
        Err(LegionError::AuthFailed)
    ));
}

#[test]
fn forecast_injection_visible_in_queries() {
    let tb = Testbed::build(TestbedConfig {
        load: legion::apps::LoadRegime::Ar1 { mean: 0.5 },
        ..TestbedConfig::local(4, 33)
    });
    tb.collection.install_function(tb.forecaster.as_derived_attribute());
    for _ in 0..6 {
        tb.tick(SimDuration::from_secs(30));
    }
    // Forecasts exist for every host and are queryable like any attr.
    let rs = tb.collection.query("exists($host_load_forecast)").unwrap();
    assert_eq!(rs.len(), 4);
    let rs = tb.collection.query("$host_load_forecast >= 0.0").unwrap();
    assert_eq!(rs.len(), 4);
}

#[test]
fn forecaster_tracks_independent_hosts() {
    let f = LoadForecaster::new(8);
    let a = Loid::fresh(legion::core::LoidKind::Host);
    let b = Loid::fresh(legion::core::LoidKind::Host);
    for i in 0..8 {
        f.observe(a, 0.2 + 0.01 * i as f64);
        f.observe(b, 1.5);
    }
    let fa = f.forecast(a).unwrap();
    let fb = f.forecast(b).unwrap();
    assert!(fa < 0.6, "host a is lightly loaded: {fa}");
    assert!((fb - 1.5).abs() < 1e-6, "host b is steady at 1.5: {fb}");
}

#[test]
fn queries_are_safe_against_malicious_patterns() {
    // The NFA engine is linear-time: a classic catastrophic pattern over
    // a long attribute must return promptly (and not match).
    let tb = Testbed::build(TestbedConfig::local(1, 34));
    let svc = Loid::fresh(legion::core::LoidKind::Service);
    tb.collection.join_with(
        svc,
        AttributeDb::new().with("blob", "a".repeat(4000)),
        tb.fabric.clock().now(),
    );
    let start = std::time::Instant::now();
    let rs = tb.collection.query(r#"match("(a*)*b", $blob)"#).unwrap();
    assert!(rs.is_empty());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "no exponential blow-up"
    );
}
