//! Federated Collections across a multi-domain bed: per-domain
//! Collections fed by one daemon, queried through the federation.

use legion::collection::{Collection, DataCollectionDaemon, FederatedCollection};
use legion::prelude::*;
use std::sync::Arc;

fn federated_bed() -> (Testbed, Arc<FederatedCollection>, Vec<Arc<Collection>>) {
    let tb = Testbed::build(TestbedConfig::wide(3, 3, 314));
    // One Collection per domain, each fed by its own daemon tracking
    // only that domain's hosts — the locality partition a real
    // federation would use.
    let per_domain: Vec<Arc<Collection>> =
        (0..3).map(|d| Collection::new(1000 + d)).collect();
    let fed = FederatedCollection::new();
    for (d, c) in per_domain.iter().enumerate() {
        let dom_daemon = DataCollectionDaemon::new(Arc::clone(c));
        for h in tb.unix_hosts.iter().skip(d * 3).take(3) {
            dom_daemon.track_host(Arc::clone(h) as Arc<dyn HostObject>);
        }
        dom_daemon.pull_once(tb.fabric.clock().now());
        fed.add_member(format!("site{d}.edu"), Arc::clone(c));
    }
    (tb, fed, per_domain)
}

#[test]
fn federation_fans_out_across_domains() {
    let (_tb, fed, per_domain) = federated_bed();
    assert_eq!(fed.member_count(), 3);
    assert_eq!(fed.len(), 9);
    for c in &per_domain {
        assert_eq!(c.len(), 3, "each domain collection holds its own hosts");
    }

    // A federated query hits all domains and tags origins.
    let hits = fed.query(r#"match($host_os_name, "IRIX")"#).unwrap();
    assert_eq!(hits.len(), 9);
    let origins: std::collections::BTreeSet<&str> =
        hits.iter().map(|h| h.origin.as_str()).collect();
    assert_eq!(origins.len(), 3);

    // Records carry the right domain attribute for their origin.
    for h in &hits {
        assert_eq!(
            h.record.attrs.get_str(legion::core::host::well_known::DOMAIN),
            Some(h.origin.as_str())
        );
    }
}

#[test]
fn locality_scoped_query_sees_only_one_domain() {
    let (tb, fed, _) = federated_bed();
    let local = fed.query_member("site1.edu", "$host_load >= 0.0").unwrap();
    assert_eq!(local.len(), 3);
    for r in &local {
        assert_eq!(tb.fabric.domain_of(r.member), DomainId(1));
    }
    // locate() finds the owning member for any host.
    let some_host = tb.unix_hosts[7].loid(); // domain 2
    assert_eq!(fed.locate(some_host).as_deref(), Some("site2.edu"));
}

#[test]
fn scheduler_over_a_single_federation_member() {
    use legion::schedulers::{RandomScheduler, SchedCtx};
    // A locality-aware application schedules strictly within its home
    // domain by pointing its SchedCtx at that domain's Collection.
    let (tb, _, per_domain) = federated_bed();
    let class = tb.register_class("local-app", 25, 64);
    let ctx = SchedCtx::new(Arc::clone(&tb.fabric), Arc::clone(&per_domain[2]));
    let scheduler = RandomScheduler::new(8);
    let sched = scheduler
        .compute_schedule(&PlacementRequest::new().class(class, 3), &ctx)
        .unwrap();
    for m in &sched.schedules[0].master.mappings {
        assert_eq!(tb.fabric.domain_of(m.host), DomainId(2), "placement stayed home");
    }
    // And it enacts.
    let enactor = Enactor::new(tb.fabric.clone());
    let fb = enactor.make_reservations(&sched);
    assert!(fb.reserved());
}
