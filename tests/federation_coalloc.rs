//! Federation behaviour: autonomy policies and co-allocation across
//! administrative domains, with network failure in the mix.

use legion::hosts::{DomainRefusal, TimeOfDayWindow};
use legion::prelude::*;
use legion::schedule::{MasterSchedule, ScheduleRequest, VariantSchedule};
use std::sync::Arc;

#[test]
fn autonomy_refusals_are_the_hosts_final_word() {
    // "requests are made of resource guardians, who have final authority
    // over what requests are honored" (§3).
    let tb = Testbed::build(TestbedConfig::wide(2, 2, 50));
    let class = tb.register_class("w", 25, 64);
    for h in &tb.unix_hosts[2..] {
        h.add_policy(Arc::new(DomainRefusal::new(["site0.edu"])));
    }
    tb.tick(SimDuration::from_secs(1));

    // An Enactor in site0 can only use site0's hosts.
    let enactor = Enactor::with_config(
        tb.fabric.clone(),
        EnactorConfig { requester_domain: Some("site0.edu".into()), ..Default::default() },
    );
    let ok = Mapping::new(class, tb.unix_hosts[0].loid(), tb.vault_loids[0]);
    let refused = Mapping::new(class, tb.unix_hosts[2].loid(), tb.vault_loids[1]);
    assert!(enactor.make_reservations(&ScheduleRequestList::single(vec![ok])).reserved());
    let fb = enactor.make_reservations(&ScheduleRequestList::single(vec![refused]));
    assert!(!fb.reserved());
    let d = tb.fabric.metrics().snapshot();
    assert!(d.reservations_denied >= 1);
}

#[test]
fn coallocation_is_all_or_nothing() {
    let tb = Testbed::build(TestbedConfig::wide(3, 1, 51));
    let class = tb.register_class("w", 25, 64);
    // Domain 2's only host refuses everyone after hours; freeze time at
    // noon so it refuses.
    tb.unix_hosts[2].add_policy(Arc::new(TimeOfDayWindow { from_hour: 18, to_hour: 19 }));
    tb.fabric.clock().advance_to(SimTime::from_secs(12 * 3600));

    let m = |d: usize| Mapping::new(class, tb.unix_hosts[d].loid(), tb.vault_loids[d]);
    let enactor = Enactor::new(tb.fabric.clone());
    let before = tb.fabric.metrics().snapshot();
    let fb = enactor.make_reservations(&ScheduleRequestList::single(vec![m(0), m(1), m(2)]));
    assert!(!fb.reserved(), "one refusing domain sinks the co-allocation");
    let d = tb.fabric.metrics().snapshot().delta(&before);
    // The two obtained reservations were cancelled (no leaks).
    assert_eq!(d.reservations_granted, 2);
    assert_eq!(d.reservations_cancelled, 2);

    // After hours the same schedule co-allocates.
    tb.fabric.clock().advance_to(SimTime::from_secs(18 * 3600 + 60));
    let fb = enactor.make_reservations(&ScheduleRequestList::single(vec![m(0), m(1), m(2)]));
    assert!(fb.reserved());
}

#[test]
fn lossy_wan_is_survivable_with_variants() {
    // With 20% inter-domain message loss, a master-only co-allocation
    // fails often; per-position variants (retry different hosts in the
    // same domain) recover most of it. Statistical over 30 trials.
    let mut plain_ok = 0;
    let mut variant_ok = 0;
    for trial in 0..30u64 {
        for variants in [false, true] {
            let tb = Testbed::build(TestbedConfig::wide(3, 3, 600 + trial));
            let class = tb.register_class("w", 25, 64);
            tb.tick(SimDuration::from_secs(1));
            tb.fabric.with_topology(|t| t.set_inter_domain_drop_prob(0.2));

            let m = |d: usize, i: usize| {
                Mapping::new(class, tb.unix_hosts[d * 3 + i].loid(), tb.vault_loids[d])
            };
            let master: Vec<Mapping> = (0..3).map(|d| m(d, 0)).collect();
            let mut sched = ScheduleRequest {
                master: MasterSchedule::new(master),
                variants: vec![],
            };
            if variants {
                for v in 1..3 {
                    let repl: Vec<(usize, Mapping)> = (0..3).map(|d| (d, m(d, v))).collect();
                    sched = sched.with_variant(VariantSchedule::replacing(3, &repl));
                }
            }
            // A tight deadline budget keeps the Enactor from riding out
            // the loss with in-place backoff retries (which would rescue
            // the master-only case too) — this test isolates what
            // *schedule diversity* recovers.
            let enactor = Enactor::with_config(
                tb.fabric.clone(),
                EnactorConfig {
                    deadline: Some(SimDuration::from_millis(1)),
                    ..Default::default()
                },
            );
            let fb =
                enactor.make_reservations(&ScheduleRequestList { schedules: vec![sched] });
            if fb.reserved() {
                if variants {
                    variant_ok += 1;
                } else {
                    plain_ok += 1;
                }
            }
        }
    }
    assert!(
        variant_ok > plain_ok,
        "variants must improve lossy-WAN co-allocation: {variant_ok} vs {plain_ok}"
    );
    assert!(variant_ok >= 20, "with two retries per position, most trials succeed");
}

#[test]
fn enactor_charges_wan_latency_per_domain() {
    let tb = Testbed::build(TestbedConfig::wide(4, 1, 52));
    let class = tb.register_class("w", 25, 64);
    let m = |d: usize| Mapping::new(class, tb.unix_hosts[d].loid(), tb.vault_loids[d]);
    let enactor = Enactor::new(tb.fabric.clone());
    let before = tb.fabric.metrics().snapshot();
    let fb = enactor.make_reservations(&ScheduleRequestList::single(vec![
        m(0),
        m(1),
        m(2),
        m(3),
    ]));
    assert!(fb.reserved());
    let d = tb.fabric.metrics().snapshot().delta(&before);
    // The Enactor lives in domain 0: 3 of 4 reservation messages crossed
    // the WAN at 40 ms; the intra-domain one cost 100 us.
    assert!(d.sim_latency_us >= 3 * 40_000, "latency charged: {}", d.sim_latency_us);
    assert!(d.sim_latency_us < 4 * 40_000);
}
