//! Concurrency: multiple Enactors racing for the same scarce hosts from
//! real threads. The host-side reservation tables are the only
//! serialization point — exactly the paper's "Host acts as an arbiter" —
//! so capacity must never over-commit and co-allocation must stay
//! all-or-nothing under interleaving.

use legion::prelude::*;
use std::sync::Arc;

#[test]
fn racing_enactors_never_oversubscribe() {
    // 4 single-CPU hosts; 8 threads each trying to co-allocate a pair of
    // full-CPU reservations. At most 2 pairs can win.
    let tb = Arc::new(Testbed::build(TestbedConfig::local(4, 77)));
    let class = tb.register_class("racer", 100, 64);
    tb.tick(SimDuration::from_secs(1));

    let barrier = Arc::new(std::sync::Barrier::new(8));
    let wins = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let tb = Arc::clone(&tb);
            let barrier = Arc::clone(&barrier);
            let wins = Arc::clone(&wins);
            std::thread::spawn(move || {
                let enactor = Enactor::new(tb.fabric.clone());
                // Each thread asks for hosts (i, i+1) mod 4 — overlapping
                // pairs to maximize contention.
                let m = |k: usize| {
                    Mapping::new(
                        class,
                        tb.unix_hosts[k % 4].loid(),
                        tb.vault_loids[0],
                    )
                };
                let req = ScheduleRequestList::single(vec![m(i), m(i + 1)]);
                barrier.wait();
                let fb = enactor.make_reservations(&req);
                if fb.reserved() {
                    wins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    fb
                } else {
                    fb
                }
            })
        })
        .collect();
    let feedbacks: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let won = wins.load(std::sync::atomic::Ordering::SeqCst);
    assert!(won <= 2, "4 CPUs cannot satisfy more than 2 full-CPU pairs, got {won}");
    // Each host granted at most one live full-CPU reservation: verify by
    // checking every winning token is Active and disjoint by host.
    let mut held_hosts = std::collections::BTreeSet::new();
    for fb in feedbacks.iter().filter(|f| f.reserved()) {
        for tok in &fb.reservations {
            assert!(
                held_hosts.insert(tok.host),
                "host {} granted two overlapping full-CPU reservations",
                tok.host
            );
        }
    }
    // Losers left nothing behind: all 4 hosts can still grant afresh
    // after the winners cancel.
    for fb in feedbacks.iter().filter(|f| f.reserved()) {
        let enactor = Enactor::new(tb.fabric.clone());
        enactor.cancel_reservations(fb);
    }
    let enactor = Enactor::new(tb.fabric.clone());
    let all = ScheduleRequestList::single(
        (0..4)
            .map(|k| Mapping::new(class, tb.unix_hosts[k].loid(), tb.vault_loids[0]))
            .collect(),
    );
    assert!(enactor.make_reservations(&all).reserved(), "no leaked capacity");
}

#[test]
fn place_many_preserves_order_and_never_oversubscribes() {
    // 8 single-CPU hosts, half-CPU demand: 16 instance slots. Eight
    // requests alternating 1 and 2 instances (12 total) all fit, so
    // every report must succeed, land in its spec's slot, and no host
    // may exceed its two-instance capacity however the workers race.
    use legion::schedulers::{PlacementSpec, RandomScheduler};

    let tb = Testbed::build(TestbedConfig::wide(2, 4, 83));
    let class = tb.register_class("bulk", 50, 64);
    tb.tick(SimDuration::from_secs(1));

    let scheduler = RandomScheduler::new(7);
    let enactor = Enactor::new(tb.fabric.clone());
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
    let ctx = tb.ctx();
    let counts: Vec<u32> = (0..8).map(|i| 1 + (i % 2)).collect();
    let specs: Vec<PlacementSpec> =
        counts.iter().map(|&n| PlacementSpec::of(class, n)).collect();

    let reports = driver.place_many(&specs, &ctx, 8);
    assert_eq!(reports.len(), specs.len(), "one slot per spec");
    for (i, report) in reports.iter().enumerate() {
        let report = report.as_ref().unwrap_or_else(|e| panic!("spec {i} failed: {e}"));
        assert_eq!(
            report.placed.len(),
            counts[i] as usize,
            "slot {i} must hold the report for spec {i}"
        );
    }
    // The hosts stayed the arbiters: nobody holds more than two
    // half-CPU objects, and the bed holds exactly the 12 placed.
    let mut total = 0;
    for host in &tb.unix_hosts {
        let n = host.running_objects().len();
        assert!(n <= 2, "host {} oversubscribed: {n} objects", host.loid());
        total += n;
    }
    assert_eq!(total, 12);

    // Degenerate width: one worker is the plain serial loop and must
    // also fill every slot on a fresh, identical bed.
    let tb2 = Testbed::build(TestbedConfig::wide(2, 4, 83));
    let class2 = tb2.register_class("bulk", 50, 64);
    tb2.tick(SimDuration::from_secs(1));
    let scheduler2 = RandomScheduler::new(7);
    let enactor2 = Enactor::new(tb2.fabric.clone());
    let driver2 = ScheduleDriver::new(std::sync::Arc::new(scheduler2), std::sync::Arc::new(enactor2));
    let specs2: Vec<PlacementSpec> =
        counts.iter().map(|&n| PlacementSpec::of(class2, n)).collect();
    let serial = driver2.place_many(&specs2, &tb2.ctx(), 1);
    for (i, report) in serial.iter().enumerate() {
        assert_eq!(report.as_ref().unwrap().placed.len(), counts[i] as usize);
    }
}

#[test]
fn concurrent_collection_updates_and_queries() {
    // Readers query while writers push; no torn state, every record
    // stays internally consistent.
    let tb = Arc::new(Testbed::build(TestbedConfig::local(8, 79)));
    tb.tick(SimDuration::from_secs(1));

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let tb = Arc::clone(&tb);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    tb.daemon.pull_once(tb.fabric.clock().now());
                    n += 1;
                }
                n
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let tb = Arc::clone(&tb);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let q = legion::collection::parse_query(
                    r#"match($host_os_name, "IRIX") and $host_load >= 0.0"#,
                )
                .unwrap();
                let mut hits = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let rs = tb.collection.query_parsed(&q);
                    // Every record the query returns is complete.
                    for r in &rs {
                        assert!(r.attrs.contains("host_name"));
                        assert!(r.attrs.contains("host_compatible_vaults"));
                    }
                    hits += rs.len() as u64;
                }
                hits
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let pulls: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let hits: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(pulls > 0 && hits > 0, "both sides made progress: {pulls} pulls, {hits} hits");
    assert_eq!(tb.collection.len(), 8);
}

#[test]
fn concurrent_host_operations_stay_consistent() {
    // Threads hammer one SMP host with reserve/start/kill cycles.
    let tb = Arc::new(Testbed::build(TestbedConfig {
        domains: 1,
        unix_per_domain: 0,
        smp_per_domain: 1,
        ..TestbedConfig::local(0, 81)
    }));
    let class = tb.register_class("hammer", 25, 32);
    let host = Arc::clone(&tb.unix_hosts[0]);
    let vault = host.get_compatible_vaults()[0];

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let tb = Arc::clone(&tb);
            let host = Arc::clone(&host);
            std::thread::spawn(move || {
                let mut cycles = 0u32;
                for _ in 0..50 {
                    let req = ReservationRequest::instantaneous(
                        class,
                        vault,
                        SimDuration::from_secs(60),
                    )
                    .with_demand(25, 32);
                    let Ok(tok) = host.make_reservation(&req, tb.fabric.clock().now())
                    else {
                        continue; // capacity race lost; fine
                    };
                    let started = host
                        .start_object(
                            &tok,
                            &[legion::core::ObjectSpec::new(class)],
                            tb.fabric.clock().now(),
                        )
                        .expect("granted reservation always starts");
                    host.kill_object(started[0]).expect("kill own object");
                    cycles += 1;
                }
                cycles
            })
        })
        .collect();
    let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    // Everything cleaned up: no objects, full capacity available again.
    assert!(host.running_objects().is_empty());
    let big = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(60))
        .with_demand(400, 1024);
    host.make_reservation(&big, tb.fabric.clock().now())
        .expect("full capacity restored");
}
