//! Batch Queue Hosts inside the full RMI pipeline: schedulers discover
//! them through the Collection and the Enactor places on them; jobs run
//! through the simulated queue systems.

use legion::prelude::*;
use legion::schedulers::RoundRobinScheduler;

fn batch_bed(seed: u64) -> Testbed {
    Testbed::build(TestbedConfig {
        domains: 1,
        unix_per_domain: 0,
        batch_per_domain: 3, // fcfs, priority, fair-share
        ..TestbedConfig::local(0, seed)
    })
}

#[test]
fn batch_hosts_are_scheduled_like_any_resource() {
    let tb = batch_bed(61);
    let class = tb.register_class("batch-job", 100, 64);
    tb.tick(SimDuration::from_secs(1));

    // Batch hosts are discoverable through the same Collection query.
    let recs = tb
        .collection
        .query(r#"$host_flavor == "batch""#)
        .unwrap();
    assert_eq!(recs.len(), 3);

    // Schedule 6 jobs round-robin across them.
    let scheduler = RoundRobinScheduler::new();
    let enactor = Enactor::new(tb.fabric.clone());
    let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
    let report = driver
        .place(&PlacementRequest::new().class(class, 6), &tb.ctx())
        .unwrap();
    assert_eq!(report.placed.len(), 6);

    // The jobs sit in queues; driving time completes them.
    let queued_or_running: usize =
        tb.batch_hosts.iter().map(|h| h.running_objects().len()).sum();
    assert_eq!(queued_or_running, 6);
    for _ in 0..80 {
        tb.tick(SimDuration::from_secs(60));
    }
    let done: u64 = tb.batch_hosts.iter().map(|h| h.queue_stats().completed).sum();
    assert_eq!(done, 6, "all jobs completed through the queue systems");
    assert!(tb.batch_hosts.iter().all(|h| h.running_objects().is_empty()));
}

#[test]
fn queue_depth_is_visible_to_schedulers() {
    let tb = batch_bed(67);
    let class = tb.register_class("batch-job", 50, 64);
    tb.tick(SimDuration::from_secs(1));

    // Stuff one batch host with 12 half-CPU jobs (8 slots).
    let bq = &tb.batch_hosts[0];
    let vault = bq.get_compatible_vaults()[0];
    for _ in 0..12 {
        let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(600))
            .with_demand(50, 64);
        let tok = bq.make_reservation(&req, tb.fabric.clock().now()).unwrap();
        bq.start_object(
            &tok,
            &[legion::core::ObjectSpec::new(class)],
            tb.fabric.clock().now(),
        )
        .unwrap();
    }
    bq.reassess(tb.fabric.clock().now());
    tb.tick(SimDuration::from_secs(1));

    // The Collection now reports the backlog, queryable like anything.
    let recs = tb.collection.query("$host_queue_depth > 0").unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].member, bq.loid());
    let depth = recs[0].attrs.get_i64("host_queue_depth").unwrap();
    assert_eq!(depth, 4, "12 jobs, 8 slots: 4 wait");
}

#[test]
fn priority_discipline_observable_through_legion() {
    use legion::hosts::{BatchQueueHost, PriorityQueue, StandardHost};
    use std::sync::Arc;
    // Direct construction so we can submit with different priorities via
    // the queue: Legion's path uses priority 0, so build the scenario at
    // the queue level but drive completion through host reassessment.
    let tb = Testbed::build(TestbedConfig::local(1, 71));
    let inner = StandardHost::new(
        legion::hosts::HostConfig::smp("bq", "site0.edu", 1),
        tb.fabric.clone(),
        5,
    );
    let bq = BatchQueueHost::new(inner, Box::new(PriorityQueue::new(1)));
    tb.fabric.register_host(
        Arc::clone(&bq) as Arc<dyn HostObject>,
        DomainId(0),
    );
    let class = tb.register_class("j", 50, 32);

    let vault = bq.get_compatible_vaults()[0];
    let mut started = Vec::new();
    for _ in 0..3 {
        let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(60))
            .with_demand(30, 32);
        let tok = bq.make_reservation(&req, tb.fabric.clock().now()).unwrap();
        started.extend(bq.start_object(
            &tok,
            &[legion::core::ObjectSpec::new(class)],
            tb.fabric.clock().now(),
        )
        .unwrap());
    }
    // One slot: jobs complete strictly in submission order (equal
    // priority ⇒ FCFS tie-break).
    let mut completions = Vec::new();
    for _ in 0..6 {
        let now = tb.fabric.clock().advance(SimDuration::from_secs(60));
        let before = bq.queue_stats().completed;
        bq.reassess(now);
        let after = bq.queue_stats().completed;
        for _ in before..after {
            completions.push(now);
        }
    }
    assert_eq!(bq.queue_stats().completed, 3);
    assert!(completions.windows(2).all(|w| w[0] <= w[1]));
}
