//! The simulation harness, pinned: determinism, scale, and equivalence
//! with the scoped-thread path.
//!
//! The discrete-event scheduler's contract (see `docs/simulation.md`):
//!
//! * **Byte-identical replay** — two runs of the full chaos soak from
//!   one seed produce identical `legion-trace/v1` JSON exports and
//!   identical `MetricsLedger` snapshots, byte for byte (with the LOID
//!   allocator rebased through `Loid::replay_guard`).
//! * **Scale without sleeping** — a 1000-episode soak, chaos and all,
//!   completes in seconds of wall clock because every wait (backoff,
//!   wire latency, dwell) is an event.
//! * **Equivalence** — the sim scheduler is a *scheduler*, not a new
//!   semantics: the PR 4 replay scenario (width-1 reservation fan-out
//!   under loss) and serial `place_many` produce the same outcomes,
//!   token serials, and ledger deltas under either substrate.
//!
//! Every test takes the replay guard: LOID sequence numbers are the one
//! process-global that leaks into trace exports, so tests that compare
//! or replay runs must not interleave allocations.

use legion::core::Loid;
use legion::fabric::MetricsSnapshot;
use legion::prelude::*;
use legion::schedule::{ScheduleOutcome, ScheduleRequestList};
use legion::schedulers::DriverReport;
use std::sync::Arc;

const SOAK_SEED: u64 = 0xD15C_5EED;

/// A quick soak for sweeps: small bed, short horizon, full chaos.
fn sweep_config(seed: u64) -> SimSoakConfig {
    SimSoakConfig {
        seed,
        episodes: 48,
        arrival_gap: SimDuration::from_secs(10),
        horizon: SimDuration::from_secs(900),
        chaos_crashes: 4,
        crash_down_for: SimDuration::from_secs(120),
        chaos_partitions: 2,
        partition_lasting: SimDuration::from_secs(60),
        ..SimSoakConfig::seeded(seed)
    }
}

#[test]
fn pinned_seed_chaos_soak_replays_byte_identically() {
    let guard = Loid::replay_guard();
    let cfg = SimSoakConfig::seeded(SOAK_SEED);

    guard.rebase(1 << 40);
    let a = run_chaos_soak(&cfg).unwrap_or_else(|e| panic!("run A: {e}"));
    guard.rebase(1 << 40);
    let b = run_chaos_soak(&cfg).unwrap_or_else(|e| panic!("run B: {e}"));

    // The soak did real work under real chaos.
    assert_eq!(a.submitted, cfg.episodes as u64);
    assert!(
        a.completed * 100 >= a.submitted * 95,
        "only {}/{} episodes completed (seed={SOAK_SEED:#x})",
        a.completed,
        a.submitted
    );
    assert_eq!(
        a.metrics.faults_injected,
        a.fault_counts.total(),
        "every planned fault fired (seed={SOAK_SEED:#x})"
    );
    assert!(a.metrics.enactor_backoffs > 0 || a.recoveries > 0, "chaos never bit");

    // Bit-identical from one seed: same schedule, same trace bytes,
    // same ledger.
    assert_eq!(a.stats, b.stats, "event schedules diverged (seed={SOAK_SEED:#x})");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.metrics, b.metrics, "ledger snapshots diverged (seed={SOAK_SEED:#x})");
    let (ja, jb) = (a.trace_json.as_ref().unwrap(), b.trace_json.as_ref().unwrap());
    assert!(ja == jb, "trace JSON diverged between same-seed runs (seed={SOAK_SEED:#x})");
    assert!(ja.contains("\"legion-trace/v1\""), "export carries the schema tag");
}

#[test]
fn thousand_episode_soak_runs_in_seconds_without_sleeping() {
    let _guard = Loid::replay_guard();
    let cfg = SimSoakConfig::seeded(SOAK_SEED ^ 0x1000)
        .with_episodes(1000, SimDuration::from_secs(3));
    let wall = std::time::Instant::now();
    let report = run_chaos_soak(&cfg).unwrap_or_else(|e| panic!("{e}"));
    let elapsed = wall.elapsed();

    assert_eq!(report.submitted, 1000);
    assert!(
        report.completed * 100 >= report.submitted * 95,
        "only {}/1000 episodes completed",
        report.completed
    );
    // Wire emulation is ON in this config: under the thread path every
    // metered message would block for real; under the sim scheduler the
    // whole run must stay CPU-bound (bound is generous for debug CI).
    assert!(
        elapsed < std::time::Duration::from_secs(90),
        "1000-episode soak took {elapsed:?} — something slept for real"
    );
    // An hour of virtual time actually elapsed.
    assert!(report.stats.end >= SimTime::from_secs(3600), "horizon reached: {}", report.stats.end);
    eprintln!(
        "sim soak: 1000 episodes, {} events, {:.2}s wall, {} backoffs, {} recoveries",
        report.stats.events,
        elapsed.as_secs_f64(),
        report.metrics.enactor_backoffs,
        report.recoveries
    );
}

#[test]
fn chaos_soak_thirty_two_seed_sweep() {
    let _guard = Loid::replay_guard();
    let wall = std::time::Instant::now();
    let results = seed_sweep(
        (0..32).map(|i| SOAK_SEED.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i)),
        |seed| run_chaos_soak(&sweep_config(seed)),
    );
    assert_eq!(results.len(), 32);
    for (seed, r) in &results {
        assert!(
            r.completed * 100 >= r.submitted * 90,
            "seed {seed:#x}: only {}/{} episodes completed",
            r.completed,
            r.submitted
        );
        assert_eq!(
            r.metrics.faults_injected,
            r.fault_counts.total(),
            "seed {seed:#x}: fault plan did not drain"
        );
    }
    // Different seeds genuinely explore different interleavings.
    let distinct: std::collections::BTreeSet<u64> =
        results.iter().map(|(_, r)| r.stats.events).collect();
    assert!(distinct.len() > 8, "sweep looks degenerate: {distinct:?}");
    eprintln!("32-seed sweep in {:.2}s wall", wall.elapsed().as_secs_f64());
}

#[test]
fn rebalance_sim_converges_like_the_thread_soak() {
    let _guard = Loid::replay_guard();
    let report = run_rebalance_sim(0xBA1A_0C5E, 90).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(report.sweeps.len(), 90, "one report per sweep");
    assert_eq!(report.metrics.rebalance_sweeps, 90);
    let converged_at =
        report.converged_at.expect("never converged after the chaos window");
    assert!(converged_at <= 80, "converged too late: sweep {converged_at}");
    assert!(
        report.sweeps[report.sweeps.len() - 5..].iter().all(|r| r.converged),
        "convergence did not hold through the tail"
    );
    assert_eq!(report.live_objects, 10, "an object was lost or duplicated");
    assert!(report.migrated >= 6, "only {} migrations for a 5+5 skew", report.migrated);
    assert!(report.metrics.monitor_restarts > 0, "watchdog never restarted");
}

#[test]
fn reservation_fanout_under_sim_matches_thread_path_under_loss() {
    // The PR 4 replay scenario: width-1 fan-out over a lossy link, five
    // attempts, shared loss stream. Running it inside a sim task — where
    // every backoff parks on the event queue instead of advancing the
    // clock inline — must reproduce the thread path outcome-for-outcome:
    // same classification, same token serials, same ledger delta.
    let _guard = Loid::replay_guard();
    let scenario = |tb: &Testbed, class: Loid| -> (ScheduleOutcome, Vec<(usize, u64)>, MetricsSnapshot) {
        // The Enactor itself lives in domain 0; hosts sit in domains 0
        // and 1, so both links must be lossy to exercise every mapping.
        tb.fabric.with_topology(|t| {
            t.set_drop_prob(DomainId(0), DomainId(0), 0.35);
            t.set_drop_prob(DomainId(0), DomainId(1), 0.35);
        });
        let enactor = Enactor::with_config(
            tb.fabric.clone(),
            EnactorConfig { fanout: 1, max_attempts: 5, ..Default::default() },
        );
        let mappings: Vec<Mapping> = tb
            .unix_hosts
            .iter()
            .map(|h| Mapping::new(class, h.loid(), h.get_compatible_vaults()[0]))
            .collect();
        let before = tb.fabric.metrics().snapshot();
        let fb = enactor.make_reservations(&ScheduleRequestList::single(mappings));
        let delta = tb.fabric.metrics().snapshot().delta(&before);
        let idx = |l: Loid| tb.unix_hosts.iter().position(|h| h.loid() == l).unwrap();
        let tokens: Vec<(usize, u64)> =
            fb.reservations.iter().map(|t| (idx(t.host), t.serial)).collect();
        (fb.outcome, tokens, delta)
    };

    const SEED: u64 = 0x99A2_7C15;
    // Thread path.
    let threads = {
        let tb = Testbed::build(TestbedConfig::wide(2, 3, SEED));
        let class = tb.register_class("w", 50, 64);
        tb.tick(SimDuration::from_secs(1));
        scenario(&tb, class)
    };
    // Sim path: the same scenario as a single actor task.
    let sim_run = {
        let tb = Testbed::build(TestbedConfig::wide(2, 3, SEED));
        let class = tb.register_class("w", 50, 64);
        tb.tick(SimDuration::from_secs(1));
        let sim = SimHandle::new(Arc::clone(tb.fabric.clock()));
        tb.fabric.attach_sim(sim.clone());
        let result = Arc::new(std::sync::Mutex::new(None));
        let tb = Arc::new(tb);
        {
            let (tb, result) = (Arc::clone(&tb), Arc::clone(&result));
            sim.spawn("pr4-replay", move |_| {
                *result.lock().unwrap() = Some(scenario(&tb, class));
            });
        }
        sim.run().unwrap_or_else(|e| panic!("{e}"));
        tb.fabric.detach_sim();
        let out = result.lock().unwrap().take().unwrap();
        out
    };
    assert_eq!(threads.0, sim_run.0, "outcome classification diverged");
    assert_eq!(threads.1, sim_run.1, "token serials diverged");
    assert_eq!(threads.2, sim_run.2, "ledger deltas diverged");
    assert!(threads.2.messages_dropped > 0, "the lossy link never exercised the stream");
    assert!(threads.2.enactor_backoffs > 0, "the backoff path never engaged");
}

#[test]
fn place_many_under_sim_matches_serial_thread_path() {
    // The concurrency-suite batch scenario: 8 specs, alternating 1 and 2
    // instances. Serial thread path (workers = 1) versus one sim task
    // per spec — the sim runs tasks to completion in spawn order, so the
    // two must place identically, spec for spec.
    let _guard = Loid::replay_guard();
    const SEED: u64 = 83;
    type Placed = Vec<Result<Vec<(usize, u64)>, String>>;
    let digest = |tb: &Testbed, results: Vec<Result<DriverReport, LegionError>>| -> Placed {
        let idx = |l: Loid| tb.unix_hosts.iter().position(|h| h.loid() == l).unwrap();
        results
            .into_iter()
            .map(|r| {
                r.map(|rep| {
                    rep.feedback
                        .as_ref()
                        .map(|fb| {
                            fb.reservations.iter().map(|t| (idx(t.host), t.serial)).collect()
                        })
                        .unwrap_or_default()
                })
                .map_err(|e| e.to_string())
            })
            .collect()
    };
    let specs = |class: Loid| -> Vec<PlacementSpec> {
        (0..8u32).map(|i| PlacementSpec::of(class, 1 + (i % 2))).collect()
    };

    let threads = {
        let tb = Testbed::build(TestbedConfig::wide(2, 4, SEED));
        let class = tb.register_class("batch", 25, 32);
        tb.tick(SimDuration::from_secs(1));
        let scheduler = RandomScheduler::new(7);
        let enactor = Enactor::new(tb.fabric.clone());
        let driver = ScheduleDriver::new(std::sync::Arc::new(scheduler), std::sync::Arc::new(enactor));
        let results = driver.place_many(&specs(class), &tb.ctx(), 1);
        digest(&tb, results)
    };

    let sim_run = {
        let tb = Testbed::build(TestbedConfig::wide(2, 4, SEED));
        let class = tb.register_class("batch", 25, 32);
        tb.tick(SimDuration::from_secs(1));
        let sim = SimHandle::new(Arc::clone(tb.fabric.clock()));
        tb.fabric.attach_sim(sim.clone());
        let tb = Arc::new(tb);
        let scheduler: Arc<dyn Scheduler> = Arc::new(RandomScheduler::new(7));
        let enactor = Arc::new(Enactor::new(tb.fabric.clone()));
        let ctx = Arc::new(tb.ctx());
        type Slots = Vec<Option<Result<DriverReport, LegionError>>>;
        let slots: Arc<std::sync::Mutex<Slots>> =
            Arc::new(std::sync::Mutex::new((0..8).map(|_| None).collect()));
        for (i, spec) in specs(class).into_iter().enumerate() {
            let (scheduler, enactor, ctx, slots) = (
                Arc::clone(&scheduler),
                Arc::clone(&enactor),
                Arc::clone(&ctx),
                Arc::clone(&slots),
            );
            sim.spawn(format!("spec-{i}"), move |_| {
                let driver = ScheduleDriver::new(scheduler, enactor);
                slots.lock().unwrap()[i] = Some(driver.place(&spec.request, &ctx));
            });
        }
        sim.run().unwrap_or_else(|e| panic!("{e}"));
        tb.fabric.detach_sim();
        let results: Vec<_> =
            slots.lock().unwrap().drain(..).map(|r| r.expect("every spec placed")).collect();
        digest(&tb, results)
    };

    assert_eq!(threads, sim_run, "sim task-per-spec diverged from the serial thread path");
    assert!(threads.iter().all(|r| r.is_ok()), "idle bed placements all succeed");
}

#[test]
fn failing_seed_reprints_its_event_schedule() {
    // seed_sweep's replay-on-failure contract: the panic names the seed
    // and carries the schedule tail of the failing run.
    let _guard = Loid::replay_guard();
    let outcome = std::panic::catch_unwind(|| {
        seed_sweep([7u64], |seed| {
            let clock = Arc::new(legion::fabric::VirtualClock::new());
            let sim = SimHandle::new(clock);
            sim.schedule_at(SimTime::from_micros(3), "fuse", |_| {});
            sim.spawn(format!("victim-{seed}"), |h| {
                h.sleep(SimDuration::from_micros(10));
                panic!("scripted fault");
            });
            sim.run().map(|stats| stats.events)
        })
    });
    let payload = outcome.expect_err("sweep must propagate the failure");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("panic carries a message");
    assert!(msg.contains("0x7") || msg.contains("seed 7"), "names the seed: {msg}");
    assert!(msg.contains("scripted fault"), "carries the panic: {msg}");
    assert!(msg.contains("wake:victim-7"), "carries the schedule: {msg}");
    assert!(msg.contains("fuse"), "schedule shows unrelated events too: {msg}");
}
