//! Monitor, triggers, and migration across the whole stack.

use legion::core::{ObjectSpec, VaultDirectory};
use legion::hosts::BackgroundLoad;
use legion::prelude::*;

fn place_n_on_host0(tb: &Testbed, class: Loid, n: usize) -> Vec<Loid> {
    let h0 = &tb.unix_hosts[0];
    let vault = h0.get_compatible_vaults()[0];
    (0..n)
        .map(|_| {
            let req = ReservationRequest::instantaneous(
                class,
                vault,
                SimDuration::from_secs(1 << 20),
            )
            .with_demand(10, 32);
            let tok = h0.make_reservation(&req, tb.fabric.clock().now()).unwrap();
            let started = h0
                .start_object(&tok, &[ObjectSpec::new(class)], tb.fabric.clock().now())
                .unwrap();
            if let Some(c) = tb.fabric.lookup_class(class) {
                c.note_instance_location(started[0], h0.loid());
            }
            started[0]
        })
        .collect()
}

#[test]
fn spike_drains_via_repeated_rounds() {
    let tb = Testbed::build(TestbedConfig::wide(2, 4, 40));
    let class = tb.register_class("w", 10, 32);
    place_n_on_host0(&tb, class, 4);

    let rb = Rebalancer::new(tb.fabric.clone());
    rb.watch_all(1.0);
    tb.unix_hosts[0].set_background_load(BackgroundLoad::steady(1.5));

    let mut total = 0;
    for _ in 0..10 {
        tb.tick(SimDuration::from_secs(30));
        total += rb.rebalance_once().len();
    }
    assert!(total >= 3, "sustained overload should drain objects, moved {total}");
    assert!(tb.unix_hosts[0].running_objects().len() <= 1);
    // Migrated objects are alive elsewhere, and the class knows where.
    let class_obj = tb.fabric.lookup_class(class).unwrap();
    for (instance, host_loid) in class_obj.instances() {
        let host = tb.fabric.lookup_host(host_loid).unwrap();
        assert!(
            host.running_objects().contains(&instance),
            "class location bookkeeping must match reality"
        );
    }
}

#[test]
fn migration_preserves_state_version_discipline() {
    let tb = Testbed::build(TestbedConfig::wide(2, 1, 41));
    let class = tb.register_class("w", 10, 32);
    let objs = place_n_on_host0(&tb, class, 1);
    let obj = objs[0];
    let (h0, h1) = (tb.unix_hosts[0].loid(), tb.unix_hosts[1].loid());

    // Ping-pong the object; the OPR version must increase monotonically.
    let rec1 = migrate_object(&tb.fabric, obj, h0, h1).unwrap();
    let rec2 = migrate_object(&tb.fabric, obj, h1, h0).unwrap();
    let rec3 = migrate_object(&tb.fabric, obj, h0, h1).unwrap();
    assert_eq!(tb.fabric.metrics().snapshot().migrations, 3);
    assert_eq!(rec1.to, h1);
    assert_eq!(rec2.to, h0);
    assert_eq!(rec3.to, h1);

    let vault = tb
        .fabric
        .lookup_vault(rec3.via_vault)
        .expect("destination vault exists");
    let opr = vault.fetch_opr(obj).unwrap();
    assert!(opr.version >= 3, "each deactivation bumps the version: {}", opr.version);
}

#[test]
fn custom_triggers_fire_through_monitor() {
    use legion::core::{EventKind, Guard, Trigger};
    let tb = Testbed::build(TestbedConfig::local(1, 42));
    let class = tb.register_class("w", 10, 32);
    let monitor = Monitor::new();
    let host_dyn: std::sync::Arc<dyn HostObject> =
        tb.unix_hosts[0].clone() as std::sync::Arc<dyn HostObject>;
    // A custom guard: fire when more than 2 Legion objects run here.
    monitor.watch_with(
        &host_dyn,
        Trigger::new(
            Guard::attr_gt(legion::core::host::well_known::RUNNING_OBJECTS, 2.0),
            EventKind::Custom("crowded".into()),
        ),
    );

    place_n_on_host0(&tb, class, 2);
    tb.tick(SimDuration::from_secs(30));
    assert_eq!(monitor.pending(), 0, "2 objects: guard quiet");

    place_n_on_host0(&tb, class, 1);
    tb.tick(SimDuration::from_secs(30));
    let events = monitor.drain_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, EventKind::Custom("crowded".into()));
}

#[test]
fn trigger_removal_stops_events() {
    let tb = Testbed::build(TestbedConfig::local(1, 43));
    let monitor = Monitor::new();
    let host_dyn: std::sync::Arc<dyn HostObject> =
        tb.unix_hosts[0].clone() as std::sync::Arc<dyn HostObject>;
    let id = monitor.watch_load(&host_dyn, 0.5);
    tb.unix_hosts[0].set_background_load(BackgroundLoad::steady(2.0));
    tb.tick(SimDuration::from_secs(30));
    assert_eq!(monitor.pending(), 1);
    monitor.drain_events();

    tb.unix_hosts[0].remove_trigger(id);
    tb.tick(SimDuration::from_secs(30));
    tb.tick(SimDuration::from_secs(30));
    assert_eq!(monitor.pending(), 0, "removed trigger must not fire");
}
