//! Cross-crate reservation semantics: Table 2 behaviour observed through
//! the public Host interface on a live testbed.

use legion::prelude::*;
use legion::core::ObjectSpec;

fn bed() -> (Testbed, Loid) {
    let tb = Testbed::build(TestbedConfig {
        domains: 1,
        unix_per_domain: 0,
        smp_per_domain: 1, // one 4-CPU machine
        ..TestbedConfig::local(0, 9)
    });
    let class = tb.register_class("w", 100, 128);
    (tb, class)
}

#[test]
fn one_shot_space_sharing_takes_the_machine_once() {
    let (tb, class) = bed();
    let host = &tb.unix_hosts[0];
    let vault = host.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(600))
        .with_type(ReservationType::ONE_SHOT_SPACE);
    let tok = host.make_reservation(&req, tb.fabric.clock().now()).unwrap();
    // The whole 4-CPU machine is held: even a tiny shared request fails.
    let small = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(10))
        .with_demand(10, 16);
    assert!(host.make_reservation(&small, tb.fabric.clock().now()).is_err());
    // One start consumes the token.
    host.start_object(&tok, &[ObjectSpec::new(class)], tb.fabric.clock().now()).unwrap();
    assert!(matches!(
        host.start_object(&tok, &[ObjectSpec::new(class)], tb.fabric.clock().now()),
        Err(LegionError::ReservationConsumed)
    ));
}

#[test]
fn reusable_space_sharing_is_machine_is_mine() {
    let (tb, class) = bed();
    let host = &tb.unix_hosts[0];
    let vault = host.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(600))
        .with_type(ReservationType::REUSABLE_SPACE);
    let tok = host.make_reservation(&req, tb.fabric.clock().now()).unwrap();
    // "The machine is mine for the time period": start several batches
    // under the same token.
    for _ in 0..3 {
        host.start_object(&tok, &[ObjectSpec::new(class)], tb.fabric.clock().now()).unwrap();
    }
    assert_eq!(host.running_objects().len(), 3);
}

#[test]
fn smp_multi_object_start_under_one_token() {
    // §3.1: "The StartObject function can create one or more objects;
    // this is important ... for multiprocessor systems."
    let (tb, class) = bed();
    let host = &tb.unix_hosts[0];
    let vault = host.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(600))
        .with_demand(400, 512); // all four CPUs
    let tok = host.make_reservation(&req, tb.fabric.clock().now()).unwrap();
    let specs = vec![ObjectSpec::new(class); 4];
    let started = host.start_object(&tok, &specs, tb.fabric.clock().now()).unwrap();
    assert_eq!(started.len(), 4);
    // All four are distinct objects.
    let set: std::collections::BTreeSet<_> = started.iter().collect();
    assert_eq!(set.len(), 4);
}

#[test]
fn future_reservations_and_timeout_confirmation() {
    let (tb, class) = bed();
    let host = &tb.unix_hosts[0];
    let vault = host.get_compatible_vaults()[0];

    // Reserve an hour of CPU starting at noon (paper's example).
    let noon = SimTime::from_secs(12 * 3600);
    let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(3600))
        .with_type(ReservationType::REUSABLE_SPACE)
        .starting_at(noon);
    let tok = host.make_reservation(&req, tb.fabric.clock().now()).unwrap();
    // Too early: refused.
    assert!(host
        .start_object(&tok, &[ObjectSpec::new(class)], SimTime::from_secs(11 * 3600))
        .is_err());
    // At noon: accepted.
    tb.fabric.clock().advance_to(noon);
    host.start_object(&tok, &[ObjectSpec::new(class)], noon).unwrap();

    // Instantaneous reservation with a confirmation timeout lapses.
    // (First leave the exclusive noon-hour window behind.)
    tb.fabric.clock().advance_to(SimTime::from_secs(13 * 3600 + 1));
    host.reassess(tb.fabric.clock().now());
    let req2 = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(60))
        .with_demand(10, 16);
    let now = tb.fabric.clock().now();
    let tok2 = host.make_reservation(&req2, now).unwrap();
    // Default timeout is 30 s; wait 40 virtual seconds.
    let later = tb.fabric.clock().advance(SimDuration::from_secs(40));
    host.reassess(later);
    assert!(matches!(
        host.start_object(&tok2, &[ObjectSpec::new(class)], later),
        Err(LegionError::ReservationExpired)
    ));
}

#[test]
fn tokens_do_not_transfer_between_hosts() {
    let tb = Testbed::build(TestbedConfig::local(2, 10));
    let class = tb.register_class("w", 50, 64);
    let (h0, h1) = (&tb.unix_hosts[0], &tb.unix_hosts[1]);
    let vault = h0.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(60));
    let tok = h0.make_reservation(&req, tb.fabric.clock().now()).unwrap();
    // Presenting host 0's token to host 1 fails verification.
    assert!(matches!(
        h1.start_object(&tok, &[ObjectSpec::new(class)], tb.fabric.clock().now()),
        Err(LegionError::InvalidToken)
    ));
    assert!(matches!(h1.cancel_reservation(&tok), Err(LegionError::InvalidToken)));
}

#[test]
fn unconfirmed_reservation_is_reclaimed_and_stale_token_refused() {
    // §3.1 / Table 2: an instantaneous reservation not confirmed by
    // StartObject within the timeout is reclaimed — the capacity must be
    // grantable to someone else, and the stale token must stay dead.
    let (tb, class) = bed();
    let host = &tb.unix_hosts[0];
    let vault = host.get_compatible_vaults()[0];

    // Hold the whole 4-CPU machine, unconfirmed.
    let all = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(600))
        .with_demand(400, 512);
    let stale = host.make_reservation(&all, tb.fabric.clock().now()).unwrap();
    // While held, a competing full-machine request is refused.
    assert!(host.make_reservation(&all, tb.fabric.clock().now()).is_err());

    // Confirmation timeout (30s default) lapses; the sweep reclaims.
    let later = tb.fabric.clock().advance(SimDuration::from_secs(40));
    host.reassess(later);

    // The capacity is someone else's for the taking...
    let tok2 = host.make_reservation(&all, later).unwrap();
    // ...and the stale token is refused at every entry point.
    assert!(matches!(
        host.start_object(&stale, &[ObjectSpec::new(class)], later),
        Err(LegionError::ReservationExpired)
    ));
    assert_eq!(
        host.check_reservation(&stale, later).unwrap(),
        legion::core::ReservationStatus::Expired
    );
    // The fresh token still works.
    host.start_object(&tok2, &[ObjectSpec::new(class)], later).unwrap();
}

#[test]
fn crash_expires_reservations_and_restart_reclaims_resources() {
    // A fail-stopped host loses its volatile reservation state; tokens
    // granted before the crash must not be honoured after restart, and
    // the restarted host must have its full capacity back.
    let (tb, class) = bed();
    let host = &tb.unix_hosts[0];
    let vault = host.get_compatible_vaults()[0];
    let all = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(600))
        .with_demand(400, 512);
    let pre_crash = host.make_reservation(&all, tb.fabric.clock().now()).unwrap();

    host.crash();
    // Down: every call answers HostDown.
    assert!(matches!(
        host.make_reservation(&all, tb.fabric.clock().now()),
        Err(LegionError::HostDown(_))
    ));
    assert!(matches!(
        host.start_object(&pre_crash, &[ObjectSpec::new(class)], tb.fabric.clock().now()),
        Err(LegionError::HostDown(_))
    ));

    let later = tb.fabric.clock().advance(SimDuration::from_secs(60));
    host.restart(later);

    // Resources reclaimed: the full machine is grantable again.
    let fresh = host.make_reservation(&all, later).unwrap();
    // The pre-crash token fails deterministically — the serial counter
    // survives the crash, so it can never be confused with a new grant.
    assert!(matches!(
        host.start_object(&pre_crash, &[ObjectSpec::new(class)], later),
        Err(LegionError::ReservationExpired)
    ));
    assert_ne!(fresh.serial, pre_crash.serial, "serials must never collide");
    host.start_object(&fresh, &[ObjectSpec::new(class)], later).unwrap();
}

mod fanout_equivalence {
    //! Fan-out width is an implementation knob, not a semantic one:
    //! whatever width the Enactor reserves with, the classification in
    //! the returned [`ScheduleFeedback`] and the set of granted tokens
    //! must be exactly what the serial fill pass produces, and hosts —
    //! the sole admission arbiters — must never over-commit capacity.

    use super::*;
    use legion::schedule::ScheduleOutcome;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// One `make_reservations` run at `fanout` on a fresh testbed built
    /// from `seed`. Returns what must be width-invariant: the outcome,
    /// the granted tokens as (host index, host-local serial), and the
    /// worst per-host multiplicity among the held reservations.
    fn run_width(
        seed: u64,
        picks: &[usize],
        fanout: usize,
    ) -> (ScheduleOutcome, Vec<(usize, u64)>, usize) {
        let tb = Testbed::build(TestbedConfig::wide(2, 3, seed));
        // Full-CPU demand on single-CPU workstations: every host can
        // hold exactly one of these, so duplicate picks must fail.
        let class = tb.register_class("w", 100, 128);
        tb.tick(SimDuration::from_secs(1));
        let mappings: Vec<Mapping> = picks
            .iter()
            .map(|&p| {
                let host = &tb.unix_hosts[p % tb.unix_hosts.len()];
                Mapping::new(class, host.loid(), host.get_compatible_vaults()[0])
            })
            .collect();
        let enactor = Enactor::with_config(
            tb.fabric.clone(),
            EnactorConfig { fanout, ..Default::default() },
        );
        let fb = enactor.make_reservations(&ScheduleRequestList::single(mappings));

        let mut per_host: HashMap<Loid, usize> = HashMap::new();
        for m in &fb.mappings {
            *per_host.entry(m.host).or_default() += 1;
        }
        let host_index = |loid: Loid| {
            tb.unix_hosts
                .iter()
                .position(|h| h.loid() == loid)
                .expect("token names a testbed host")
        };
        let tokens: Vec<(usize, u64)> =
            fb.reservations.iter().map(|tok| (host_index(tok.host), tok.serial)).collect();
        (fb.outcome, tokens, per_host.values().copied().max().unwrap_or(0))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Widths 1, 2 and 8 classify identically and never over-commit
        /// a host, for arbitrary (possibly colliding) host picks.
        #[test]
        fn width_never_changes_classification_or_overcommits(
            seed in 0u64..512,
            picks in proptest::collection::vec(0usize..6, 1..9),
        ) {
            let serial = run_width(seed, &picks, 1);
            for width in [2usize, 8] {
                let wide = run_width(seed, &picks, width);
                prop_assert_eq!(&serial, &wide, "fanout {} diverged from serial", width);
            }
            prop_assert!(
                serial.2 <= 1,
                "a single-CPU host held {} full-CPU reservations",
                serial.2
            );
        }
    }
}

#[test]
fn expired_reservations_raise_events() {
    let (tb, class) = bed();
    let host = &tb.unix_hosts[0];
    let vault = host.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(60))
        .with_demand(10, 16);
    host.make_reservation(&req, tb.fabric.clock().now()).unwrap();
    // Let the confirmation timeout lapse and reassess.
    let later = tb.fabric.clock().advance(SimDuration::from_secs(45));
    let events = host.reassess(later);
    assert!(events
        .iter()
        .any(|e| e.kind == legion::core::EventKind::ReservationExpired));
}
