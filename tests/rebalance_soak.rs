//! Closed-loop rebalancing soak: skewed load plus a chaos `FaultPlan`.
//!
//! Ten fifth-of-a-CPU objects start piled five-and-five on two hosts
//! of a twelve-host, three-domain bed (each pile fills its host's CPU
//! reservation capacity exactly). The closed-loop [`Rebalancer`] sweeps
//! every 30s tick while the plan crashes the hottest host mid-spread
//! (its objects restart from their OPRs wherever the Watchdog can put
//! them — usually a fresh pile-up the rebalancer must then dissolve),
//! crashes an idle host, and severs domain 0 from domain 2 long enough
//! for the partitioned hosts' Collection records to go stale.
//!
//! Asserted, all from one fixed seed:
//! * max/mean host load converges below the hysteresis exit line within
//!   a bounded number of sweeps, and stays there;
//! * every sweep is a traced `rebalance` episode with the
//!   `detect → plan → migrate → converge` span sequence in time order;
//! * zero objects lost or duplicated — each of the ten has exactly one
//!   live instance at the end, where its Class says it is;
//! * the stale-TTL path actually engaged during the partition.
//!
//! The sweep loop is bounded by a pure sim-time horizon, not a tick
//! count, so the scenario is scheduler-agnostic: the same soak runs as
//! discrete events in `tests/sim_determinism.rs` via
//! `legion::prelude::run_rebalance_sim`.

use legion::core::{EpisodeId, ObjectSpec};
use legion::fabric::{FaultAction, FaultPlan};
use legion::prelude::*;

const SEED: u64 = 0xBA1A_0C5E;

/// Starts `n` 0.2-CPU objects directly on one host (the skew).
fn pile_on(tb: &Testbed, class: Loid, host_idx: usize, n: usize) -> Vec<Loid> {
    let h = &tb.unix_hosts[host_idx];
    let vault = h.get_compatible_vaults()[0];
    (0..n)
        .map(|_| {
            let req =
                ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(1 << 20))
                    .with_demand(20, 48);
            let tok = h.make_reservation(&req, tb.fabric.clock().now()).unwrap();
            let obj =
                h.start_object(&tok, &[ObjectSpec::new(class)], tb.fabric.clock().now()).unwrap()
                    [0];
            tb.fabric.lookup_class(class).unwrap().note_instance_location(obj, h.loid());
            obj
        })
        .collect()
}

#[test]
fn skewed_load_converges_under_chaos() {
    let tb = Testbed::build(TestbedConfig::wide(3, 4, SEED));
    let class = tb.register_class("rb-app", 20, 48);
    let sink = tb.fabric.enable_tracing();
    tb.tick(SimDuration::from_secs(1));

    // The skew: 5 + 5 objects fill the first two hosts of domain 0.
    let mut objects = pile_on(&tb, class, 0, 5);
    objects.extend(pile_on(&tb, class, 1, 5));
    assert_eq!(objects.len(), 10);

    // Chaos: crash the hottest host mid-spread (its survivors restart
    // from OPRs and pile up somewhere else), churn an idle host, and
    // sever domain 0 <-> domain 2 for 90s so the far hosts' records
    // cross the 75s staleness TTL.
    let hot = tb.unix_hosts[0].loid();
    let idle = tb.unix_hosts[7].loid();
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(600), FaultAction::CrashHost(hot))
        .at(SimTime::from_secs(1200), FaultAction::RestartHost(hot))
        .at(SimTime::from_secs(1500), FaultAction::CrashHost(idle))
        .at(SimTime::from_secs(2000), FaultAction::RestartHost(idle))
        .at(
            SimTime::from_secs(1800),
            FaultAction::Partition {
                a: legion::fabric::DomainId(0),
                b: legion::fabric::DomainId(2),
                heal_at: SimTime::from_secs(1890),
            },
        );
    tb.fabric.install_fault_plan(plan);

    let config = RebalanceConfig {
        stale_ttl: SimDuration::from_secs(75),
        ..RebalanceConfig::default()
    };
    let rb = Rebalancer::closed_loop(tb.fabric.clone(), tb.collection.clone(), config);
    // Partition lasts 90s (3 missed 30s probes); 4 allowed misses keeps
    // the Watchdog from declaring partitioned hosts dead.
    let dog = Watchdog::new(tb.fabric.clone(), 4);

    let mut reports: Vec<SweepReport> = Vec::new();
    let mut first_converged: Option<usize> = None;
    // Sweep every 30s of virtual time until the 2700s horizon — chaos
    // window plus a quiet tail — however many sweeps that takes.
    let period = SimDuration::from_secs(30);
    let horizon = SimTime::from_secs(2700);
    while tb.fabric.clock().now() < horizon {
        let sweep_no = reports.len();
        tb.tick(period);
        let now = tb.fabric.clock().now();
        dog.patrol(now);
        let report = rb.sweep(now);

        // No object is ever duplicated, chaos or not.
        let mut live = 0usize;
        for h in &tb.unix_hosts {
            for o in h.running_objects() {
                assert!(objects.contains(&o), "unknown object {o} (seed={SEED:#x})");
                live += 1;
            }
        }
        assert!(live <= 10, "object duplicated at sweep {sweep_no} (seed={SEED:#x})");

        if report.converged && first_converged.is_none() && now > SimTime::from_secs(2100) {
            first_converged = Some(sweep_no);
        }
        reports.push(report);
    }

    // Convergence: reached after the last fault healed, within bounds,
    // and held through the quiet tail.
    let converged_at = first_converged
        .unwrap_or_else(|| panic!("never converged after the chaos window (seed={SEED:#x})"));
    assert!(converged_at <= 80, "converged too late: sweep {converged_at} (seed={SEED:#x})");
    let tail = &reports[reports.len() - 5..];
    assert!(
        tail.iter().all(|r| r.converged),
        "convergence did not hold through the tail (seed={SEED:#x})"
    );
    let last = reports.last().unwrap();
    assert!(
        last.max_load <= (1.25 * last.mean_load).max(0.5) + 1e-9,
        "max {} vs mean {} above the exit line (seed={SEED:#x})",
        last.max_load,
        last.mean_load
    );

    // Zero loss, zero duplication: each object has exactly one live
    // instance, exactly where its Class says.
    let class_obj = tb.fabric.lookup_class(class).unwrap();
    let placements = class_obj.instances();
    assert_eq!(placements.len(), 10, "class lost track of objects (seed={SEED:#x})");
    let mut live_total = 0usize;
    for h in &tb.unix_hosts {
        live_total += h.running_objects().len();
    }
    assert_eq!(live_total, 10, "live instance count (seed={SEED:#x})");
    for &obj in &objects {
        let homes: Vec<Loid> = tb
            .unix_hosts
            .iter()
            .filter(|h| h.running_objects().contains(&obj))
            .map(|h| h.loid())
            .collect();
        assert_eq!(homes.len(), 1, "object {obj} has {} homes (seed={SEED:#x})", homes.len());
        let recorded = placements.iter().find(|(o, _)| *o == obj).map(|&(_, h)| h);
        assert_eq!(recorded, Some(homes[0]), "class/reality drift for {obj} (seed={SEED:#x})");
    }

    // The run exercised the hard paths, not just the happy one.
    let migrated: usize = reports.iter().map(|r| r.completed.len()).sum();
    assert!(migrated >= 6, "only {migrated} migrations for a 5+5 skew (seed={SEED:#x})");
    let stale_seen: usize = reports.iter().map(|r| r.stale_records).sum();
    assert!(stale_seen > 0, "partition never staled a record (seed={SEED:#x})");
    let m = tb.fabric.metrics().snapshot();
    assert_eq!(m.rebalance_sweeps as usize, reports.len(), "sweep count (seed={SEED:#x})");
    assert!(m.monitor_restarts > 0, "watchdog never restarted (seed={SEED:#x})");

    // Every sweep is one traced episode with the four stages in time
    // order; migrate spans appear exactly when migrations were planned.
    let episodes = sink.episodes();
    let rebalance_eps: Vec<EpisodeId> = episodes
        .iter()
        .filter(|(_, label)| label == "rebalance")
        .map(|&(id, _)| id)
        .collect();
    assert_eq!(rebalance_eps.len(), reports.len(), "one episode per sweep (seed={SEED:#x})");
    let mut saw_migrate_stage = false;
    for (i, &ep) in rebalance_eps.iter().enumerate() {
        let spans = sink.episode_spans(ep);
        let detect: Vec<_> =
            spans.iter().filter(|s| s.kind == SpanKind::RebalanceDetect).collect();
        let plan: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::RebalancePlan).collect();
        let migrate: Vec<_> =
            spans.iter().filter(|s| s.kind == SpanKind::RebalanceMigrate).collect();
        let converge: Vec<_> =
            spans.iter().filter(|s| s.kind == SpanKind::RebalanceConverge).collect();
        assert_eq!(detect.len(), 1, "sweep {i} detect (seed={SEED:#x})");
        assert_eq!(plan.len(), 1, "sweep {i} plan (seed={SEED:#x})");
        assert_eq!(converge.len(), 1, "sweep {i} converge (seed={SEED:#x})");
        assert_eq!(
            migrate.len(),
            reports[i].planned,
            "sweep {i} migrate spans vs plan (seed={SEED:#x})"
        );
        assert!(detect[0].start <= plan[0].start, "sweep {i} order (seed={SEED:#x})");
        for mspan in &migrate {
            assert!(plan[0].start <= mspan.start, "sweep {i} order (seed={SEED:#x})");
            assert!(mspan.start <= converge[0].start, "sweep {i} order (seed={SEED:#x})");
            saw_migrate_stage = true;
        }
        assert!(plan[0].start <= converge[0].start, "sweep {i} order (seed={SEED:#x})");
    }
    assert!(saw_migrate_stage, "no sweep ever migrated (seed={SEED:#x})");
    assert_eq!(sink.open_spans(), 0, "spans leaked open (seed={SEED:#x})");

    eprintln!(
        "rebalance soak (seed={SEED:#x}): converged at sweep {converged_at}, \
         {migrated} migrations, {} re-homes, {} rollbacks, {} restarts, {stale_seen} stale",
        m.rebalance_rehomes, m.rebalance_rollbacks, m.monitor_restarts
    );
}
