//! Minimal `bytes` shim.
//!
//! Provides a cheaply-clonable immutable byte buffer with the subset of
//! the real `Bytes` API the Legion codebase uses (`From<Vec<u8>>`,
//! `From<&[u8]>`, `Deref<Target = [u8]>`, equality, ordering, hashing).

use std::fmt;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering (this shim copies; the API shape is what is preserved).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes(Arc::from(s))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::from(&[1u8, 2, 3][..]));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
