//! Minimal `serde` shim.
//!
//! The Legion workspace derives `Serialize`/`Deserialize` on several
//! core types for forward compatibility but never performs actual
//! serialization at runtime (there is no wire format in the simulator).
//! This shim provides just enough trait surface for those derives (which
//! expand to nothing — see `serde_derive`) and for the hand-written
//! `#[serde(with = ...)]` helper module in `legion-core::opr` to
//! type-check.

/// A data format that can serialize values.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;

    /// Serializes a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// A value that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can deserialize values.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error;

    /// Deserializes a byte buffer.
    fn deserialize_byte_buf(self) -> Result<Vec<u8>, Self::Error>;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_byte_buf()
    }
}

impl Serialize for Vec<u8> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl Serialize for [u8] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
