//! String generation from a small regex-like pattern language.
//!
//! Supports exactly the pattern shapes used by this workspace's
//! property tests: a sequence of units, where each unit is a character
//! class `[...]` (with ranges, escapes, and a literal trailing `-`),
//! the printable-character class `\PC`, or a literal character; each
//! unit may carry an `{n}` or `{m,n}` repetition count.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Unit {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    // `chars[i]` is the first char after '['.
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 1;
            chars[i]
        } else if chars[i] == '-'
            && pending.is_some()
            && i + 1 < chars.len()
            && chars[i + 1] != ']'
        {
            // Range: flush `pending..=hi`.
            let lo = pending.take().expect("checked");
            i += 1;
            let hi = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            assert!(lo <= hi, "invalid class range {lo}-{hi}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 1;
            continue;
        } else {
            chars[i]
        };
        if let Some(p) = pending.replace(c) {
            out.push(p);
        }
        i += 1;
    }
    assert!(i < chars.len(), "unterminated character class");
    if let Some(p) = pending {
        out.push(p);
    }
    (out, i + 1) // skip ']'
}

fn parse_count(chars: &[char], mut i: usize) -> (usize, usize, usize) {
    // `chars[i]` is the char after the unit; parse optional {m[,n]}.
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    i += 1;
    let mut min = 0usize;
    while i < chars.len() && chars[i].is_ascii_digit() {
        min = min * 10 + chars[i] as usize - '0' as usize;
        i += 1;
    }
    let max = if i < chars.len() && chars[i] == ',' {
        i += 1;
        let mut m = 0usize;
        while i < chars.len() && chars[i].is_ascii_digit() {
            m = m * 10 + chars[i] as usize - '0' as usize;
            i += 1;
        }
        m
    } else {
        min
    };
    assert!(i < chars.len() && chars[i] == '}', "unterminated repetition");
    (min, max, i + 1)
}

fn parse(pattern: &str) -> Vec<Unit> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let (set, next) = match chars[i] {
            '[' => parse_class(&chars, i + 1),
            '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' => {
                // \PC: any non-control character; printable ASCII here.
                ((' '..='~').collect(), i + 3)
            }
            '\\' if i + 1 < chars.len() => (vec![chars[i + 1]], i + 2),
            c => (vec![c], i + 1),
        };
        let (min, max, next) = parse_count(&chars, next);
        assert!(min <= max, "invalid repetition in {pattern}");
        assert!(!set.is_empty(), "empty character class in {pattern}");
        units.push(Unit { chars: set, min, max });
        i = next;
    }
    units
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for unit in parse(pattern) {
        let count = unit.min + rng.below((unit.max - unit.min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(unit.chars[rng.below(unit.chars.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        generate_from_pattern(pattern, &mut TestRng::new(seed))
    }

    #[test]
    fn classes_and_counts() {
        for seed in 0..200 {
            let s = gen("[a-c]{1,4}", seed);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let s = gen("[ab]", seed);
            assert_eq!(s.len(), 1);
            assert!(s == "a" || s == "b");

            let s = gen("\\PC{0,20}", seed);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn escapes_and_trailing_dash() {
        for seed in 0..200 {
            let s = gen("[a-zA-Z0-9 .*+?()\\[\\]{}|^$\\\\-]{0,40}", seed);
            assert!(s.len() <= 40);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || " .*+?()[]{}|^$\\-".contains(c),
                    "unexpected {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(gen("[a-z]{0,10}", 7), gen("[a-z]{0,10}", 7));
    }
}
