//! `any::<T>()` — whole-type strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning a wide but well-behaved range.
        (rng.next_u64() as i64 as f64) * 1e-9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(95) as u8) as char
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
