//! Deterministic case runner and its RNG.

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs violated an assumption; draw another case.
    Reject,
    /// The property is false for these inputs.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a case seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Combines the base seed with a case index into a case seed.
pub fn mix(base: u64, case: u64) -> u64 {
    let mut z = base ^ case.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

/// Runs one property over `config.cases` accepted cases. All case seeds
/// derive from a single base seed (`PROPTEST_SEED` env var, or a fixed
/// default), and that seed is reported on any failure or panic so the
/// run can be reproduced exactly.
pub fn run<F>(name: &str, config: &ProptestConfig, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base_seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x4c45_4749_4f4e_0001); // "LEGION" + 1
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(20).max(20);
    while accepted < config.cases && attempts < max_attempts {
        attempts += 1;
        let case_seed = mix(base_seed, attempts);
        let mut rng = TestRng::new(case_seed);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject)) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "[{name}] property failed at case {attempts} \
                     (base seed {base_seed}, case seed {case_seed}; \
                     rerun with PROPTEST_SEED={base_seed}): {msg}"
                );
            }
            Err(payload) => {
                eprintln!(
                    "[{name}] property panicked at case {attempts} \
                     (base seed {base_seed}, case seed {case_seed}; \
                     rerun with PROPTEST_SEED={base_seed})"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}
