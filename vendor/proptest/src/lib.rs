//! Minimal `proptest` shim.
//!
//! A deterministic property-testing harness exposing the subset of the
//! real proptest API this workspace uses: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_recursive`, `prop_oneof!`, `Just`,
//! `any::<T>()`, numeric-range strategies, string strategies from a
//! small regex-like pattern language, `collection::{vec, btree_set}`,
//! and the `prop_assert*`/`prop_assume!` macros.
//!
//! Every run derives all case seeds from one base `u64` (overridable
//! via `PROPTEST_SEED`), and both assertion failures and panics report
//! that seed so any failure is reproducible — the same single-seed
//! policy the simulator's `legion-fabric::rng` uses. No shrinking is
//! performed; the failing case seed is reported instead.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod string;

pub mod collection;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn` body runs against many generated
/// inputs drawn from the strategies named after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__config,
                    |__rng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        };
                        __case()
                    },
                );
            }
        )*
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) so the runner can report the reproduction seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)*);
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
