//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: at each of `depth` levels the result is
    /// either a base value or one produced by `recurse` applied to the
    /// previous level. `desired_size` and `expected_branch_size` are
    /// accepted for API compatibility and unused by this shim.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Picks uniformly among several strategies of the same value type
/// (built by the `prop_oneof!` macro).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one option");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// String strategies from a regex-like pattern (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * width) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
