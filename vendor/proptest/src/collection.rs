//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from the given range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy for `BTreeSet<T>`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let want = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; bound the retries so narrow element
        // domains still terminate.
        for _ in 0..want.saturating_mul(10).max(8) {
            if out.len() >= want {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// Generates ordered sets of elements drawn from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}
