//! Minimal `rand` shim.
//!
//! The workspace builds without network access, so this crate provides
//! the subset of the `rand` 0.8 API the Legion codebase uses:
//! `SmallRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool,
//! sample_iter}`, `distributions::Standard`, and
//! `seq::SliceRandom::{shuffle, choose}`. The generator is a
//! SplitMix64-seeded xoshiro256**, which is deterministic across
//! platforms — exactly what the simulator's reproducibility story
//! (single `u64` seed in `legion-fabric::rng`) requires.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions over random values.
pub mod distributions {
    use super::RngCore;

    /// A distribution that can sample values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over the whole type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// An iterator of samples from a distribution (see [`super::Rng::sample_iter`]).
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

/// Range sampling support for [`Rng::gen_range`].
pub mod uniform {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 * width) >> 64;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let width = (end as i128 - start as i128) as u128 + 1;
                    let off = ((rng.next_u64() as u128) * width) >> 64;
                    (start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + f * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "cannot sample empty range");
            let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            start + f * (end - start)
        }
    }
}

/// User-facing random value generation, blanket-implemented for all
/// [`RngCore`] types.
pub trait Rng: RngCore {
    /// Returns a random value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Returns a uniform sample from the given range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Consumes the generator, yielding an iterator of samples.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter { distr, rng: self, _marker: core::marker::PhantomData }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices: random choice and shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                self.get(idx)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let a: u64 = SmallRng::seed_from_u64(7).gen();
        let b: u64 = SmallRng::seed_from_u64(7).gen();
        let c: u64 = SmallRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = SmallRng::seed_from_u64(42);
        let mut v: Vec<u32> = (0..16).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn sample_iter_streams() {
        use super::distributions::Standard;
        let a: Vec<u32> =
            SmallRng::seed_from_u64(3).sample_iter(Standard).take(5).collect();
        let b: Vec<u32> =
            SmallRng::seed_from_u64(3).sample_iter(Standard).take(5).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }
}
