//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace never serializes at runtime; these derives exist so
//! `#[derive(Serialize, Deserialize)]` and field-level `#[serde(...)]`
//! attributes compile. They intentionally expand to nothing: the types
//! simply do not implement the (equally stubbed) serde traits, which no
//! code path requires.

use proc_macro::TokenStream;

/// Accepts the input and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
