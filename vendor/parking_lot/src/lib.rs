//! Minimal `parking_lot` shim backed by `std::sync`.
//!
//! The workspace builds without network access, so this crate provides
//! the small slice of the real `parking_lot` API the Legion codebase
//! uses: non-poisoning `Mutex`/`RwLock` with infallible `lock`, `read`
//! and `write`. Poisoned std locks are recovered transparently, which
//! matches parking_lot's "no poisoning" semantics closely enough for a
//! single-process simulator.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
