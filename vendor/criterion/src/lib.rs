//! Minimal `criterion` shim.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `Throughput`, `BatchSize` — backed by a simple
//! wall-clock timer. It reports median-of-samples timings to stdout
//! rather than criterion's full statistical machinery, which is enough
//! to compare hot paths on one machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures a single benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// How batched inputs are sized (accepted, unused by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// A small input: batches may share an allocation.
    SmallInput,
    /// A large input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Bencher {
    /// Times `routine` over the chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate the per-sample iteration count to keep total runtime
    // bounded while avoiding zero-duration samples.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed / iters.max(1) as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{id:<60} {median:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{id:<60} {median:>12.2?}/iter  {rate:>14.0} B/s");
        }
        _ => println!("{id:<60} {median:>12.2?}/iter"),
    }
}

/// Prevents the optimizer from eliding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
