//! Watchdog crash detection + restart-from-OPR integration tests.

use legion_core::{
    ClassObject, HostObject, LegionClass, Loid, ObjectImplementation, ObjectSpec,
    ReservationRequest, SimDuration, VaultDirectory, VaultObject,
};
use legion_fabric::{DomainId, DomainTopology, Fabric, FaultPlan};
use legion_hosts::{HostConfig, StandardHost};
use legion_monitor::Watchdog;
use legion_vaults::{StandardVault, VaultConfig};
use std::sync::Arc;

struct World {
    fabric: Arc<Fabric>,
    hosts: Vec<Arc<StandardHost>>,
    class: Loid,
}

/// Two hosts in one domain sharing one open vault — recovery does not
/// need to move the OPR.
fn shared_world() -> World {
    let fabric = Fabric::new(
        DomainTopology::uniform(2, SimDuration::from_micros(50), SimDuration::from_millis(20)),
        11,
    );
    let v = Arc::new(StandardVault::new(VaultConfig {
        name: "vault".into(),
        domain: "site0.edu".into(),
        ..Default::default()
    }));
    fabric.register_vault(v, DomainId(0));
    let mut hosts = Vec::new();
    for i in 0..2u64 {
        let h = StandardHost::new(
            HostConfig::unix(format!("h{i}"), "site0.edu"),
            fabric.clone(),
            20 + i,
        );
        h.set_metrics(Arc::clone(fabric.metrics()));
        fabric.register_host(Arc::clone(&h) as Arc<dyn HostObject>, DomainId(0));
        hosts.push(h);
    }
    let class = Arc::new(LegionClass::new(
        "app",
        vec![ObjectImplementation::new("mips", "IRIX")],
    ));
    let class_loid = class.loid();
    fabric.register_class(class);
    World { fabric, hosts, class: class_loid }
}

fn start_object(w: &World, idx: usize) -> Loid {
    let h = &w.hosts[idx];
    let vault = h.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(w.class, vault, SimDuration::from_secs(7200))
        .with_demand(20, 64);
    let tok = h.make_reservation(&req, w.fabric.clock().now()).unwrap();
    let mut spec = ObjectSpec::new(w.class);
    spec.initial_state = b"watchdog test state".to_vec();
    let obj = h.start_object(&tok, &[spec], w.fabric.clock().now()).unwrap()[0];
    w.fabric.lookup_class(w.class).unwrap().note_instance_location(obj, h.loid());
    obj
}

#[test]
fn crash_is_detected_and_object_restarts_from_opr() {
    let w = shared_world();
    let obj = start_object(&w, 0);

    // start_object checkpointed the newborn OPR into the vault.
    let vault_loid = w.hosts[0].get_compatible_vaults()[0];
    assert!(w.fabric.lookup_vault(vault_loid).unwrap().holds(obj));

    let dog = Watchdog::new(w.fabric.clone(), 2);
    assert!(dog.patrol(w.fabric.clock().now()).is_empty(), "all hosts healthy");

    w.hosts[0].crash();
    assert!(w.hosts[0].running_objects().is_empty(), "volatile state lost");

    // One miss is not a verdict — partitions heal, packets drop.
    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    assert!(dog.patrol(now).is_empty());
    assert_eq!(dog.misses_for(w.hosts[0].loid()), 1);
    assert!(!dog.considers_dead(w.hosts[0].loid()));

    // Second consecutive miss: declared dead, restarted from the OPR.
    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    let restarts = dog.patrol(now);
    assert_eq!(restarts.len(), 1);
    assert_eq!(restarts[0].object, obj);
    assert_eq!(restarts[0].from, w.hosts[0].loid());
    assert_eq!(restarts[0].to, w.hosts[1].loid());

    // The object runs on host 1 with its checkpointed state.
    assert_eq!(w.hosts[1].running_objects(), vec![obj]);
    let class = w.fabric.lookup_class(w.class).unwrap();
    assert_eq!(class.instances(), vec![(obj, w.hosts[1].loid())]);
    let snap = w.fabric.metrics().snapshot();
    assert_eq!(snap.monitor_restarts, 1);
    assert_eq!(snap.host_crashes, 1);

    // A later patrol does not restart it again.
    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    assert!(dog.patrol(now).is_empty());
    assert_eq!(w.fabric.metrics().snapshot().monitor_restarts, 1);
}

#[test]
fn recovered_host_is_probed_back_to_health() {
    let w = shared_world();
    let dog = Watchdog::new(w.fabric.clone(), 2);
    w.hosts[0].crash();
    for _ in 0..3 {
        let now = w.fabric.clock().advance(SimDuration::from_secs(30));
        dog.patrol(now);
    }
    assert!(dog.considers_dead(w.hosts[0].loid()));

    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    w.hosts[0].restart(now);
    dog.patrol(now);
    assert!(!dog.considers_dead(w.hosts[0].loid()));
    assert_eq!(dog.misses_for(w.hosts[0].loid()), 0);
}

#[test]
fn flapping_host_resets_misses_on_every_recovery() {
    // A host that crashes, restarts, and re-joins repeatedly must have
    // its miss counter reset each time it answers a probe — flapping
    // must never accumulate into a permanent dead verdict.
    let w = shared_world();
    let dog = Watchdog::new(w.fabric.clone(), 3);
    let h0 = w.hosts[0].loid();

    for round in 0..3 {
        // Crash and miss twice — one short of the verdict.
        w.hosts[0].crash();
        for _ in 0..2 {
            let now = w.fabric.clock().advance(SimDuration::from_secs(30));
            dog.patrol(now);
        }
        assert_eq!(dog.misses_for(h0), 2, "round {round}");
        assert!(!dog.considers_dead(h0), "round {round}");

        // Restart: the next answered probe wipes the slate.
        let now = w.fabric.clock().advance(SimDuration::from_secs(30));
        w.hosts[0].restart(now);
        dog.patrol(now);
        assert_eq!(dog.misses_for(h0), 0, "round {round}: misses reset");
        assert!(!dog.considers_dead(h0), "round {round}");
    }
}

#[test]
fn unregistered_host_rejoins_with_clean_slate() {
    // A host declared dead, then unregistered from the fabric, must not
    // inherit its dead verdict when it later re-registers: patrols
    // prune miss entries for hosts that are no longer registered.
    let w = shared_world();
    let dog = Watchdog::new(w.fabric.clone(), 2);
    let h0 = w.hosts[0].loid();

    w.hosts[0].crash();
    for _ in 0..2 {
        let now = w.fabric.clock().advance(SimDuration::from_secs(30));
        dog.patrol(now);
    }
    assert!(dog.considers_dead(h0));

    // The operator pulls the host out of the fabric entirely.
    let pulled = w.fabric.unregister_host(h0).expect("host was registered");
    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    dog.patrol(now);
    assert!(!dog.considers_dead(h0), "stale verdict pruned once unregistered");
    assert_eq!(dog.misses_for(h0), 0);

    // Repaired and re-joined: it starts from zero misses and is
    // immediately trusted again.
    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    w.hosts[0].restart(now);
    w.fabric.register_host(pulled, DomainId(0));
    dog.patrol(now);
    assert!(!dog.considers_dead(h0));
    assert_eq!(dog.misses_for(h0), 0);
}

#[test]
fn host_restarted_this_patrol_is_a_recovery_candidate() {
    // Registry order: h0 (dead, carries the object), h1 restarted just
    // before this patrol after being considered dead itself. The patrol
    // must settle *all* probes before recovering h0, so h1's fresh
    // liveness is visible and it can take the restarted object.
    let w = shared_world();
    let obj = start_object(&w, 0);
    let dog = Watchdog::new(w.fabric.clone(), 2);

    // Both hosts crash; both cross the miss threshold. Nothing can be
    // recovered yet — there is no live candidate.
    w.hosts[0].crash();
    w.hosts[1].crash();
    for _ in 0..2 {
        let now = w.fabric.clock().advance(SimDuration::from_secs(30));
        assert!(dog.patrol(now).is_empty(), "no live host to restart onto");
    }
    assert!(dog.considers_dead(w.hosts[0].loid()));
    assert!(dog.considers_dead(w.hosts[1].loid()));

    // h1 comes back just before the next patrol. Its probe lands in
    // phase one, so phase two's recovery of h0 can use it.
    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    w.hosts[1].restart(now);
    let restarts = dog.patrol(now);
    assert_eq!(restarts.len(), 1, "freshly restarted host accepted the object");
    assert_eq!(restarts[0].object, obj);
    assert_eq!(restarts[0].to, w.hosts[1].loid());
    assert_eq!(w.hosts[1].running_objects(), vec![obj]);
}

#[test]
fn partition_looks_like_a_crash_and_triggers_recovery() {
    // Hosts in different domains sharing an accept-all vault that sits
    // in the watchdog's domain. A partition hides host 1; its object is
    // restarted from the (still reachable) OPR on host 0.
    let fabric = Fabric::new(
        DomainTopology::uniform(2, SimDuration::from_micros(50), SimDuration::from_millis(20)),
        13,
    );
    let v = Arc::new(StandardVault::new(VaultConfig::default()));
    let vault_loid = v.loid();
    fabric.register_vault(v, DomainId(0));
    let mut hosts = Vec::new();
    for d in 0..2u16 {
        let h = StandardHost::new(
            HostConfig::unix(format!("h{d}"), format!("site{d}.edu")),
            fabric.clone(),
            30 + d as u64,
        );
        h.set_metrics(Arc::clone(fabric.metrics()));
        fabric.register_host(Arc::clone(&h) as Arc<dyn HostObject>, DomainId(d));
        hosts.push(h);
    }
    let class = Arc::new(LegionClass::new(
        "app",
        vec![ObjectImplementation::new("mips", "IRIX")],
    ));
    let class_loid = class.loid();
    fabric.register_class(class);

    // Object on host 1 (domain 1); its birth checkpoint lands in the
    // shared vault over in domain 0.
    let h1 = &hosts[1];
    let req =
        ReservationRequest::instantaneous(class_loid, vault_loid, SimDuration::from_secs(7200))
            .with_demand(20, 64);
    let tok = h1.make_reservation(&req, fabric.clock().now()).unwrap();
    let obj = h1
        .start_object(&tok, &[ObjectSpec::new(class_loid)], fabric.clock().now())
        .unwrap()[0];
    fabric.lookup_class(class_loid).unwrap().note_instance_location(obj, h1.loid());
    assert!(fabric.lookup_vault(vault_loid).unwrap().holds(obj));

    // Sever domain 0 <-> domain 1. The fabric fires the event on tick.
    let heal_at = legion_core::SimTime::from_micros(3_600_000_000);
    let plan = FaultPlan::new().at(
        fabric.clock().now(),
        legion_fabric::FaultAction::Partition { a: DomainId(0), b: DomainId(1), heal_at },
    );
    fabric.install_fault_plan(plan);
    fabric.tick_all_hosts(SimDuration::from_secs(1));
    assert!(fabric.is_partitioned(DomainId(0), DomainId(1)));

    let dog = Watchdog::new(fabric.clone(), 2);
    let mut restarts = Vec::new();
    for _ in 0..2 {
        let now = fabric.clock().advance(SimDuration::from_secs(30));
        restarts.extend(dog.patrol(now));
    }
    assert_eq!(restarts.len(), 1, "object behind the partition recovered");
    assert_eq!(restarts[0].from, hosts[1].loid());
    assert_eq!(restarts[0].to, hosts[0].loid());
    assert_eq!(restarts[0].via_vault, vault_loid);
    assert!(hosts[0].running_objects().contains(&obj));
    assert_eq!(fabric.metrics().snapshot().monitor_restarts, 1);
}
