//! Monitor + migration integration tests.

use legion_core::{
    ClassObject, HostObject, LegionClass, LegionError, Loid, ObjectImplementation, ObjectSpec,
    Opr, ReservationRequest, SimDuration, SimTime, VaultDirectory, VaultObject,
};
use legion_fabric::{DomainId, DomainTopology, Fabric};
use legion_hosts::{BackgroundLoad, HostConfig, StandardHost};
use legion_monitor::{
    migrate_object, MigrateDisposition, MigrateFailure, Monitor, Rebalancer, Watchdog,
};
use legion_schedule::FailureClass;
use legion_vaults::{StandardVault, VaultConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct World {
    fabric: Arc<Fabric>,
    hosts: Vec<Arc<StandardHost>>,
    vaults: Vec<Loid>,
    class: Loid,
}

/// Two hosts in separate domains with *domain-restricted* vaults, so a
/// migration between them must move the OPR between vaults.
fn split_world() -> World {
    let fabric = Fabric::new(
        DomainTopology::uniform(2, SimDuration::from_micros(50), SimDuration::from_millis(20)),
        5,
    );
    let mut vaults = Vec::new();
    let mut hosts = Vec::new();
    for d in 0..2u16 {
        let domain_name = format!("site{d}.edu");
        let v = Arc::new(StandardVault::new(VaultConfig {
            name: format!("vault{d}"),
            domain: domain_name.clone(),
            accepted_domains: vec![domain_name.clone()],
            ..Default::default()
        }));
        vaults.push(v.loid());
        fabric.register_vault(v, DomainId(d));
        let h = StandardHost::new(
            HostConfig::unix(format!("h{d}"), domain_name),
            fabric.clone(),
            10 + d as u64,
        );
        h.set_metrics(Arc::clone(fabric.metrics()));
        fabric.register_host(Arc::clone(&h) as Arc<dyn HostObject>, DomainId(d));
        hosts.push(h);
    }
    let class = Arc::new(LegionClass::new(
        "app",
        vec![ObjectImplementation::new("mips", "IRIX")],
    ));
    let class_loid = class.loid();
    fabric.register_class(class);
    World { fabric, hosts, vaults, class: class_loid }
}

/// Starts one object on host `idx` and returns its LOID.
fn start_object(w: &World, idx: usize) -> Loid {
    let h = &w.hosts[idx];
    let vault = h.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(w.class, vault, SimDuration::from_secs(7200))
        .with_demand(50, 64);
    let tok = h.make_reservation(&req, w.fabric.clock().now()).unwrap();
    let mut spec = ObjectSpec::new(w.class);
    spec.initial_state = b"application checkpoint state".to_vec();
    let started = h.start_object(&tok, &[spec], w.fabric.clock().now()).unwrap();
    let obj = started[0];
    if let Some(c) = w.fabric.lookup_class(w.class) {
        c.note_instance_location(obj, h.loid());
    }
    obj
}

#[test]
fn migration_moves_object_and_opr_across_vaults() {
    let w = split_world();
    let obj = start_object(&w, 0);
    assert_eq!(w.hosts[0].running_objects(), vec![obj]);

    let rec =
        migrate_object(&w.fabric, obj, w.hosts[0].loid(), w.hosts[1].loid()).unwrap();

    // The object now runs on host 1 only.
    assert!(w.hosts[0].running_objects().is_empty());
    assert_eq!(w.hosts[1].running_objects(), vec![obj]);
    // The OPR moved into the destination's (domain-restricted) vault.
    assert_eq!(rec.via_vault, w.vaults[1]);
    let v0 = w.fabric.lookup_vault(w.vaults[0]).unwrap();
    let v1 = w.fabric.lookup_vault(w.vaults[1]).unwrap();
    assert!(!v0.holds(obj));
    assert!(v1.holds(obj));
    // State travelled with it.
    assert_eq!(&v1.fetch_opr(obj).unwrap().state[..], b"application checkpoint state");
    // The class knows the new location.
    let class = w.fabric.lookup_class(w.class).unwrap();
    assert_eq!(class.instances(), vec![(obj, w.hosts[1].loid())]);
    // The ledger counted it.
    assert_eq!(w.fabric.metrics().snapshot().migrations, 1);
}

#[test]
fn migration_failure_rolls_back() {
    let w = split_world();
    let obj = start_object(&w, 0);
    // Make the destination incapable: fill its memory with a hog object.
    let hog = start_hog(&w, 1, 512);
    assert!(w.hosts[1].running_objects().contains(&hog));

    let err = migrate_object(&w.fabric, obj, w.hosts[0].loid(), w.hosts[1].loid());
    assert!(err.is_err());
    // The object is back home and runnable.
    assert_eq!(w.hosts[0].running_objects(), vec![obj]);
    assert_eq!(w.fabric.metrics().snapshot().migrations, 0);
}

fn start_hog(w: &World, idx: usize, mem: u32) -> Loid {
    let h = &w.hosts[idx];
    let vault = h.get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(w.class, vault, SimDuration::from_secs(7200))
        .with_demand(10, mem);
    let tok = h.make_reservation(&req, w.fabric.clock().now()).unwrap();
    let mut spec = ObjectSpec::new(w.class);
    spec.memory_mb = mem;
    h.start_object(&tok, &[spec], w.fabric.clock().now()).unwrap()[0]
}

#[test]
fn monitor_receives_trigger_events() {
    let w = split_world();
    let monitor = Monitor::new();
    let host_dyn: Arc<dyn HostObject> = Arc::clone(&w.hosts[0]) as Arc<dyn HostObject>;
    monitor.watch_load(&host_dyn, 0.8);
    assert_eq!(monitor.watched().len(), 1);

    // Below threshold: nothing.
    w.hosts[0].set_background_load(BackgroundLoad::steady(0.2));
    w.hosts[0].reassess(w.fabric.clock().now());
    assert_eq!(monitor.pending(), 0);

    // Spike: the trigger fires and the outcall delivers.
    w.hosts[0].set_background_load(BackgroundLoad::steady(2.5));
    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    w.hosts[0].reassess(now);
    let events = monitor.drain_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].source, w.hosts[0].loid());
    assert!(events[0].detail.get_f64("host_load").unwrap() > 0.8);

    // Cooldown: an immediate re-assessment does not re-fire.
    w.hosts[0].reassess(now);
    assert_eq!(monitor.pending(), 0);
    // After the cooldown it fires again.
    let later = w.fabric.clock().advance(SimDuration::from_secs(30));
    w.hosts[0].reassess(later);
    assert_eq!(monitor.pending(), 1);
}

#[test]
fn rebalancer_migrates_off_overloaded_host() {
    let w = split_world();
    let obj = start_object(&w, 0);

    let rb = Rebalancer::new(w.fabric.clone());
    rb.watch_all(0.9);

    // Overload host 0; host 1 stays idle.
    w.hosts[0].set_background_load(BackgroundLoad::steady(3.0));
    w.hosts[1].set_background_load(BackgroundLoad::steady(0.1));
    let now = w.fabric.clock().advance(SimDuration::from_secs(60));
    for h in &w.hosts {
        h.reassess(now);
    }

    let migrations = rb.rebalance_once();
    assert_eq!(migrations.len(), 1);
    assert_eq!(migrations[0].object, obj);
    assert_eq!(migrations[0].to, w.hosts[1].loid());
    assert_eq!(w.hosts[1].running_objects(), vec![obj]);

    // A second round with no pending events does nothing.
    assert!(rb.rebalance_once().is_empty());
}

#[test]
fn rebalancer_refuses_hot_targets() {
    let w = split_world();
    start_object(&w, 0);
    let rb = Rebalancer::new(w.fabric.clone());
    rb.watch_all(0.9);

    // Both hosts overloaded: no safe target, no migration.
    for h in &w.hosts {
        h.set_background_load(BackgroundLoad::steady(3.0));
    }
    let now = w.fabric.clock().advance(SimDuration::from_secs(60));
    for h in &w.hosts {
        h.reassess(now);
    }
    assert!(rb.rebalance_once().is_empty());
    assert_eq!(w.hosts[0].running_objects().len(), 1, "object stays put");
}

#[test]
fn shutdown_drains_every_object() {
    // An administrator takes host 0 down; the Monitor's trigger fires on
    // each reassessment and the Rebalancer evacuates everything, never
    // targeting another draining host.
    let w = split_world();
    // Two half-CPU objects fill the host exactly.
    let objs: Vec<Loid> = (0..2).map(|_| start_object(&w, 0)).collect();
    assert_eq!(w.hosts[0].running_objects().len(), 2);

    let rb = Rebalancer::new(w.fabric.clone());
    rb.watch_all(99.0); // load trigger effectively disabled
    w.hosts[0].begin_shutdown();
    assert!(w.hosts[0].is_draining());

    // Draining hosts refuse new reservations immediately.
    let vault = w.hosts[0].get_compatible_vaults()[0];
    let req = ReservationRequest::instantaneous(w.class, vault, SimDuration::from_secs(60));
    assert!(matches!(
        w.hosts[0].make_reservation(&req, w.fabric.clock().now()),
        Err(legion_core::LegionError::PolicyRefused { .. })
    ));

    let mut moved = 0;
    for _ in 0..4 {
        let now = w.fabric.clock().advance(SimDuration::from_secs(30));
        for h in &w.hosts {
            h.reassess(now);
        }
        moved += rb.rebalance_once().len();
    }
    assert_eq!(moved, 2, "all objects drained");
    assert!(w.hosts[0].running_objects().is_empty());
    for o in objs {
        assert!(w.hosts[1].running_objects().contains(&o));
    }
    // Once empty, reassessment stops raising shutdown events.
    let now = w.fabric.clock().advance(SimDuration::from_secs(30));
    let events = w.hosts[0].reassess(now);
    assert!(events.is_empty());
}

#[test]
fn migration_errors_are_typed() {
    let w = split_world();
    let obj = start_object(&w, 0);
    let ghost = Loid::fresh(legion_core::LoidKind::Host);

    // Unknown source.
    let err = migrate_object(&w.fabric, obj, ghost, w.hosts[1].loid()).unwrap_err();
    assert!(matches!(err.failure, MigrateFailure::SourceDown(h) if h == ghost));
    assert_eq!(err.disposition, MigrateDisposition::Untouched);
    assert_eq!(err.failure_class(), FailureClass::HostDown);
    assert!(err.is_transient());

    // Unknown target.
    let err = migrate_object(&w.fabric, obj, w.hosts[0].loid(), ghost).unwrap_err();
    assert!(matches!(err.failure, MigrateFailure::TargetDown(h) if h == ghost));
    assert!(err.target_side());
    assert!(!err.wasted_work());

    // No vault holds passive state for a never-checkpointed LOID.
    let unknown_obj = Loid::fresh(legion_core::LoidKind::Instance);
    let err = migrate_object(&w.fabric, unknown_obj, w.hosts[0].loid(), w.hosts[1].loid())
        .unwrap_err();
    assert!(matches!(err.failure, MigrateFailure::OprMissing(o) if o == unknown_obj));
    assert_eq!(err.failure_class(), FailureClass::Infrastructure);

    // A refused admission reservation names the refusing host and
    // leaves the object untouched — zero disruption.
    let _hog = start_hog(&w, 1, 512);
    let err = migrate_object(&w.fabric, obj, w.hosts[0].loid(), w.hosts[1].loid()).unwrap_err();
    assert!(
        matches!(err.failure, MigrateFailure::ReservationRefused { host, .. }
            if host == w.hosts[1].loid()),
        "expected ReservationRefused, got: {err}"
    );
    assert_eq!(err.disposition, MigrateDisposition::Untouched);
    assert_eq!(err.failure_class(), FailureClass::ResourceUnavailable);
    assert!(err.target_side());
    assert!(!err.wasted_work(), "refusal must cost no deactivation round trip");
    assert_eq!(w.hosts[0].running_objects(), vec![obj]);
}

/// A delegating host wrapper that fail-stops its inner host at a chosen
/// point in the migration sequence — the only way to crash a host
/// *between* two steps of one `migrate_object` call.
struct SabotagedHost {
    inner: Arc<StandardHost>,
    /// Crash the host immediately after a successful deactivation (the
    /// source dying with the object's state already in the vault).
    crash_after_deactivate: AtomicBool,
    /// Crash the host when reactivation is attempted (the target dying
    /// mid-flight, after granting admission).
    crash_on_reactivate: AtomicBool,
}

impl SabotagedHost {
    fn new(inner: Arc<StandardHost>) -> Arc<Self> {
        Arc::new(SabotagedHost {
            inner,
            crash_after_deactivate: AtomicBool::new(false),
            crash_on_reactivate: AtomicBool::new(false),
        })
    }
}

impl HostObject for SabotagedHost {
    fn loid(&self) -> Loid {
        self.inner.loid()
    }
    fn make_reservation(
        &self,
        req: &ReservationRequest,
        now: SimTime,
    ) -> Result<legion_core::ReservationToken, LegionError> {
        self.inner.make_reservation(req, now)
    }
    fn check_reservation(
        &self,
        token: &legion_core::ReservationToken,
        now: SimTime,
    ) -> Result<legion_core::ReservationStatus, LegionError> {
        self.inner.check_reservation(token, now)
    }
    fn cancel_reservation(&self, token: &legion_core::ReservationToken) -> Result<(), LegionError> {
        self.inner.cancel_reservation(token)
    }
    fn start_object(
        &self,
        token: &legion_core::ReservationToken,
        specs: &[ObjectSpec],
        now: SimTime,
    ) -> Result<Vec<Loid>, LegionError> {
        self.inner.start_object(token, specs, now)
    }
    fn kill_object(&self, object: Loid) -> Result<(), LegionError> {
        self.inner.kill_object(object)
    }
    fn deactivate_object(&self, object: Loid, now: SimTime) -> Result<Opr, LegionError> {
        let r = self.inner.deactivate_object(object, now);
        if r.is_ok() && self.crash_after_deactivate.swap(false, Ordering::SeqCst) {
            self.inner.crash();
        }
        r
    }
    fn reactivate_object(&self, opr: &Opr, now: SimTime) -> Result<(), LegionError> {
        if self.crash_on_reactivate.swap(false, Ordering::SeqCst) {
            self.inner.crash();
        }
        self.inner.reactivate_object(opr, now)
    }
    fn running_objects(&self) -> Vec<Loid> {
        self.inner.running_objects()
    }
    fn get_compatible_vaults(&self) -> Vec<Loid> {
        self.inner.get_compatible_vaults()
    }
    fn vault_ok(&self, vault: Loid) -> bool {
        self.inner.vault_ok(vault)
    }
    fn attributes(&self) -> legion_core::AttributeDb {
        self.inner.attributes()
    }
    fn crash(&self) {
        self.inner.crash()
    }
    fn restart(&self, now: SimTime) {
        self.inner.restart(now)
    }
    fn is_crashed(&self) -> bool {
        self.inner.is_crashed()
    }
    fn probe(&self, now: SimTime) -> Result<(), LegionError> {
        self.inner.probe(now)
    }
    fn register_trigger(&self, trigger: legion_core::Trigger) -> legion_core::TriggerId {
        self.inner.register_trigger(trigger)
    }
    fn remove_trigger(&self, id: legion_core::TriggerId) {
        self.inner.remove_trigger(id)
    }
    fn register_outcall(&self, outcall: Arc<dyn legion_core::Outcall>) {
        self.inner.register_outcall(outcall)
    }
    fn reassess(&self, now: SimTime) -> Vec<legion_core::Event> {
        self.inner.reassess(now)
    }
}

#[test]
fn mid_migration_target_crash_watchdog_restarts_on_third_host() {
    // Satellite: the target host dies after granting admission but
    // before reactivation, and the source dies right after handing its
    // state to the vault. The object must neither be lost nor
    // duplicated: the Watchdog restarts it from its OPR on the third
    // host, and exactly one live instance exists afterwards.
    let fabric = Fabric::new(
        DomainTopology::uniform(1, SimDuration::from_micros(50), SimDuration::from_millis(20)),
        23,
    );
    let vault = Arc::new(StandardVault::new(VaultConfig {
        name: "shared".into(),
        domain: "site0.edu".into(),
        accepted_domains: vec!["site0.edu".into()],
        ..Default::default()
    }));
    let vault_loid = vault.loid();
    fabric.register_vault(vault, DomainId(0));
    let mut inners = Vec::new();
    let mut wrapped = Vec::new();
    for i in 0..3u64 {
        let h = StandardHost::new(
            HostConfig::unix(format!("h{i}"), "site0.edu"),
            fabric.clone(),
            40 + i,
        );
        h.set_metrics(Arc::clone(fabric.metrics()));
        let w = SabotagedHost::new(Arc::clone(&h));
        fabric.register_host(Arc::clone(&w) as Arc<dyn HostObject>, DomainId(0));
        inners.push(h);
        wrapped.push(w);
    }
    let class = Arc::new(LegionClass::new(
        "app",
        vec![ObjectImplementation::new("mips", "IRIX")],
    ));
    let class_loid = class.loid();
    fabric.register_class(Arc::clone(&class) as Arc<dyn ClassObject>);

    // Start the object on host 0.
    let req = ReservationRequest::instantaneous(class_loid, vault_loid, SimDuration::from_secs(7200))
        .with_demand(50, 64);
    let tok = inners[0].make_reservation(&req, fabric.clock().now()).unwrap();
    let mut spec = ObjectSpec::new(class_loid);
    spec.initial_state = b"survivor state".to_vec();
    let obj = inners[0].start_object(&tok, &[spec], fabric.clock().now()).unwrap()[0];
    class.note_instance_location(obj, inners[0].loid());

    // Arm the sabotage: source dies after deactivation, target dies at
    // reactivation (admission already granted).
    wrapped[0].crash_after_deactivate.store(true, Ordering::SeqCst);
    wrapped[1].crash_on_reactivate.store(true, Ordering::SeqCst);

    let err = migrate_object(&fabric, obj, inners[0].loid(), inners[1].loid()).unwrap_err();
    assert!(
        matches!(err.failure, MigrateFailure::TargetDown(h) if h == inners[1].loid()),
        "expected TargetDown, got: {err}"
    );
    assert!(
        matches!(err.disposition, MigrateDisposition::StrandedInVault(v) if v == vault_loid),
        "object must rest in the shared vault, got: {err}"
    );
    // Nothing is running anywhere; the OPR is intact.
    assert!(inners.iter().all(|h| h.running_objects().is_empty()));
    let v = fabric.lookup_vault(vault_loid).unwrap();
    assert!(v.holds(obj));

    // The Watchdog declares host 0 dead (the Class still places the
    // object there) and restarts it on the only live host — host 2.
    let wd = Watchdog::new(fabric.clone(), 1);
    let now = fabric.clock().advance(SimDuration::from_secs(30));
    let restarts = wd.patrol(now);
    assert_eq!(restarts.len(), 1, "exactly one restart");
    assert_eq!(restarts[0].object, obj);
    assert_eq!(restarts[0].to, inners[2].loid());

    // Exactly one live instance, on the third host, and the Class
    // agrees — no loss, no duplication.
    let live: usize = inners.iter().map(|h| h.running_objects().len()).sum();
    assert_eq!(live, 1);
    assert_eq!(inners[2].running_objects(), vec![obj]);
    assert_eq!(class.instances(), vec![(obj, inners[2].loid())]);
    // The state survived the double crash.
    assert_eq!(&v.fetch_opr(obj).unwrap().state[..], b"survivor state");
    assert_eq!(fabric.metrics().snapshot().monitor_restarts, 1);

    // A second patrol mints nothing new — no duplicate restart.
    let now = fabric.clock().advance(SimDuration::from_secs(30));
    assert!(wd.patrol(now).is_empty());
    let live: usize = inners.iter().map(|h| h.running_objects().len()).sum();
    assert_eq!(live, 1);
}

#[test]
fn rebalancer_never_targets_draining_hosts() {
    let w = split_world();
    let _obj = start_object(&w, 0);
    // The only other host is itself draining: nothing can move.
    w.hosts[1].begin_shutdown();
    let rb = Rebalancer::new(w.fabric.clone());
    rb.watch_all(1.0);
    w.hosts[0].set_background_load(legion_hosts::BackgroundLoad::steady(3.0));
    let now = w.fabric.clock().advance(SimDuration::from_secs(60));
    for h in &w.hosts {
        h.reassess(now);
    }
    assert!(rb.rebalance_once().is_empty());
    assert_eq!(w.hosts[0].running_objects().len(), 1);
    // Shutdown cancelled: the next round can migrate.
    w.hosts[1].cancel_shutdown();
    let now = w.fabric.clock().advance(SimDuration::from_secs(60));
    for h in &w.hosts {
        h.reassess(now);
    }
    assert_eq!(rb.rebalance_once().len(), 1);
}
