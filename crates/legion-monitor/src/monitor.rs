//! Event intake: trigger registration and the outcall inbox.

use legion_core::{Event, EventKind, Guard, HostObject, Loid, LoidKind, Outcall, SimDuration, Trigger, TriggerId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// The outcall sink shared with hosts.
#[derive(Default)]
struct Inbox {
    events: Mutex<VecDeque<Event>>,
}

impl Outcall for Inbox {
    fn notify(&self, event: &Event) {
        self.events.lock().push_back(event.clone());
    }
}

/// An embeddable execution monitor.
pub struct Monitor {
    loid: Loid,
    inbox: Arc<Inbox>,
    watched: Mutex<Vec<(Loid, TriggerId)>>,
}

impl Monitor {
    /// A monitor with an empty inbox.
    pub fn new() -> Self {
        Monitor {
            loid: Loid::fresh(LoidKind::Service),
            inbox: Arc::new(Inbox::default()),
            watched: Mutex::new(Vec::new()),
        }
    }

    /// This monitor's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }

    /// Registers a load-threshold trigger and this monitor's outcall on
    /// `host` — the §2.1 example: "initiate object migration if its load
    /// rises above a threshold".
    pub fn watch_load(&self, host: &Arc<dyn HostObject>, threshold: f64) -> TriggerId {
        let trigger = Trigger::new(
            Guard::attr_gt(legion_core::host::well_known::LOAD, threshold),
            EventKind::LoadThresholdExceeded,
        )
        .with_cooldown(SimDuration::from_secs(10));
        self.watch_with(host, trigger)
    }

    /// Registers an arbitrary trigger plus the outcall.
    pub fn watch_with(&self, host: &Arc<dyn HostObject>, trigger: Trigger) -> TriggerId {
        host.register_outcall(Arc::clone(&self.inbox) as Arc<dyn Outcall>);
        let id = host.register_trigger(trigger);
        self.watched.lock().push((host.loid(), id));
        id
    }

    /// Hosts currently watched (host, trigger) pairs.
    pub fn watched(&self) -> Vec<(Loid, TriggerId)> {
        self.watched.lock().clone()
    }

    /// Drains queued events in arrival order.
    pub fn drain_events(&self) -> Vec<Event> {
        let mut q = self.inbox.events.lock();
        q.drain(..).collect()
    }

    /// Number of undrained events.
    pub fn pending(&self) -> usize {
        self.inbox.events.lock().len()
    }
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}
