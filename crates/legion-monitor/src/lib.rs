//! The execution Monitor.
//!
//! "After the objects are running, the execution Monitor may request a
//! recomputation of the schedule, perhaps based on the progress of the
//! computation and the load on the hosts in the system." (§3) —
//! steps 12 and 13 of Fig. 3.
//!
//! "Using this \[RGE\] mechanism, the Monitor can register an outcall with
//! the Host Objects; this outcall will be performed when a trigger's
//! guard evaluates to true. There is no explicitly-defined interface for
//! this functionality ... In our actual implementation, we have no
//! separate monitor objects; the Enactor or Scheduler perform the
//! monitoring, with the outcall registered appropriately." (§3.5)
//!
//! Accordingly [`Monitor`] is an embeddable component, not a required
//! standalone object: it registers trigger outcalls, queues the events
//! they raise, and the [`Rebalancer`] — a monitoring Scheduler in the
//! paper's sense — reacts by migrating objects off overloaded hosts
//! using the OPR shutdown/move/reactivate sequence of §2.1.

pub mod migrate;
pub mod monitor;
pub mod rebalance;
pub mod watchdog;

pub use migrate::{
    migrate_object, migrate_object_with, MigrateDisposition, MigrateError, MigrateFailure,
    MigrationOutcome, MigrationRecord,
};
pub use monitor::Monitor;
pub use rebalance::{RebalanceConfig, Rebalancer, SweepReport};
pub use watchdog::{RestartRecord, Watchdog};
