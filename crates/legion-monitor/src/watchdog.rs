//! Crash detection and restart-from-OPR.
//!
//! A crashed host does not announce its failure — it simply stops
//! reporting: its reassessments raise no events and its liveness probes
//! go unanswered (a domain partition looks exactly the same from here).
//! The [`Watchdog`] is the Monitor-side response: it probes every
//! registered host each patrol, declares a host dead after a configured
//! number of consecutive misses, and then exercises the paper's
//! shutdown/restart guarantee — "the OPR is used for migration and for
//! shutdown/restart purposes" (§2.1) — by reactivating the dead host's
//! objects from their vault OPRs on live hosts.

use legion_core::{Loid, LoidKind, PlacementContext, SimTime, SpanKind, SpanOutcome, VaultDirectory};
use legion_fabric::{Fabric, MetricsLedger};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One object brought back from its OPR after a host was declared dead.
#[derive(Debug, Clone)]
pub struct RestartRecord {
    /// The recovered object.
    pub object: Loid,
    /// The host declared dead.
    pub from: Loid,
    /// The host it was reactivated on.
    pub to: Loid,
    /// The vault the OPR was fetched from.
    pub via_vault: Loid,
    /// When the restart completed.
    pub at: SimTime,
}

/// Monitor component that detects dead hosts and restarts their objects.
pub struct Watchdog {
    loid: Loid,
    fabric: Arc<Fabric>,
    /// Consecutive missed probes before a host is declared dead.
    misses_allowed: u32,
    misses: Mutex<BTreeMap<Loid, u32>>,
}

impl Watchdog {
    /// A watchdog declaring hosts dead after `misses_allowed`
    /// consecutive missed probes (at least 1).
    pub fn new(fabric: Arc<Fabric>, misses_allowed: u32) -> Self {
        Watchdog {
            loid: Loid::fresh(LoidKind::Service),
            fabric,
            misses_allowed: misses_allowed.max(1),
            misses: Mutex::new(BTreeMap::new()),
        }
    }

    /// This watchdog's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }

    /// Consecutive misses currently recorded against `host`.
    pub fn misses_for(&self, host: Loid) -> u32 {
        self.misses.lock().get(&host).copied().unwrap_or(0)
    }

    /// Whether `host` is currently considered dead.
    pub fn considers_dead(&self, host: Loid) -> bool {
        self.misses_for(host) >= self.misses_allowed
    }

    /// One monitoring round: probe every registered host, update miss
    /// counts, and restart the objects of newly-or-still dead hosts from
    /// their OPRs. Returns the restarts performed this round.
    ///
    /// A host behind a partition is indistinguishable from a crashed one
    /// and is recovered the same way — the Class's location records are
    /// the single authority on placement, so when the partition heals
    /// the stale replica is simply no longer referenced.
    ///
    /// The round is two-phase: *all* probes land and miss counters
    /// settle before any recovery runs. A flapping host that answered
    /// its probe this round is therefore immediately usable as a
    /// recovery candidate, whatever its position in registry order.
    /// Miss entries for hosts no longer registered are pruned, so a
    /// host that unregisters and later re-joins starts with a clean
    /// slate instead of inheriting a dead verdict.
    pub fn patrol(&self, now: SimTime) -> Vec<RestartRecord> {
        let registered = self.fabric.host_loids();
        let mut dead_hosts = Vec::new();
        {
            let mut misses = self.misses.lock();
            misses.retain(|h, _| registered.contains(h));
        }
        for &host_loid in &registered {
            let alive = self.probe(host_loid, now);
            let mut misses = self.misses.lock();
            if alive {
                misses.insert(host_loid, 0);
            } else {
                let m = misses.entry(host_loid).or_insert(0);
                *m = m.saturating_add(1);
                if *m >= self.misses_allowed {
                    dead_hosts.push(host_loid);
                }
            }
        }
        let mut restarts = Vec::new();
        for dead in dead_hosts {
            restarts.extend(self.recover_host(dead, now));
        }
        restarts
    }

    /// Whether the host answers a liveness probe over the network.
    fn probe(&self, host_loid: Loid, now: SimTime) -> bool {
        if self.fabric.link(self.loid, host_loid).is_err() {
            return false;
        }
        match self.fabric.lookup_host(host_loid) {
            Some(h) => h.probe(now).is_ok(),
            None => false,
        }
    }

    /// Restarts every object the Classes still place on `dead` from its
    /// OPR, on the first live host that accepts the reactivation.
    fn recover_host(&self, dead: Loid, now: SimTime) -> Vec<RestartRecord> {
        let mut records = Vec::new();
        let episode = self.fabric.tracer().begin_episode("recover", dead);
        episode.attr("host", dead.to_string());
        for class_loid in self.fabric.class_loids() {
            let Some(class) = self.fabric.lookup_class(class_loid) else { continue };
            for (instance, placed_on) in class.instances() {
                if placed_on != dead {
                    continue;
                }
                // Locate the OPR: any vault still holding passive state
                // for this object. Vault loss makes the object
                // unrecoverable — it stays stranded on the dead host's
                // record and is reported by omission.
                let Some(vault_loid) = self.fabric.vault_loids().into_iter().find(|&v| {
                    self.fabric.lookup_vault(v).is_some_and(|vault| vault.holds(instance))
                }) else {
                    continue;
                };
                let Some(vault) = self.fabric.lookup_vault(vault_loid) else { continue };
                let Ok(opr) = vault.fetch_opr(instance) else { continue };

                let span = self.fabric.tracer().span(SpanKind::RestartFromOpr);
                span.attr("object", instance.to_string());
                span.attr("from", dead.to_string());
                span.attr("vault", vault_loid.to_string());
                let mut restarted = false;

                // First live host that accepts the reactivation wins.
                // If a candidate cannot reach the holding vault, the OPR
                // is copied into one it can reach (delete-after-success,
                // so the passive state is never lost mid-recovery).
                for candidate in self.fabric.host_loids() {
                    if candidate == dead || self.considers_dead(candidate) {
                        continue;
                    }
                    let Some(host) = self.fabric.lookup_host(candidate) else { continue };
                    if self.fabric.link(self.loid, candidate).is_err() {
                        continue;
                    }
                    let reachable = host.get_compatible_vaults();
                    let via = if reachable.contains(&vault_loid) {
                        vault_loid
                    } else {
                        let Some(&target) = reachable.first() else { continue };
                        let Some(dst_vault) = self.fabric.lookup_vault(target) else {
                            continue;
                        };
                        if self.fabric.link(vault_loid, target).is_err() {
                            continue;
                        }
                        if dst_vault.store_opr(opr.clone()).is_err() {
                            continue;
                        }
                        target
                    };
                    if host.reactivate_object(&opr, now).is_ok() {
                        if via != vault_loid {
                            let _ = vault.delete_opr(instance);
                        }
                        class.note_instance_location(instance, candidate);
                        MetricsLedger::bump(&self.fabric.metrics().monitor_restarts);
                        span.attr("to", candidate.to_string());
                        span.attr("via", via.to_string());
                        restarted = true;
                        records.push(RestartRecord {
                            object: instance,
                            from: dead,
                            to: candidate,
                            via_vault: via,
                            at: now,
                        });
                        break;
                    } else if via != vault_loid {
                        if let Some(dv) = self.fabric.lookup_vault(via) {
                            let _ = dv.delete_opr(instance);
                        }
                    }
                }
                if restarted {
                    span.end_ok();
                } else {
                    span.end_with(SpanOutcome::ResourceUnavailable);
                }
            }
        }
        episode.attr("restarted", records.len() as i64);
        episode.end_with(SpanOutcome::Ok);
        records
    }
}
