//! Trigger-driven rescheduling — the Monitor closing the loop.
//!
//! "If, during execution, a resource decides that the object needs to be
//! migrated, it performs an outcall to a Monitor, which notifies the
//! Scheduler and Enactor that rescheduling should be performed
//! (optional steps 12 and 13)." (§3)
//!
//! [`Rebalancer`] is the simplest useful such Scheduler: on a
//! load-threshold event it migrates one object off the overloaded host
//! onto the least-loaded host that can take it.

use crate::migrate::{migrate_object, MigrationRecord};
use crate::monitor::Monitor;
use legion_core::host::well_known;
use legion_core::{EventKind, Loid, PlacementContext};
use legion_fabric::Fabric;
use std::sync::Arc;

/// Reacts to monitor events by migrating load away.
pub struct Rebalancer {
    fabric: Arc<Fabric>,
    monitor: Monitor,
    /// Do not migrate onto hosts above this load.
    pub target_load_ceiling: f64,
}

impl Rebalancer {
    /// A rebalancer owning its monitor.
    pub fn new(fabric: Arc<Fabric>) -> Self {
        Rebalancer { fabric, monitor: Monitor::new(), target_load_ceiling: 0.75 }
    }

    /// The embedded monitor (to register watches).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Watches every currently registered host at `threshold` load.
    pub fn watch_all(&self, threshold: f64) {
        for hl in self.fabric.host_loids() {
            if let Some(host) = self.fabric.lookup_host(hl) {
                self.monitor.watch_load(&host, threshold);
            }
        }
    }

    /// Drains events and performs migrations. Returns the migrations
    /// that completed this round.
    ///
    /// Two event kinds are handled: a `LoadThresholdExceeded` moves one
    /// object off the overloaded host per round (gentle rebalancing),
    /// while a `HostShutdown` drains *every* resident object — the host
    /// is going away.
    pub fn rebalance_once(&self) -> Vec<MigrationRecord> {
        let mut done = Vec::new();
        for event in self.monitor.drain_events() {
            let source = event.source;
            match event.kind {
                EventKind::LoadThresholdExceeded => {
                    let Some(src) = self.fabric.lookup_host(source) else { continue };
                    // Pick a victim: any running object (the first is
                    // fine for the default policy).
                    let Some(victim) = src.running_objects().into_iter().next() else {
                        continue;
                    };
                    let Some(target) = self.pick_target(source) else { continue };
                    if let Ok(rec) = migrate_object(&self.fabric, victim, source, target) {
                        done.push(rec);
                    }
                }
                EventKind::HostShutdown => {
                    let Some(src) = self.fabric.lookup_host(source) else { continue };
                    for victim in src.running_objects() {
                        let Some(target) = self.pick_target(source) else { break };
                        if let Ok(rec) = migrate_object(&self.fabric, victim, source, target)
                        {
                            done.push(rec);
                        }
                    }
                }
                _ => {}
            }
        }
        done
    }

    fn pick_target(&self, exclude: Loid) -> Option<Loid> {
        let mut best: Option<(f64, Loid)> = None;
        for hl in self.fabric.host_loids() {
            if hl == exclude {
                continue;
            }
            let Some(h) = self.fabric.lookup_host(hl) else { continue };
            if h.get_compatible_vaults().is_empty() {
                continue;
            }
            let attrs = h.attributes();
            // Never migrate onto a host that is itself draining.
            if attrs.get_bool("host_draining").unwrap_or(false) {
                continue;
            }
            let load = attrs.get_f64(well_known::LOAD).unwrap_or(f64::MAX);
            if load > self.target_load_ceiling {
                continue;
            }
            match best {
                Some((b, _)) if b <= load => {}
                _ => best = Some((load, hl)),
            }
        }
        best.map(|(_, h)| h)
    }
}
