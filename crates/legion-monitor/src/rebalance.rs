//! Trigger-driven rescheduling and the closed-loop rebalance sweep —
//! the Monitor closing the loop.
//!
//! "If, during execution, a resource decides that the object needs to be
//! migrated, it performs an outcall to a Monitor, which notifies the
//! Scheduler and Enactor that rescheduling should be performed
//! (optional steps 12 and 13)." (§3)
//!
//! Two loops live here. The *event-driven* loop is the simplest useful
//! Scheduler: on a load-threshold outcall it migrates one object off the
//! overloaded host. The *closed* loop ([`Rebalancer::sweep`]) is the
//! system-wide health pass: it reads live load from Collection records
//! (TTL-aware — stale data is counted, not trusted), detects hotspots
//! with hysteresis relative to the population mean (enter/exit ratios,
//! so a host on the boundary never thrashes), plans migrations under a
//! per-sweep budget, executes them through the admission-first
//! [`migrate_object_with`] sequence (walking alternate targets on
//! target-side refusals), and checks convergence of the max/mean load
//! ratio. Every sweep is one traced episode with
//! `detect → plan → migrate → converge` spans.

use crate::migrate::{migrate_object, migrate_object_with, MigrateError, MigrationRecord};
use crate::monitor::Monitor;
use legion_collection::Collection;
use legion_core::host::well_known;
use legion_core::{
    EpisodeId, EventKind, Loid, LoidKind, PlacementContext, SimDuration, SimTime, SpanKind,
    SpanOutcome,
};
use legion_fabric::{Fabric, MetricsLedger};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Closed-loop sweep policy. Thresholds are *ratios to the population
/// mean load*, so the policy is scale-free: a host is a hotspot because
/// it is loaded relative to its peers, not against a magic constant.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// A host enters the hotspot set when its load reaches
    /// `enter_ratio x mean` (hysteresis upper bound).
    pub enter_ratio: f64,
    /// A hotspot leaves the set when its load falls to
    /// `exit_ratio x mean` (hysteresis lower bound; must be below
    /// `enter_ratio`). Convergence is max load at or below this line.
    pub exit_ratio: f64,
    /// Absolute load below which a host is never a hotspot, however
    /// idle the rest of the population is (guards the ratio against a
    /// near-zero mean).
    pub load_floor: f64,
    /// Migrations planned per sweep, across all hotspots.
    pub budget_per_sweep: usize,
    /// Collection records older than this are not trusted as planning
    /// input (the TTL-aware source selection).
    pub stale_ttl: SimDuration,
    /// Fallback targets tried, in load order, when the planned target
    /// refuses or dies mid-migration.
    pub alternates: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enter_ratio: 1.6,
            exit_ratio: 1.25,
            load_floor: 0.5,
            budget_per_sweep: 4,
            stale_ttl: SimDuration::from_secs(90),
            alternates: 2,
        }
    }
}

impl RebalanceConfig {
    /// The hysteresis upper bound for a given population mean.
    fn enter_at(&self, mean: f64) -> f64 {
        (self.enter_ratio * mean).max(self.load_floor)
    }

    /// The hysteresis lower bound (and convergence line) for a mean.
    fn exit_at(&self, mean: f64) -> f64 {
        (self.exit_ratio * mean).max(self.load_floor)
    }
}

/// One planned migration: victim, source, primary target, fallbacks.
#[derive(Debug, Clone)]
struct PlannedMigration {
    object: Loid,
    from: Loid,
    to: Loid,
    alternates: Vec<Loid>,
}

/// What one closed-loop sweep saw and did.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The traced episode covering this sweep (None when tracing is
    /// disabled or no collection is attached).
    pub episode: Option<EpisodeId>,
    /// Hosts with fresh, trusted Collection records this sweep.
    pub hosts_seen: usize,
    /// Records skipped as older than the staleness TTL.
    pub stale_records: usize,
    /// The hotspot set after the hysteresis update.
    pub hotspots: Vec<Loid>,
    /// Migrations planned (bounded by the per-sweep budget).
    pub planned: usize,
    /// Migrations that completed (including re-homes).
    pub completed: Vec<MigrationRecord>,
    /// Migrations that failed, with their typed causes.
    pub failed: Vec<(Loid, MigrateError)>,
    /// Maximum live host load at the convergence check.
    pub max_load: f64,
    /// Mean live host load at the convergence check.
    pub mean_load: f64,
    /// Whether max load sits at or below the exit line.
    pub converged: bool,
}

impl SweepReport {
    fn empty() -> Self {
        SweepReport {
            episode: None,
            hosts_seen: 0,
            stale_records: 0,
            hotspots: Vec::new(),
            planned: 0,
            completed: Vec::new(),
            failed: Vec::new(),
            max_load: 0.0,
            mean_load: 0.0,
            converged: true,
        }
    }
}

/// Reacts to monitor events by migrating load away, and (when built
/// with [`Rebalancer::closed_loop`]) runs budgeted, traced rebalance
/// sweeps against Collection data.
pub struct Rebalancer {
    loid: Loid,
    fabric: Arc<Fabric>,
    monitor: Monitor,
    collection: Option<Arc<Collection>>,
    config: RebalanceConfig,
    /// Hotspot membership carried between sweeps (the hysteresis state).
    hot: Mutex<BTreeSet<Loid>>,
    /// Do not migrate onto hosts above this load (event-driven path).
    pub target_load_ceiling: f64,
}

impl Rebalancer {
    /// An event-driven rebalancer owning its monitor.
    pub fn new(fabric: Arc<Fabric>) -> Self {
        Rebalancer {
            loid: Loid::fresh(LoidKind::Service),
            fabric,
            monitor: Monitor::new(),
            collection: None,
            config: RebalanceConfig::default(),
            hot: Mutex::new(BTreeSet::new()),
            target_load_ceiling: 0.75,
        }
    }

    /// A closed-loop rebalancer sweeping `collection` under `config`.
    /// The event-driven API stays available alongside.
    pub fn closed_loop(
        fabric: Arc<Fabric>,
        collection: Arc<Collection>,
        config: RebalanceConfig,
    ) -> Self {
        let mut rb = Rebalancer::new(fabric);
        rb.collection = Some(collection);
        rb.config = config;
        rb
    }

    /// This rebalancer's identifier (the monitor-side endpoint of its
    /// probe and migration traffic).
    pub fn loid(&self) -> Loid {
        self.loid
    }

    /// The sweep policy in force.
    pub fn config(&self) -> &RebalanceConfig {
        &self.config
    }

    /// The embedded monitor (to register watches).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Hosts currently in the hotspot set.
    pub fn hotspots(&self) -> Vec<Loid> {
        self.hot.lock().iter().copied().collect()
    }

    /// Watches every currently registered host at `threshold` load.
    pub fn watch_all(&self, threshold: f64) {
        for hl in self.fabric.host_loids() {
            if let Some(host) = self.fabric.lookup_host(hl) {
                self.monitor.watch_load(&host, threshold);
            }
        }
    }

    /// Drains events and performs migrations. Returns the migrations
    /// that completed this round.
    ///
    /// Two event kinds are handled: a `LoadThresholdExceeded` moves one
    /// object off the overloaded host per round (gentle rebalancing),
    /// while a `HostShutdown` drains *every* resident object — the host
    /// is going away.
    pub fn rebalance_once(&self) -> Vec<MigrationRecord> {
        let mut done = Vec::new();
        for event in self.monitor.drain_events() {
            let source = event.source;
            match event.kind {
                EventKind::LoadThresholdExceeded => {
                    let Some(src) = self.fabric.lookup_host(source) else { continue };
                    // Pick a victim: any running object (the first is
                    // fine for the default policy).
                    let Some(victim) = src.running_objects().into_iter().next() else {
                        continue;
                    };
                    let Some(target) = self.pick_target(source) else { continue };
                    if let Ok(rec) = migrate_object(&self.fabric, victim, source, target) {
                        done.push(rec);
                    }
                }
                EventKind::HostShutdown => {
                    let Some(src) = self.fabric.lookup_host(source) else { continue };
                    for victim in src.running_objects() {
                        let Some(target) = self.pick_target(source) else { break };
                        if let Ok(rec) = migrate_object(&self.fabric, victim, source, target)
                        {
                            done.push(rec);
                        }
                    }
                }
                _ => {}
            }
        }
        done
    }

    /// One closed-loop sweep: detect hotspots from fresh Collection
    /// records, plan migrations under the budget, execute them with
    /// alternate-target fallback, then check convergence. Each stage is
    /// a traced span inside one `rebalance` episode.
    ///
    /// Degrades gracefully everywhere: stale records are skipped (and
    /// counted), unreachable sources are left for the next sweep, dead
    /// targets fall through to alternates, and a sweep with nothing to
    /// do is just a detect + converge pair.
    pub fn sweep(&self, now: SimTime) -> SweepReport {
        let Some(collection) = self.collection.clone() else {
            return SweepReport::empty();
        };
        MetricsLedger::bump(&self.fabric.metrics().rebalance_sweeps);
        let tracer = Arc::clone(self.fabric.tracer());
        let episode = tracer.begin_episode("rebalance", self.loid);
        let mut report = SweepReport::empty();
        report.episode = episode.id();

        // --- detect: trusted loads + hysteresis update ---------------
        let detect = tracer.span(SpanKind::RebalanceDetect);
        let mut loads: BTreeMap<Loid, f64> = BTreeMap::new();
        let mut draining: BTreeSet<Loid> = BTreeSet::new();
        let (fresh, stale) = collection.fresh_records(now, self.config.stale_ttl);
        report.stale_records = stale;
        for rec in fresh {
            // Only currently registered hosts are planning input.
            if self.fabric.lookup_host(rec.member).is_none() {
                continue;
            }
            let Some(load) = rec.attrs.get_f64(well_known::LOAD) else { continue };
            if rec.attrs.get_bool("host_draining").unwrap_or(false) {
                draining.insert(rec.member);
            }
            loads.insert(rec.member, load);
        }
        report.hosts_seen = loads.len();
        let mean = if loads.is_empty() {
            0.0
        } else {
            loads.values().sum::<f64>() / loads.len() as f64
        };
        let (enter, exit) = (self.config.enter_at(mean), self.config.exit_at(mean));
        {
            let mut hot = self.hot.lock();
            hot.retain(|h| loads.contains_key(h));
            for (&h, &load) in &loads {
                if load >= enter {
                    hot.insert(h);
                } else if load <= exit {
                    hot.remove(&h);
                }
                // Between exit and enter: membership is sticky — the
                // hysteresis band that stops threshold thrashing.
            }
            report.hotspots = hot.iter().copied().collect();
        }
        detect.attr("hosts", loads.len() as i64);
        detect.attr("stale", stale as i64);
        detect.attr("hotspots", report.hotspots.len() as i64);
        detect.attr("mean_load", mean);
        detect.attr("enter_at", enter);
        detect.attr("exit_at", exit);
        detect.end_ok();

        // --- plan: budgeted victim/target selection ------------------
        let plan = tracer.span(SpanKind::RebalancePlan);
        let planned = self.plan_migrations(&loads, &draining, &report.hotspots, mean);
        report.planned = planned.len();
        plan.attr("planned", planned.len() as i64);
        plan.attr("budget", self.config.budget_per_sweep as i64);
        plan.end_with(if planned.len() < report.hotspots.len() && !report.hotspots.is_empty() {
            // Some hotspot got no relief this sweep (unreachable, no
            // victims, or no willing target) — re-planned next sweep.
            SpanOutcome::ResourceUnavailable
        } else {
            SpanOutcome::Ok
        });

        // --- migrate: execute with alternate-target fallback ---------
        for p in planned {
            let span = tracer.span(SpanKind::RebalanceMigrate);
            span.attr("object", p.object.to_string());
            span.attr("from", p.from.to_string());
            span.attr("to", p.to.to_string());
            let mut targets = std::iter::once(p.to).chain(p.alternates.iter().copied());
            let mut attempts = 0i64;
            let outcome = loop {
                let Some(target) = targets.next() else {
                    break None;
                };
                attempts += 1;
                // Later alternates double as re-home candidates should
                // the source die while the object is in flight.
                let rehome: Vec<Loid> =
                    p.alternates.iter().copied().filter(|&a| a != target).collect();
                match migrate_object_with(&self.fabric, p.object, p.from, target, &rehome) {
                    Ok(rec) => break Some(Ok(rec)),
                    Err(e) => {
                        if e.wasted_work() {
                            MetricsLedger::bump(&self.fabric.metrics().rebalance_rollbacks);
                        }
                        if e.target_side() {
                            continue; // next alternate
                        }
                        break Some(Err(e));
                    }
                }
            };
            span.attr("attempts", attempts);
            match outcome {
                Some(Ok(rec)) => {
                    span.attr("landed_on", rec.to.to_string());
                    span.end_ok();
                    report.completed.push(rec);
                }
                Some(Err(e)) => {
                    span.attr("failure", e.to_string());
                    span.end_with(e.span_outcome());
                    report.failed.push((p.object, e));
                }
                None => {
                    // Every target refused; the object stays put.
                    span.end_with(SpanOutcome::ResourceUnavailable);
                }
            }
        }

        // --- converge: post-migration max/mean check -----------------
        let converge = tracer.span(SpanKind::RebalanceConverge);
        let mut live = Vec::new();
        for hl in self.fabric.host_loids() {
            let Some(h) = self.fabric.lookup_host(hl) else { continue };
            if h.is_crashed() {
                continue;
            }
            if let Some(load) = h.attributes().get_f64(well_known::LOAD) {
                live.push(load);
            }
        }
        let (max_load, mean_load) = if live.is_empty() {
            (0.0, 0.0)
        } else {
            (live.iter().cloned().fold(f64::MIN, f64::max), live.iter().sum::<f64>() / live.len() as f64)
        };
        report.max_load = max_load;
        report.mean_load = mean_load;
        report.converged = max_load <= self.config.exit_at(mean_load);
        converge.attr("max_load", max_load);
        converge.attr("mean_load", mean_load);
        converge.attr("converged", report.converged);
        converge.end_with(if report.converged {
            SpanOutcome::Ok
        } else {
            SpanOutcome::ResourceUnavailable
        });

        episode.attr("planned", report.planned as i64);
        episode.attr("completed", report.completed.len() as i64);
        episode.attr("failed", report.failed.len() as i64);
        episode.attr("converged", report.converged);
        episode.end_with(SpanOutcome::Ok);
        report
    }

    /// Victim/target selection under the sweep budget. Works on
    /// *projected* loads so one sweep's plans do not stack onto the
    /// same target, and never plans a migration that would push the
    /// target over the hysteresis entry line.
    fn plan_migrations(
        &self,
        loads: &BTreeMap<Loid, f64>,
        draining: &BTreeSet<Loid>,
        hotspots: &[Loid],
        mean: f64,
    ) -> Vec<PlannedMigration> {
        let mut planned = Vec::new();
        if hotspots.is_empty() || loads.len() < 2 {
            return planned;
        }
        let enter = self.config.enter_at(mean);
        let exit = self.config.exit_at(mean);
        let mut projected = loads.clone();
        let mut budget = self.config.budget_per_sweep;

        // Hottest first.
        let mut order: Vec<Loid> = hotspots.to_vec();
        order.sort_by(|a, b| {
            let (la, lb) = (loads.get(a).unwrap_or(&0.0), loads.get(b).unwrap_or(&0.0));
            lb.partial_cmp(la).unwrap_or(std::cmp::Ordering::Equal)
        });

        for &src in &order {
            if budget == 0 {
                break;
            }
            // A partitioned or otherwise unreachable source cannot be
            // drained this sweep — degrade gracefully, re-plan next.
            if self.fabric.link(self.loid, src).is_err() {
                continue;
            }
            let Some(src_host) = self.fabric.lookup_host(src) else { continue };
            let victims = src_host.running_objects();
            for victim in victims {
                if budget == 0 {
                    break;
                }
                if projected.get(&src).copied().unwrap_or(0.0) <= exit {
                    break; // this hotspot is projected back under the line
                }
                // The victim's demand comes off its vault checkpoint.
                let Some(cost) = self.victim_cost(victim) else { continue };
                // Candidate targets by projected load, coolest first.
                let mut candidates: Vec<(f64, Loid)> = projected
                    .iter()
                    .filter(|&(&h, &load)| {
                        h != src
                            && !draining.contains(&h)
                            && !hotspots.contains(&h)
                            && load + cost < enter
                            && self
                                .fabric
                                .lookup_host(h)
                                .is_some_and(|host| !host.get_compatible_vaults().is_empty())
                    })
                    .map(|(&h, &load)| (load, h))
                    .collect();
                candidates
                    .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                let Some(&(tload, target)) = candidates.first() else { continue };
                let alternates: Vec<Loid> = candidates
                    .iter()
                    .skip(1)
                    .take(self.config.alternates)
                    .map(|&(_, h)| h)
                    .collect();
                planned.push(PlannedMigration { object: victim, from: src, to: target, alternates });
                *projected.entry(src).or_insert(0.0) -= cost;
                projected.insert(target, tload + cost);
                budget -= 1;
            }
        }
        planned
    }

    /// The load a victim adds to whichever host runs it, read from its
    /// checkpointed OPR (no need to disturb the running instance).
    fn victim_cost(&self, object: Loid) -> Option<f64> {
        use legion_core::VaultDirectory;
        let vault = self
            .fabric
            .vault_loids()
            .into_iter()
            .find(|&v| self.fabric.lookup_vault(v).is_some_and(|vault| vault.holds(object)))?;
        let opr = self.fabric.lookup_vault(vault)?.fetch_opr(object).ok()?;
        Some(opr.cpu_centis as f64 / 100.0)
    }

    fn pick_target(&self, exclude: Loid) -> Option<Loid> {
        let mut best: Option<(f64, Loid)> = None;
        for hl in self.fabric.host_loids() {
            if hl == exclude {
                continue;
            }
            let Some(h) = self.fabric.lookup_host(hl) else { continue };
            if h.get_compatible_vaults().is_empty() {
                continue;
            }
            let attrs = h.attributes();
            // Never migrate onto a host that is itself draining.
            if attrs.get_bool("host_draining").unwrap_or(false) {
                continue;
            }
            let load = attrs.get_f64(well_known::LOAD).unwrap_or(f64::MAX);
            if load > self.target_load_ceiling {
                continue;
            }
            match best {
                Some((b, _)) if b <= load => {}
                _ => best = Some((load, hl)),
            }
        }
        best.map(|(_, h)| h)
    }
}
