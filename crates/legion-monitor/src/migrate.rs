//! Object migration via the OPR sequence.
//!
//! "All Legion objects automatically support shutdown and restart, and
//! therefore any active object can be migrated by shutting it down,
//! moving the passive state to a new Vault if necessary, and activating
//! the object on another host." (§2.1)

use legion_core::{LegionError, Loid, PlacementContext, SimTime, VaultDirectory};
use legion_fabric::{Fabric, MetricsLedger};
use std::sync::Arc;

/// A completed migration, for experiment bookkeeping.
#[derive(Debug, Clone)]
pub struct MigrationRecord {
    /// The migrated object.
    pub object: Loid,
    /// Source host.
    pub from: Loid,
    /// Destination host.
    pub to: Loid,
    /// Vault holding the OPR at reactivation.
    pub via_vault: Loid,
    /// When the migration completed.
    pub completed_at: SimTime,
    /// Bytes of passive state moved.
    pub opr_bytes: usize,
}

/// Migrates `object` from `from` to `to`.
///
/// The sequence is exactly the paper's: (1) deactivate on the source —
/// the host serializes the object into its vault as an OPR; (2) if the
/// destination cannot reach that vault, move the OPR to a vault it can
/// reach; (3) reactivate on the destination; (4) tell the Class, the
/// final authority on its instances' placement, about the new location.
///
/// On reactivation failure the OPR is restored to the source host so the
/// object is never lost.
pub fn migrate_object(
    fabric: &Arc<Fabric>,
    object: Loid,
    from: Loid,
    to: Loid,
) -> Result<MigrationRecord, LegionError> {
    let src = fabric.lookup_host(from).ok_or(LegionError::NoSuchHost(from))?;
    let dst = fabric.lookup_host(to).ok_or(LegionError::NoSuchHost(to))?;
    let now = fabric.clock().now();

    // (1) Shut down: passive state lands in the source host's vault.
    fabric.link(from, to)?;
    let opr = src.deactivate_object(object, now)?;

    // (2) Move the OPR if the destination cannot reach its current
    // vault. The OPR is wherever the source host stored it — find it.
    let holding_vault = fabric
        .vault_loids()
        .into_iter()
        .find(|&v| {
            fabric.lookup_vault(v).is_some_and(|vault| vault.holds(object))
        })
        .ok_or(LegionError::NoSuchOpr(object))?;

    let dst_vaults = dst.get_compatible_vaults();
    let via_vault = if dst_vaults.contains(&holding_vault) {
        holding_vault
    } else {
        let target_vault_loid = *dst_vaults
            .first()
            .ok_or(LegionError::NoSuchVault(to))?;
        let src_vault = fabric
            .lookup_vault(holding_vault)
            .ok_or(LegionError::NoSuchVault(holding_vault))?;
        let dst_vault = fabric
            .lookup_vault(target_vault_loid)
            .ok_or(LegionError::NoSuchVault(target_vault_loid))?;
        fabric.link(holding_vault, target_vault_loid)?;
        dst_vault.store_opr(src_vault.fetch_opr(object)?)?;
        src_vault.delete_opr(object)?;
        target_vault_loid
    };

    // (3) Reactivate on the destination.
    let now = fabric.clock().now();
    if let Err(e) = dst.reactivate_object(&opr, now) {
        // Roll back: bring the object home so it is never lost.
        if via_vault != holding_vault {
            // Move the OPR back within the source's reach first.
            if let (Some(sv), Some(dv)) =
                (fabric.lookup_vault(holding_vault), fabric.lookup_vault(via_vault))
            {
                if let Ok(o) = dv.fetch_opr(object) {
                    let _ = sv.store_opr(o);
                    let _ = dv.delete_opr(object);
                }
            }
        }
        let _ = src.reactivate_object(&opr, now);
        return Err(e);
    }

    // (4) The Class is the final authority on placement — tell it.
    if let Some(class) = fabric.lookup_class(opr.class) {
        class.note_instance_location(object, to);
    }

    MetricsLedger::bump(&fabric.metrics().migrations);
    Ok(MigrationRecord {
        object,
        from,
        to,
        via_vault,
        completed_at: fabric.clock().now(),
        opr_bytes: opr.size_bytes(),
    })
}
