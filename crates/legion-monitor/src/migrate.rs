//! Object migration via the OPR sequence.
//!
//! "All Legion objects automatically support shutdown and restart, and
//! therefore any active object can be migrated by shutting it down,
//! moving the passive state to a new Vault if necessary, and activating
//! the object on another host." (§2.1)
//!
//! Migration is admission-first: before the object is disturbed, the
//! destination host arbitrates a reservation for the object's demand
//! (read off its vault checkpoint), exactly as the Enactor negotiates
//! placements. A refusal therefore costs nothing — the object never
//! stops running. Failures after deactivation roll the object back to
//! its source, or — when the source died mid-flight — re-home it on a
//! caller-supplied alternate; if every live option is gone the OPR
//! stays safely in its vault for the Watchdog to recover.

use legion_core::{
    LegionError, Loid, Opr, PlacementContext, ReservationRequest, SimDuration, SimTime,
    SpanOutcome, VaultDirectory,
};
use legion_fabric::{Fabric, MetricsLedger};
use legion_schedule::FailureClass;
use std::fmt;
use std::sync::Arc;

/// How long the admission reservation guards the target's capacity. It
/// is cancelled as soon as reactivation completes (or fails), so the
/// duration only matters if the cancel itself is lost to a crash.
fn admission_hold() -> SimDuration {
    SimDuration::from_secs(600)
}

/// How a completed migration ended up where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// The object landed on the planned target.
    Completed,
    /// The planned target failed mid-flight and the source was gone
    /// too; the object was reactivated on an alternate host instead.
    ReHomed {
        /// The target the migration was planned for.
        planned: Loid,
    },
}

/// A completed migration, for experiment bookkeeping.
#[derive(Debug, Clone)]
pub struct MigrationRecord {
    /// The migrated object.
    pub object: Loid,
    /// Source host.
    pub from: Loid,
    /// Destination host (the host actually running the object now).
    pub to: Loid,
    /// Vault holding the OPR at reactivation.
    pub via_vault: Loid,
    /// When the migration completed.
    pub completed_at: SimTime,
    /// Bytes of passive state moved.
    pub opr_bytes: usize,
    /// How the object got to `to`.
    pub outcome: MigrationOutcome,
}

/// Why a migration failed — the Enactor's [`FailureClass`] vocabulary
/// specialised to the migration sequence, so monitor policy can react
/// per cause (walk alternates on a refused target, leave a dead source
/// to the Watchdog, and so on).
#[derive(Debug, Clone)]
pub enum MigrateFailure {
    /// The source host is down, unknown, or unreachable.
    SourceDown(Loid),
    /// The target host is down, unknown, or unreachable.
    TargetDown(Loid),
    /// No vault holds passive state for the object (lost vault, or the
    /// object never checkpointed) — migration cannot even start.
    OprMissing(Loid),
    /// The target arbitrated the admission reservation and said no.
    ReservationRefused {
        /// The refusing host.
        host: Loid,
        /// The refusal as raised by the host.
        error: LegionError,
    },
    /// Vault or network infrastructure failed mid-sequence.
    Infrastructure(LegionError),
}

/// Where the object is after a failed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateDisposition {
    /// Still running on the source: the migration was refused before
    /// the object was disturbed.
    Untouched,
    /// Deactivated and then reactivated back on the source — the
    /// round trip was wasted work, but nothing was lost.
    RolledBack,
    /// Both target and source failed mid-flight: the object is passive
    /// in this vault, intact, awaiting Watchdog recovery.
    StrandedInVault(Loid),
}

/// A failed migration: the cause plus where the object ended up.
#[derive(Debug, Clone)]
pub struct MigrateError {
    /// What went wrong.
    pub failure: MigrateFailure,
    /// Where the object is now.
    pub disposition: MigrateDisposition,
}

impl MigrateError {
    fn untouched(failure: MigrateFailure) -> Self {
        MigrateError { failure, disposition: MigrateDisposition::Untouched }
    }

    /// The Enactor's failure classification for this cause.
    pub fn failure_class(&self) -> FailureClass {
        match &self.failure {
            MigrateFailure::SourceDown(_) | MigrateFailure::TargetDown(_) => {
                FailureClass::HostDown
            }
            MigrateFailure::OprMissing(_) => FailureClass::Infrastructure,
            MigrateFailure::ReservationRefused { .. } => FailureClass::ResourceUnavailable,
            MigrateFailure::Infrastructure(e) => FailureClass::classify(e),
        }
    }

    /// Whether retrying (same or different target) could help.
    pub fn is_transient(&self) -> bool {
        self.failure_class().is_transient()
    }

    /// Whether an alternate target is worth trying right now: the
    /// *target* side failed while the object stayed on (or was restored
    /// to) its source.
    pub fn target_side(&self) -> bool {
        matches!(
            self.failure,
            MigrateFailure::TargetDown(_) | MigrateFailure::ReservationRefused { .. }
        ) && !matches!(self.disposition, MigrateDisposition::StrandedInVault(_))
    }

    /// Whether the object took a wasted deactivate/reactivate round
    /// trip (or worse) — anything beyond an up-front refusal.
    pub fn wasted_work(&self) -> bool {
        !matches!(self.disposition, MigrateDisposition::Untouched)
    }

    /// The trace outcome this failure maps to.
    pub fn span_outcome(&self) -> SpanOutcome {
        self.failure_class().span_outcome()
    }
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            MigrateFailure::SourceDown(h) => write!(f, "source host {h} down")?,
            MigrateFailure::TargetDown(h) => write!(f, "target host {h} down")?,
            MigrateFailure::OprMissing(o) => write!(f, "no vault holds an OPR for {o}")?,
            MigrateFailure::ReservationRefused { host, error } => {
                write!(f, "host {host} refused the admission reservation: {error}")?
            }
            MigrateFailure::Infrastructure(e) => write!(f, "infrastructure failure: {e}")?,
        }
        match self.disposition {
            MigrateDisposition::Untouched => write!(f, " (object untouched on source)"),
            MigrateDisposition::RolledBack => write!(f, " (object rolled back to source)"),
            MigrateDisposition::StrandedInVault(v) => {
                write!(f, " (object passive in vault {v}, awaiting recovery)")
            }
        }
    }
}

impl std::error::Error for MigrateError {}

/// Migrates `object` from `from` to `to`. See [`migrate_object_with`];
/// this form carries no re-home alternates.
pub fn migrate_object(
    fabric: &Arc<Fabric>,
    object: Loid,
    from: Loid,
    to: Loid,
) -> Result<MigrationRecord, MigrateError> {
    migrate_object_with(fabric, object, from, to, &[])
}

/// Migrates `object` from `from` to `to`, with `rehome` as fallback
/// hosts should the *source* vanish mid-flight.
///
/// The sequence is the paper's, guarded: (0) the destination arbitrates
/// an admission reservation for the object's checkpointed demand — a
/// refusal leaves the object untouched; (1) deactivate on the source —
/// the host serializes the object into its vault as an OPR; (2) if the
/// destination cannot reach that vault, move the OPR to a vault it can
/// reach; (3) reactivate on the destination; (4) tell the Class, the
/// final authority on its instances' placement, about the new location.
///
/// On reactivation failure the object is rolled back to the source; if
/// the source has meanwhile died, each `rehome` host is tried in order
/// (a success returns `Ok` with [`MigrationOutcome::ReHomed`]); if all
/// of that fails the OPR stays in its vault — recoverable, never lost,
/// never duplicated.
pub fn migrate_object_with(
    fabric: &Arc<Fabric>,
    object: Loid,
    from: Loid,
    to: Loid,
    rehome: &[Loid],
) -> Result<MigrationRecord, MigrateError> {
    let src = fabric
        .lookup_host(from)
        .ok_or_else(|| MigrateError::untouched(MigrateFailure::SourceDown(from)))?;
    let dst = fabric
        .lookup_host(to)
        .ok_or_else(|| MigrateError::untouched(MigrateFailure::TargetDown(to)))?;

    // The object's passive state — its birth (or latest) checkpoint —
    // tells us its demand without disturbing it, and proves a vault is
    // reachable at all before anything irreversible happens.
    let holding_vault = fabric
        .vault_loids()
        .into_iter()
        .find(|&v| fabric.lookup_vault(v).is_some_and(|vault| vault.holds(object)))
        .ok_or_else(|| MigrateError::untouched(MigrateFailure::OprMissing(object)))?;
    let checkpoint = fabric
        .lookup_vault(holding_vault)
        .and_then(|v| v.fetch_opr(object).ok())
        .ok_or_else(|| MigrateError::untouched(MigrateFailure::OprMissing(object)))?;

    // Decide which vault the destination will reactivate from.
    let dst_vaults = dst.get_compatible_vaults();
    let via_vault = if dst_vaults.contains(&holding_vault) {
        holding_vault
    } else {
        *dst_vaults
            .first()
            .ok_or_else(|| MigrateError::untouched(MigrateFailure::TargetDown(to)))?
    };

    // (0) Admission: the destination is an autonomous arbiter — ask it
    // first. The object keeps running while it decides. An unreachable
    // host and a dead host are indistinguishable to the migrator.
    let now = fabric.clock().now();
    if fabric.link(from, to).is_err() {
        return Err(MigrateError::untouched(MigrateFailure::TargetDown(to)));
    }
    let admission = ReservationRequest::instantaneous(checkpoint.class, via_vault, admission_hold())
        .with_demand(checkpoint.cpu_centis, checkpoint.memory_mb);
    let token = match dst.make_reservation(&admission, now) {
        Ok(t) => t,
        Err(LegionError::HostDown(_)) | Err(LegionError::NoSuchHost(_)) => {
            return Err(MigrateError::untouched(MigrateFailure::TargetDown(to)));
        }
        Err(e) => {
            return Err(MigrateError::untouched(MigrateFailure::ReservationRefused {
                host: to,
                error: e,
            }))
        }
    };

    // (1) Shut down: passive state lands in the source host's vault.
    let opr = match src.deactivate_object(object, now) {
        Ok(o) => o,
        Err(e) => {
            let _ = dst.cancel_reservation(&token);
            let failure = match e {
                LegionError::HostDown(_) | LegionError::NoSuchHost(_) => {
                    MigrateFailure::SourceDown(from)
                }
                other => MigrateFailure::Infrastructure(other),
            };
            return Err(MigrateError::untouched(failure));
        }
    };

    // (2) Move the OPR if the destination cannot reach its vault.
    if via_vault != holding_vault {
        let moved = (|| -> Result<(), LegionError> {
            let src_vault = fabric
                .lookup_vault(holding_vault)
                .ok_or(LegionError::NoSuchVault(holding_vault))?;
            let dst_vault =
                fabric.lookup_vault(via_vault).ok_or(LegionError::NoSuchVault(via_vault))?;
            fabric.link(holding_vault, via_vault)?;
            dst_vault.store_opr(src_vault.fetch_opr(object)?)?;
            src_vault.delete_opr(object)?;
            Ok(())
        })();
        if let Err(e) = moved {
            let _ = dst.cancel_reservation(&token);
            return undo_to_source(
                fabric,
                &src,
                from,
                to,
                &opr,
                holding_vault,
                holding_vault,
                rehome,
                MigrateFailure::Infrastructure(e),
            );
        }
    }

    // (3) Reactivate on the destination.
    let now = fabric.clock().now();
    if let Err(e) = dst.reactivate_object(&opr, now) {
        let _ = dst.cancel_reservation(&token);
        let failure = match e {
            LegionError::HostDown(_) | LegionError::NoSuchHost(_) => {
                MigrateFailure::TargetDown(to)
            }
            LegionError::ReservationDenied { .. } | LegionError::PolicyRefused { .. } => {
                MigrateFailure::ReservationRefused { host: to, error: e }
            }
            other => MigrateFailure::Infrastructure(other),
        };
        return undo_to_source(
            fabric, &src, from, to, &opr, via_vault, holding_vault, rehome, failure,
        );
    }
    let _ = dst.cancel_reservation(&token);

    // (4) The Class is the final authority on placement — tell it.
    if let Some(class) = fabric.lookup_class(opr.class) {
        class.note_instance_location(object, to);
    }

    MetricsLedger::bump(&fabric.metrics().migrations);
    Ok(MigrationRecord {
        object,
        from,
        to,
        via_vault,
        completed_at: fabric.clock().now(),
        opr_bytes: opr.size_bytes(),
        outcome: MigrationOutcome::Completed,
    })
}

/// Brings a deactivated object home after a failed migration: move the
/// OPR back within the source's reach if it travelled, then reactivate
/// on the source. If the source died mid-flight, the `rehome` hosts are
/// tried in order; if nothing accepts, the OPR stays put in a vault.
#[allow(clippy::too_many_arguments)]
fn undo_to_source(
    fabric: &Arc<Fabric>,
    src: &Arc<dyn legion_core::HostObject>,
    from: Loid,
    planned_to: Loid,
    opr: &Opr,
    opr_at: Loid,
    home_vault: Loid,
    rehome: &[Loid],
    failure: MigrateFailure,
) -> Result<MigrationRecord, MigrateError> {
    let now = fabric.clock().now();
    // Move the OPR back within the source's reach first (best effort —
    // reactivation scans compatible vaults, so a copy left in the
    // destination's vault is still recoverable by the Watchdog).
    let mut resting_vault = opr_at;
    if opr_at != home_vault {
        if let (Some(hv), Some(av)) =
            (fabric.lookup_vault(home_vault), fabric.lookup_vault(opr_at))
        {
            if let Ok(o) = av.fetch_opr(opr.object) {
                if hv.store_opr(o).is_ok() {
                    let _ = av.delete_opr(opr.object);
                    resting_vault = home_vault;
                }
            }
        }
    }
    if src.reactivate_object(opr, now).is_ok() {
        return Err(MigrateError { failure, disposition: MigrateDisposition::RolledBack });
    }
    // The source is gone too. Re-home on any supplied alternate; the
    // Class must learn the final location whatever happens.
    for &alt in rehome {
        if alt == from || alt == planned_to {
            continue;
        }
        let Some(host) = fabric.lookup_host(alt) else { continue };
        if fabric.link(from, alt).is_err() {
            continue;
        }
        let reachable = host.get_compatible_vaults();
        let via = if reachable.contains(&resting_vault) {
            resting_vault
        } else {
            let Some(&v) = reachable.first() else { continue };
            let Some(dst_vault) = fabric.lookup_vault(v) else { continue };
            let Some(cur_vault) = fabric.lookup_vault(resting_vault) else { continue };
            let Ok(o) = cur_vault.fetch_opr(opr.object) else { continue };
            if dst_vault.store_opr(o).is_err() {
                continue;
            }
            let _ = cur_vault.delete_opr(opr.object);
            v
        };
        resting_vault = via;
        if host.reactivate_object(opr, now).is_ok() {
            if let Some(class) = fabric.lookup_class(opr.class) {
                class.note_instance_location(opr.object, alt);
            }
            MetricsLedger::bump(&fabric.metrics().migrations);
            MetricsLedger::bump(&fabric.metrics().rebalance_rehomes);
            return Ok(MigrationRecord {
                object: opr.object,
                from,
                to: alt,
                via_vault: via,
                completed_at: fabric.clock().now(),
                opr_bytes: opr.size_bytes(),
                outcome: MigrationOutcome::ReHomed { planned: planned_to },
            });
        }
    }
    Err(MigrateError { failure, disposition: MigrateDisposition::StrandedInVault(resting_vault) })
}
