//! Enactor integration tests over real hosts, vaults and classes.

use legion_core::{
    ClassObject, HostObject, LegionClass, Loid, ObjectImplementation, PlacementContext,
    ReservationStatus, SimDuration, VaultObject,
};
use legion_fabric::{DomainId, DomainTopology, Fabric};
use legion_hosts::{DomainRefusal, HostConfig, StandardHost};
use legion_schedule::{
    Enactor, EnactorConfig, FailureClass, Mapping, ScheduleOutcome, ScheduleRequest,
    ScheduleRequestList, VariantSchedule,
};
use legion_vaults::{StandardVault, VaultConfig};
use std::sync::Arc;

struct Testbed {
    fabric: Arc<Fabric>,
    hosts: Vec<Loid>,
    typed_hosts: Vec<Arc<StandardHost>>,
    vault: Loid,
    class: Loid,
}

/// `n` identical IRIX hosts in one domain, one open vault, one class.
fn testbed(n: usize) -> Testbed {
    let fabric = Fabric::new(
        DomainTopology::uniform(2, SimDuration::from_micros(20), SimDuration::from_millis(25)),
        7,
    );
    let vault = Arc::new(StandardVault::new(VaultConfig::default()));
    let vault_loid = vault.loid();
    fabric.register_vault(vault, DomainId(0));

    let mut hosts = Vec::new();
    let mut typed_hosts = Vec::new();
    for i in 0..n {
        let h = StandardHost::new(
            HostConfig::unix(format!("h{i}"), "uva.edu"),
            fabric.clone(),
            100 + i as u64,
        );
        h.set_metrics(Arc::clone(fabric.metrics()));
        hosts.push(h.loid());
        typed_hosts.push(Arc::clone(&h));
        fabric.register_host(h, DomainId(0));
    }

    let class = Arc::new(LegionClass::new(
        "worker",
        vec![ObjectImplementation::new("mips", "IRIX")],
    ));
    let class_loid = class.loid();
    fabric.register_class(class);

    Testbed { fabric, hosts, typed_hosts, vault: vault_loid, class: class_loid }
}

fn map(t: &Testbed, host_idx: usize) -> Mapping {
    Mapping::new(t.class, t.hosts[host_idx], t.vault)
}

#[test]
fn master_schedule_reserves_and_enacts() {
    let t = testbed(3);
    let enactor = Enactor::new(t.fabric.clone());
    let req = ScheduleRequestList::single(vec![map(&t, 0), map(&t, 1), map(&t, 2)]);

    let fb = enactor.make_reservations(&req);
    assert!(fb.reserved());
    assert_eq!(fb.reservations.len(), 3);
    assert_eq!(
        fb.outcome,
        ScheduleOutcome::Reserved { schedule: 0, variant: None }
    );

    let placed = enactor.enact_schedule(&fb).unwrap();
    assert_eq!(placed.len(), 3);
    // Each host now runs exactly one object.
    for (i, h) in t.hosts.iter().enumerate() {
        let host = t.fabric.lookup_host(*h).unwrap();
        assert_eq!(host.running_objects().len(), 1, "host {i}");
    }
    // The class tracks all three instances.
    let class = t.fabric.lookup_class(t.class).unwrap();
    assert_eq!(class.instances().len(), 3);
}

#[test]
fn variant_rescues_failed_position() {
    let t = testbed(3);
    // Host 1 refuses our domain outright (autonomy).
    t.typed_hosts[1].add_policy(Arc::new(DomainRefusal::new(["dom0"])));

    let master = vec![map(&t, 0), map(&t, 1)];
    let variant = VariantSchedule::replacing(2, &[(1, map(&t, 2))]);
    let req = ScheduleRequestList::default()
        .push(ScheduleRequest { master: legion_schedule::MasterSchedule::new(master), variants: vec![variant] });

    let enactor = Enactor::new(t.fabric.clone());
    let fb = enactor.make_reservations(&req);
    assert!(fb.reserved());
    assert_eq!(
        fb.outcome,
        ScheduleOutcome::Reserved { schedule: 0, variant: Some(0) }
    );
    // The surviving position kept its original host; the replacement
    // landed on host 2.
    assert_eq!(fb.mappings[0].host, t.hosts[0]);
    assert_eq!(fb.mappings[1].host, t.hosts[2]);
}

#[test]
fn no_variant_means_failure_and_cleanup() {
    let t = testbed(2);
    // Ask for more CPU than any host has by stacking three mappings on
    // one single-CPU host.
    let req = ScheduleRequestList::single(vec![map(&t, 0), map(&t, 0), map(&t, 0)]);
    let enactor = Enactor::new(t.fabric.clone());
    let fb = enactor.make_reservations(&req);
    assert!(!fb.reserved());
    assert_eq!(
        fb.outcome,
        ScheduleOutcome::Failed(FailureClass::ResourceUnavailable)
    );
    // Partial holds were released: a fresh single mapping must succeed.
    let fb2 = enactor.make_reservations(&ScheduleRequestList::single(vec![map(&t, 0)]));
    assert!(fb2.reserved());
}

#[test]
fn malformed_schedule_reported_as_such() {
    let t = testbed(1);
    let enactor = Enactor::new(t.fabric.clone());
    let fb = enactor.make_reservations(&ScheduleRequestList::default());
    assert!(matches!(fb.outcome, ScheduleOutcome::Failed(FailureClass::Malformed(_))));
    // Wrong-kind LOID.
    let bad = Mapping::new(t.hosts[0], t.hosts[0], t.vault);
    let fb = enactor.make_reservations(&ScheduleRequestList::single(vec![bad]));
    assert!(matches!(fb.outcome, ScheduleOutcome::Failed(FailureClass::Malformed(_))));
}

#[test]
fn cancel_reservations_releases_hosts() {
    let t = testbed(1);
    let enactor = Enactor::new(t.fabric.clone());
    let fb = enactor.make_reservations(&ScheduleRequestList::single(vec![map(&t, 0)]));
    assert!(fb.reserved());
    enactor.cancel_reservations(&fb);
    let host = t.fabric.lookup_host(t.hosts[0]).unwrap();
    let status = host
        .check_reservation(&fb.reservations[0], t.fabric.clock().now())
        .unwrap();
    assert_eq!(status, ReservationStatus::Cancelled);
}

#[test]
fn second_master_tried_after_first_fails() {
    let t = testbed(2);
    // First schedule triple-books host 0 (impossible); second uses both.
    let bad = ScheduleRequest::master_only(vec![map(&t, 0), map(&t, 0), map(&t, 0)]);
    let good = ScheduleRequest::master_only(vec![map(&t, 0), map(&t, 1)]);
    let req = ScheduleRequestList::default().push(bad).push(good);
    let enactor = Enactor::new(t.fabric.clone());
    let fb = enactor.make_reservations(&req);
    assert!(fb.reserved());
    assert_eq!(
        fb.outcome,
        ScheduleOutcome::Reserved { schedule: 1, variant: None }
    );
}

#[test]
fn bitmap_walk_avoids_thrashing_vs_naive() {
    // Two identical runs, one with the bitmap delta walk, one naive.
    // Master: positions 0..3 on distinct hosts; position 3 on a refusing
    // host. Variants move position 3 across more refusing hosts before
    // finding a good one — the naive walk remakes positions 0..2 each
    // time, thrashing; the delta walk never does.
    let run = |bitmap_walk: bool| -> (u64, bool) {
        let t = testbed(8);
        for idx in 4..7 {
            t.typed_hosts[idx].add_policy(Arc::new(DomainRefusal::new(["dom0"])));
        }
        let master = vec![map(&t, 0), map(&t, 1), map(&t, 2), map(&t, 4)];
        let variants = vec![
            VariantSchedule::replacing(4, &[(3, map(&t, 5))]),
            VariantSchedule::replacing(4, &[(3, map(&t, 6))]),
            VariantSchedule::replacing(4, &[(3, map(&t, 7))]),
        ];
        let req = ScheduleRequestList::default().push(ScheduleRequest {
            master: legion_schedule::MasterSchedule::new(master),
            variants,
        });
        let enactor = Enactor::with_config(
            t.fabric.clone(),
            EnactorConfig { bitmap_walk, ..Default::default() },
        );
        let before = t.fabric.metrics().snapshot();
        let fb = enactor.make_reservations(&req);
        let after = t.fabric.metrics().snapshot();
        (after.delta(&before).reservation_thrash, fb.reserved())
    };

    let (thrash_bitmap, ok1) = run(true);
    let (thrash_naive, ok2) = run(false);
    assert!(ok1 && ok2, "both strategies eventually succeed");
    assert_eq!(thrash_bitmap, 0, "delta walk must never remake a cancelled reservation");
    assert!(
        thrash_naive >= 6,
        "naive walk should thrash positions 0..2 across variants, got {thrash_naive}"
    );
}

#[test]
fn vanished_host_fails_cleanly_and_variant_rescues() {
    // A host crashes (is unregistered) between scheduling and
    // enactment: the mapping naming it fails with NoSuchHost, and a
    // variant pointing at a live host rescues the schedule.
    let t = testbed(3);
    t.fabric.unregister_host(t.hosts[1]);

    let master = vec![map(&t, 0), map(&t, 1)];
    let variant = VariantSchedule::replacing(2, &[(1, map(&t, 2))]);
    let req = ScheduleRequestList::default().push(ScheduleRequest {
        master: legion_schedule::MasterSchedule::new(master),
        variants: vec![variant],
    });
    let enactor = Enactor::new(t.fabric.clone());
    let fb = enactor.make_reservations(&req);
    assert!(fb.reserved(), "variant must route around the dead host");
    assert_eq!(fb.mappings[1].host, t.hosts[2]);

    // Without a variant, the same schedule fails — but cleanly, with
    // the surviving reservation released.
    let t = testbed(2);
    t.fabric.unregister_host(t.hosts[1]);
    let req = ScheduleRequestList::single(vec![map(&t, 0), map(&t, 1)]);
    let enactor = Enactor::new(t.fabric.clone());
    let fb = enactor.make_reservations(&req);
    assert!(!fb.reserved());
    // Host 0's capacity was returned.
    let fb2 = enactor.make_reservations(&ScheduleRequestList::single(vec![map(&t, 0)]));
    assert!(fb2.reserved());
}

#[test]
fn enactor_respects_max_attempts() {
    // With max_attempts = 1 only the master is tried, even though a
    // working variant exists.
    let t = testbed(2);
    // Block host 0.
    let h0 = &t.typed_hosts[0];
    let vault = h0.get_compatible_vaults()[0];
    let blocking = legion_core::ReservationRequest::instantaneous(
        t.class,
        vault,
        SimDuration::from_secs(1 << 20),
    )
    .with_type(legion_core::ReservationType::REUSABLE_SPACE);
    h0.make_reservation(&blocking, t.fabric.clock().now()).unwrap();

    let master = vec![map(&t, 0)];
    let variant = VariantSchedule::replacing(1, &[(0, map(&t, 1))]);
    let sched = ScheduleRequest {
        master: legion_schedule::MasterSchedule::new(master),
        variants: vec![variant],
    };
    let req = ScheduleRequestList { schedules: vec![sched] };

    let strict = Enactor::with_config(
        t.fabric.clone(),
        EnactorConfig { max_attempts: 1, ..Default::default() },
    );
    assert!(!strict.make_reservations(&req).reserved());

    let lenient = Enactor::new(t.fabric.clone());
    assert!(lenient.make_reservations(&req).reserved());
}

// ---------------------------------------------------------------------------
// Concurrent reservation fan-out
// ---------------------------------------------------------------------------

/// Token fingerprints that survive across fresh testbeds: LOIDs are
/// minted from a process-global counter, so identify hosts by index.
fn token_prints(t: &Testbed, fb: &legion_schedule::ScheduleFeedback) -> Vec<(usize, u64)> {
    fb.reservations
        .iter()
        .map(|tok| {
            let idx = t.hosts.iter().position(|&h| h == tok.host).expect("testbed host");
            (idx, tok.serial)
        })
        .collect()
}

#[test]
fn fanout_matches_serial_feedback_and_ledger() {
    // Lossless links: the fill pass is deterministic, so every width
    // must produce the same outcome, the same granted tokens, and the
    // same ledger delta — parallelism is invisible to accounting.
    let run = |fanout: usize| {
        let t = testbed(6);
        let enactor = Enactor::with_config(
            t.fabric.clone(),
            EnactorConfig { fanout, ..Default::default() },
        );
        let before = t.fabric.metrics().snapshot();
        let req = ScheduleRequestList::single((0..6).map(|i| map(&t, i)).collect());
        let fb = enactor.make_reservations(&req);
        let delta = t.fabric.metrics().snapshot().delta(&before);
        (fb.outcome.clone(), token_prints(&t, &fb), delta)
    };
    let serial = run(1);
    assert!(matches!(serial.0, ScheduleOutcome::Reserved { .. }));
    for width in [2usize, 3, 8, 64] {
        assert_eq!(serial, run(width), "fanout {width} diverged from the serial pass");
    }
}

#[test]
fn fanout_width_one_replays_bit_identically_under_loss() {
    // Width 1 must keep drawing loss from the fabric's shared stream:
    // two identically-seeded runs agree on every draw, every token
    // serial, and every ledger counter — the pre-fan-out serial path.
    let run = || {
        let t = testbed(4);
        t.fabric
            .with_topology(|topo| topo.set_drop_prob(DomainId(0), DomainId(0), 0.35));
        let enactor = Enactor::with_config(
            t.fabric.clone(),
            EnactorConfig { fanout: 1, max_attempts: 5, ..Default::default() },
        );
        let before = t.fabric.metrics().snapshot();
        let req = ScheduleRequestList::single((0..4).map(|i| map(&t, i)).collect());
        let fb = enactor.make_reservations(&req);
        let delta = t.fabric.metrics().snapshot().delta(&before);
        (fb.outcome.clone(), token_prints(&t, &fb), delta)
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "width-1 runs with one seed must be bit-identical");
    assert!(a.2.messages_dropped > 0, "the lossy link actually exercised the stream");
}

#[test]
fn fanout_partial_failure_backs_out_and_reconciles() {
    use legion_fabric::reconcile::{reconcile_trace, reconciliation_report};

    // One host refuses the requesting domain; there is no variant, so
    // the attempt fails and the fan-out's five successful holds must all
    // be backed out — and the cancel accounting must reconcile exactly
    // against the trace.
    let t = testbed(6);
    t.typed_hosts[3].add_policy(Arc::new(DomainRefusal::new(["dom0"])));
    let sink = t.fabric.enable_tracing();
    sink.clear();
    let before = t.fabric.metrics().snapshot();

    let enactor = Enactor::with_config(
        t.fabric.clone(),
        EnactorConfig { fanout: 8, max_attempts: 1, ..Default::default() },
    );
    let fb = enactor.make_reservations(
        &ScheduleRequestList::single((0..6).map(|i| map(&t, i)).collect()),
    );
    assert!(!fb.reserved());
    assert!(fb.reservations.is_empty());

    let delta = t.fabric.metrics().snapshot().delta(&before);
    assert_eq!(delta.reservations_granted, 5, "five hosts granted before the backout");
    assert_eq!(delta.reservations_cancelled, 5, "every granted hold was cancelled");
    let rollup = sink.rollup();
    assert!(
        reconcile_trace(&rollup, &delta).is_empty(),
        "fan-out cleanup must reconcile:\n{}",
        reconciliation_report(&rollup, &delta)
    );
    assert_eq!(sink.open_spans(), 0);

    // The capacity really came back: the same schedule minus the
    // refusing host reserves cleanly.
    let retry = ScheduleRequestList::single(
        (0..6).filter(|&i| i != 3).map(|i| map(&t, i)).collect(),
    );
    assert!(enactor.make_reservations(&retry).reserved(), "no leaked holds");
}
