//! Property tests for the schedule data structures.

use legion_core::{Loid, LoidKind};
use legion_schedule::{BitMap, Mapping, MasterSchedule, ScheduleRequest, VariantSchedule};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn mapping(c: u64, h: u64, v: u64) -> Mapping {
    Mapping::new(
        Loid::synthetic(LoidKind::Class, c + 1),
        Loid::synthetic(LoidKind::Host, h + 1),
        Loid::synthetic(LoidKind::Vault, v + 1),
    )
}

proptest! {
    /// BitMap agrees with a BTreeSet model under arbitrary set/clear
    /// sequences.
    #[test]
    fn bitmap_matches_set_model(
        len in 1usize..200,
        ops in proptest::collection::vec((any::<bool>(), 0usize..200), 0..100),
    ) {
        let mut bm = BitMap::new(len);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (set, idx) in ops {
            let i = idx % len;
            if set {
                bm.set(i);
                model.insert(i);
            } else {
                bm.clear(i);
                model.remove(&i);
            }
        }
        prop_assert_eq!(bm.count_ones(), model.len());
        prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(),
                        model.iter().copied().collect::<Vec<_>>());
        for i in 0..len {
            prop_assert_eq!(bm.get(i), model.contains(&i));
        }
    }

    /// `intersects` agrees with set intersection.
    #[test]
    fn bitmap_intersects_model(
        len in 1usize..128,
        a in proptest::collection::vec(0usize..128, 0..20),
        b in proptest::collection::vec(0usize..128, 0..20),
    ) {
        let a: Vec<usize> = a.into_iter().map(|i| i % len).collect();
        let b: Vec<usize> = b.into_iter().map(|i| i % len).collect();
        let bma = BitMap::from_indices(len, &a);
        let bmb = BitMap::from_indices(len, &b);
        let sa: BTreeSet<usize> = a.into_iter().collect();
        let sb: BTreeSet<usize> = b.into_iter().collect();
        prop_assert_eq!(bma.intersects(&bmb), !sa.is_disjoint(&sb));
    }

    /// Variant resolution: replaced positions carry the variant mapping,
    /// untouched positions carry the master's; resolution is total.
    #[test]
    fn variant_resolution_model(
        n in 1usize..24,
        replace_at in proptest::collection::btree_set(0usize..24, 0..8),
    ) {
        let replace_at: Vec<usize> =
            replace_at.into_iter().filter(|&i| i < n).collect();
        let master: Vec<Mapping> = (0..n as u64).map(|i| mapping(0, i, 0)).collect();
        let replacements: Vec<(usize, Mapping)> = replace_at
            .iter()
            .map(|&i| (i, mapping(0, 1000 + i as u64, 0)))
            .collect();
        let variant = VariantSchedule::replacing(n, &replacements);
        let sched = ScheduleRequest {
            master: MasterSchedule::new(master.clone()),
            variants: vec![variant],
        };
        if replacements.is_empty() {
            // An empty variant is malformed by design; nothing to resolve.
            prop_assert!(sched.validate().is_err());
            return Ok(());
        }
        prop_assert!(sched.validate().is_ok());

        let resolved = sched.resolve(Some(0));
        prop_assert_eq!(resolved.len(), n);
        for i in 0..n {
            if replace_at.contains(&i) {
                prop_assert_eq!(&resolved[i], &mapping(0, 1000 + i as u64, 0));
            } else {
                prop_assert_eq!(&resolved[i], &master[i]);
            }
        }
        // Out-of-range variant index resolves to the master.
        prop_assert_eq!(sched.resolve(Some(99)), master);
    }

    /// `replacement_for` is consistent with the bitmap.
    #[test]
    fn replacement_lookup_consistent(
        n in 1usize..32,
        replace_at in proptest::collection::btree_set(0usize..32, 1..8),
    ) {
        let replace_at: Vec<usize> =
            replace_at.into_iter().filter(|&i| i < n).collect();
        prop_assume!(!replace_at.is_empty());
        let replacements: Vec<(usize, Mapping)> = replace_at
            .iter()
            .map(|&i| (i, mapping(1, i as u64, 2)))
            .collect();
        let v = VariantSchedule::replacing(n, &replacements);
        for i in 0..n {
            match v.replacement_for(i) {
                Some(m) => {
                    prop_assert!(replace_at.contains(&i));
                    prop_assert_eq!(m, &mapping(1, i as u64, 2));
                }
                None => prop_assert!(!replace_at.contains(&i)),
            }
        }
    }

    /// Validation rejects any bitmap-length mismatch.
    #[test]
    fn validation_catches_length_mismatch(n in 1usize..16, m in 1usize..16) {
        prop_assume!(n != m);
        let master: Vec<Mapping> = (0..n as u64).map(|i| mapping(0, i, 0)).collect();
        let variant = VariantSchedule::replacing(m, &[(0, mapping(0, 99, 0))]);
        let sched = ScheduleRequest {
            master: MasterSchedule::new(master),
            variants: vec![variant],
        };
        prop_assert!(sched.validate().is_err());
    }
}
