//! The Schedule data structure (Fig. 5).
//!
//! "Each Schedule has at least one Master Schedule, and each Master
//! Schedule may have a list of Variant Schedules associated with it.
//! Both master and variant schedules contain a list of mappings, with
//! each mapping having the type (Class LOID → (Host LOID × Vault LOID)).
//! Each mapping indicates that an instance of the class should be
//! started on the indicated (Host, Vault) pair." (§3.3)
//!
//! "Each entry in the variant schedule is a single-object mapping, and
//! replaces one entry in the master schedule." (§3.4)
//!
//! The three Enactor-facing types mirror the paper's:
//! `LegionScheduleList` → [`MasterSchedule`] (one schedule),
//! `LegionScheduleRequestList` → [`ScheduleRequestList`] (the whole
//! Fig. 5 structure), and `LegionScheduleFeedback` →
//! [`ScheduleFeedback`] (the original request plus whether and which
//! schedule's reservations succeeded).

use crate::bitmap::BitMap;
use legion_core::{LegionError, Loid, LoidKind, ReservationToken};

/// One object mapping: Class LOID → (Host LOID × Vault LOID).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// The class to instantiate.
    pub class: Loid,
    /// The host to run on.
    pub host: Loid,
    /// The vault for the instance's OPR.
    pub vault: Loid,
}

impl Mapping {
    /// Creates a mapping.
    pub fn new(class: Loid, host: Loid, vault: Loid) -> Self {
        Mapping { class, host, vault }
    }

    fn validate(&self) -> Result<(), String> {
        if self.class.kind != LoidKind::Class {
            return Err(format!("mapping class {} is not a class LOID", self.class));
        }
        if self.host.kind != LoidKind::Host {
            return Err(format!("mapping host {} is not a host LOID", self.host));
        }
        if self.vault.kind != LoidKind::Vault {
            return Err(format!("mapping vault {} is not a vault LOID", self.vault));
        }
        Ok(())
    }
}

/// A master schedule: the primary list of mappings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MasterSchedule {
    /// The mappings, in instance order.
    pub mappings: Vec<Mapping>,
}

impl MasterSchedule {
    /// Creates a master schedule from mappings.
    pub fn new(mappings: Vec<Mapping>) -> Self {
        MasterSchedule { mappings }
    }

    /// Number of object mappings.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// Whether the schedule maps nothing.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }
}

/// A variant schedule: replacement mappings for some master positions,
/// selected by a bitmap (one bit per master mapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantSchedule {
    /// Which master positions this variant replaces.
    pub replaces: BitMap,
    /// Replacement mappings, one per set bit, in ascending bit order.
    pub entries: Vec<Mapping>,
}

impl VariantSchedule {
    /// Builds a variant replacing the given `(position, mapping)` pairs
    /// of a master schedule with `master_len` mappings.
    pub fn replacing(master_len: usize, replacements: &[(usize, Mapping)]) -> Self {
        let mut pairs: Vec<(usize, Mapping)> = replacements.to_vec();
        pairs.sort_by_key(|(i, _)| *i);
        let replaces =
            BitMap::from_indices(master_len, &pairs.iter().map(|(i, _)| *i).collect::<Vec<_>>());
        VariantSchedule { replaces, entries: pairs.into_iter().map(|(_, m)| m).collect() }
    }

    /// The replacement for master position `i`, if this variant has one.
    pub fn replacement_for(&self, i: usize) -> Option<&Mapping> {
        if i >= self.replaces.len() || !self.replaces.get(i) {
            return None;
        }
        let rank = self.replaces.iter_ones().position(|b| b == i)?;
        self.entries.get(rank)
    }
}

/// One schedule: a master plus its variants (one row of Fig. 5).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleRequest {
    /// The master schedule.
    pub master: MasterSchedule,
    /// Variant schedules, in preference order.
    pub variants: Vec<VariantSchedule>,
}

impl ScheduleRequest {
    /// A schedule with no variants.
    pub fn master_only(mappings: Vec<Mapping>) -> Self {
        ScheduleRequest { master: MasterSchedule::new(mappings), variants: Vec::new() }
    }

    /// Builder: append a variant.
    pub fn with_variant(mut self, variant: VariantSchedule) -> Self {
        self.variants.push(variant);
        self
    }

    /// Resolves the effective mapping list under an optional variant.
    pub fn resolve(&self, variant: Option<usize>) -> Vec<Mapping> {
        let mut out = self.master.mappings.clone();
        if let Some(vi) = variant {
            if let Some(v) = self.variants.get(vi) {
                for (rank, pos) in v.replaces.iter_ones().enumerate() {
                    if let (Some(slot), Some(m)) = (out.get_mut(pos), v.entries.get(rank)) {
                        *slot = m.clone();
                    }
                }
            }
        }
        out
    }

    /// Structural validation (Enactors refuse malformed schedules).
    pub fn validate(&self) -> Result<(), LegionError> {
        if self.master.is_empty() {
            return Err(LegionError::MalformedSchedule("empty master schedule".into()));
        }
        for m in &self.master.mappings {
            m.validate().map_err(LegionError::MalformedSchedule)?;
        }
        for (vi, v) in self.variants.iter().enumerate() {
            if v.replaces.len() != self.master.len() {
                return Err(LegionError::MalformedSchedule(format!(
                    "variant {vi} bitmap length {} != master length {}",
                    v.replaces.len(),
                    self.master.len()
                )));
            }
            if v.replaces.count_ones() != v.entries.len() {
                return Err(LegionError::MalformedSchedule(format!(
                    "variant {vi} has {} set bits but {} entries",
                    v.replaces.count_ones(),
                    v.entries.len()
                )));
            }
            if v.entries.is_empty() {
                return Err(LegionError::MalformedSchedule(format!("variant {vi} is empty")));
            }
            for m in &v.entries {
                m.validate().map_err(LegionError::MalformedSchedule)?;
            }
        }
        Ok(())
    }
}

/// The whole Fig. 5 structure: a list of schedules to try in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleRequestList {
    /// Schedules in preference order.
    pub schedules: Vec<ScheduleRequest>,
}

impl ScheduleRequestList {
    /// A list with one master-only schedule.
    pub fn single(mappings: Vec<Mapping>) -> Self {
        ScheduleRequestList { schedules: vec![ScheduleRequest::master_only(mappings)] }
    }

    /// Builder: append a schedule.
    pub fn push(mut self, s: ScheduleRequest) -> Self {
        self.schedules.push(s);
        self
    }

    /// Validates every schedule.
    pub fn validate(&self) -> Result<(), LegionError> {
        if self.schedules.is_empty() {
            return Err(LegionError::MalformedSchedule("no schedules in request".into()));
        }
        for s in &self.schedules {
            s.validate()?;
        }
        Ok(())
    }
}

/// Why a whole request failed, as the Enactor "may (but is not required
/// to) report" (§3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureClass {
    /// Could not obtain the resources (denials, capacity, policy).
    ResourceUnavailable,
    /// The schedule itself was structurally invalid.
    Malformed(String),
    /// Infrastructure failure (network, missing objects).
    Infrastructure,
    /// Every remaining candidate host was down — fail-stop crash or
    /// unreachable behind a partition. Retrying the same mappings
    /// cannot succeed; reschedule against live hosts.
    HostDown,
    /// The request's deadline budget lapsed before any schedule fully
    /// reserved (backoff delays count against the budget).
    DeadlineExceeded,
}

impl FailureClass {
    /// Buckets a [`LegionError`] into the class the Enactor reports.
    pub fn classify(e: &LegionError) -> FailureClass {
        match e {
            LegionError::HostDown(_) | LegionError::NoSuchHost(_) => FailureClass::HostDown,
            LegionError::MalformedSchedule(why) => FailureClass::Malformed(why.clone()),
            LegionError::NetworkFailure { .. }
            | LegionError::NoSuchVault(_)
            | LegionError::NoSuchOpr(_)
            | LegionError::NoSuchObject(_) => FailureClass::Infrastructure,
            _ => FailureClass::ResourceUnavailable,
        }
    }

    /// Whether resubmitting the same request later can succeed without
    /// recomputing the schedule: transient classes (contention, network
    /// weather, crashed-but-restartable hosts, lapsed deadlines) are
    /// worth a retry; a malformed schedule never is.
    pub fn is_transient(&self) -> bool {
        !matches!(self, FailureClass::Malformed(_))
    }

    /// The trace-span outcome this failure class maps to — one-to-one,
    /// so trace assertions can match scheduler feedback exactly.
    pub fn span_outcome(&self) -> legion_core::SpanOutcome {
        use legion_core::SpanOutcome;
        match self {
            FailureClass::ResourceUnavailable => SpanOutcome::ResourceUnavailable,
            FailureClass::Malformed(_) => SpanOutcome::Malformed,
            FailureClass::Infrastructure => SpanOutcome::Infrastructure,
            FailureClass::HostDown => SpanOutcome::HostDown,
            FailureClass::DeadlineExceeded => SpanOutcome::DeadlineExceeded,
        }
    }
}

/// The outcome reported in feedback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleOutcome {
    /// Reservations succeeded for schedule `schedule` (with variant
    /// `variant` if not the pure master).
    Reserved {
        /// Index into the request list.
        schedule: usize,
        /// Variant index applied, or `None` for the pure master.
        variant: Option<usize>,
    },
    /// Everything failed.
    Failed(FailureClass),
}

/// `LegionScheduleFeedback`: "contains the original
/// LegionScheduleRequestList and feedback information indicating whether
/// the reservations were successfully made, and if so, which schedule
/// succeeded" (§3.3).
#[derive(Debug, Clone)]
pub struct ScheduleFeedback {
    /// The original request.
    pub request: ScheduleRequestList,
    /// What happened.
    pub outcome: ScheduleOutcome,
    /// Tokens obtained for the winning schedule, in mapping order
    /// (empty on failure).
    pub reservations: Vec<ReservationToken>,
    /// The effective mappings the tokens correspond to.
    pub mappings: Vec<Mapping>,
}

impl ScheduleFeedback {
    /// Whether reservations were obtained.
    pub fn reserved(&self) -> bool {
        matches!(self.outcome, ScheduleOutcome::Reserved { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loid(kind: LoidKind, seq: u64) -> Loid {
        Loid::synthetic(kind, seq)
    }

    fn mapping(c: u64, h: u64, v: u64) -> Mapping {
        Mapping::new(
            loid(LoidKind::Class, c),
            loid(LoidKind::Host, h),
            loid(LoidKind::Vault, v),
        )
    }

    #[test]
    fn variant_resolution_replaces_positions() {
        let master = vec![mapping(1, 1, 1), mapping(1, 2, 1), mapping(1, 3, 1)];
        let v = VariantSchedule::replacing(3, &[(1, mapping(1, 9, 1))]);
        let s = ScheduleRequest { master: MasterSchedule::new(master), variants: vec![v] };
        let resolved = s.resolve(Some(0));
        assert_eq!(resolved[0], mapping(1, 1, 1));
        assert_eq!(resolved[1], mapping(1, 9, 1));
        assert_eq!(resolved[2], mapping(1, 3, 1));
        // Pure master is untouched.
        assert_eq!(s.resolve(None)[1], mapping(1, 2, 1));
    }

    #[test]
    fn variant_multiple_replacements_in_order() {
        let master = vec![mapping(1, 1, 1), mapping(1, 2, 1), mapping(1, 3, 1)];
        // Provide replacements out of order; bit order must prevail.
        let v = VariantSchedule::replacing(3, &[(2, mapping(1, 30, 1)), (0, mapping(1, 10, 1))]);
        assert_eq!(v.replacement_for(0), Some(&mapping(1, 10, 1)));
        assert_eq!(v.replacement_for(2), Some(&mapping(1, 30, 1)));
        assert_eq!(v.replacement_for(1), None);
        let s = ScheduleRequest { master: MasterSchedule::new(master), variants: vec![v] };
        let r = s.resolve(Some(0));
        assert_eq!(r[0], mapping(1, 10, 1));
        assert_eq!(r[2], mapping(1, 30, 1));
    }

    #[test]
    fn validation_catches_malformations() {
        // Empty master.
        assert!(ScheduleRequest::master_only(vec![]).validate().is_err());
        // Wrong LOID kind in a mapping.
        let bad = Mapping::new(
            loid(LoidKind::Host, 1), // class slot holding a host LOID
            loid(LoidKind::Host, 1),
            loid(LoidKind::Vault, 1),
        );
        assert!(ScheduleRequest::master_only(vec![bad]).validate().is_err());
        // Bitmap length mismatch.
        let s = ScheduleRequest {
            master: MasterSchedule::new(vec![mapping(1, 1, 1), mapping(1, 2, 1)]),
            variants: vec![VariantSchedule {
                replaces: BitMap::from_indices(3, &[0]),
                entries: vec![mapping(1, 9, 1)],
            }],
        };
        assert!(s.validate().is_err());
        // Bit/entry count mismatch.
        let s = ScheduleRequest {
            master: MasterSchedule::new(vec![mapping(1, 1, 1), mapping(1, 2, 1)]),
            variants: vec![VariantSchedule {
                replaces: BitMap::from_indices(2, &[0, 1]),
                entries: vec![mapping(1, 9, 1)],
            }],
        };
        assert!(s.validate().is_err());
        // Valid case.
        let ok = ScheduleRequest {
            master: MasterSchedule::new(vec![mapping(1, 1, 1), mapping(1, 2, 1)]),
            variants: vec![VariantSchedule::replacing(2, &[(0, mapping(1, 9, 1))])],
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn request_list_validation() {
        assert!(ScheduleRequestList::default().validate().is_err());
        let ok = ScheduleRequestList::single(vec![mapping(1, 1, 1)]);
        assert!(ok.validate().is_ok());
    }
}
