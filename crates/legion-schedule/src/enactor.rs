//! The Enactor (Fig. 6) — the schedule implementor.
//!
//! ```text
//! &LegionScheduleFeedback make_reservations(&LegionScheduleList);
//! int cancel_reservations(&LegionScheduleRequestList);
//! &LegionScheduleRequestList enact_schedule(&LegionScheduleRequestList);
//! ```
//!
//! "the Enactor negotiates with the resources objects named in the
//! schedule to instantiate the objects. Note that this may require the
//! Enactor to negotiate with several resources from different
//! administrative domains to perform co-allocation." (§3)
//!
//! Variant walking implements the paper's thrash avoidance:
//! "Implementing the variant schedule entails making new reservations
//! for items in the variant schedule and canceling any corresponding
//! reservations from the master schedule. Our default Schedulers and
//! Enactor work together to structure the variant schedules so as to
//! avoid reservation thrashing (the canceling and subsequent remaking of
//! the same reservation). Our data structure includes a bitmap field
//! ... which allows the Enactor to efficiently select the next variant
//! schedule to try." (§3.4)
//!
//! Concretely: reservations for positions whose mapping a variant leaves
//! unchanged are **kept**, not cancelled and remade; the next variant is
//! chosen by bitmap so that it covers the positions that actually
//! failed. The `reservation_thrash` metric counts any remake of a
//! (position, mapping) pair previously cancelled — the quantity
//! experiment E-F5 reports with the bitmap walk enabled vs disabled.

use crate::schedule::{
    FailureClass, Mapping, ScheduleFeedback, ScheduleOutcome, ScheduleRequest,
    ScheduleRequestList,
};
use legion_core::{
    LegionError, Loid, LoidKind, Placement, PlacementContext, ReservationRequest,
    ReservationStatus, ReservationToken, ReservationType, SimDuration, SimTime, SpanKind,
    SpanOutcome,
};
use legion_fabric::{Fabric, MetricsLedger, RegistrySnapshot};
use legion_trace::SpanGuard;
use rand::rngs::SmallRng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A successfully reserved schedule: the variant index used (`None` for
/// the master), the effective mappings, and the tokens held for them.
type ReservedSchedule = (Option<usize>, Vec<Mapping>, Vec<ReservationToken>);

/// Enactor tuning knobs.
#[derive(Debug, Clone)]
pub struct EnactorConfig {
    /// Reservation duration requested per mapping.
    pub duration: SimDuration,
    /// Reservation type requested.
    pub rtype: ReservationType,
    /// Confirmation timeout for instantaneous reservations.
    pub timeout: SimDuration,
    /// Upper bound on schedules tried per request entry (master counts
    /// as one; each variant as one more).
    pub max_attempts: usize,
    /// Disable the bitmap-guided delta walk (ablation for E-F5): when
    /// false, every variant attempt cancels **all** held reservations
    /// and remakes the full schedule — the naive strategy.
    pub bitmap_walk: bool,
    /// All-or-nothing enactment: on instantiation failure, destroy the
    /// already-started objects and cancel unused reservations.
    pub atomic_enact: bool,
    /// Domain presented to host autonomy policies.
    pub requester_domain: Option<String>,
    /// First retry delay when failures are transient and no variant
    /// remains to switch to. Doubles per retry (capped); the wait
    /// advances the virtual clock.
    pub backoff_base: SimDuration,
    /// Upper bound on a single backoff delay.
    pub backoff_cap: SimDuration,
    /// Total virtual-time budget for one `make_reservations` call,
    /// measured from its start. `None` leaves only `max_attempts` as
    /// the bound. When the budget lapses the request fails with
    /// [`FailureClass::DeadlineExceeded`] instead of burning the
    /// remaining attempts.
    pub deadline: Option<SimDuration>,
    /// Width of the concurrent reservation fan-out: how many worker
    /// threads one attempt may use to issue its `reserve_one` calls —
    /// the paper's co-allocation "negotiat[ion] with several resources
    /// from different administrative domains" (§3) run in parallel.
    /// `1` (the default) reproduces the serial fill pass bit-for-bit;
    /// wider fan-outs keep the same failure classification and ledger
    /// deltas because results are re-ordered by position before
    /// classification and hosts stay the sole admission arbiters.
    pub fanout: usize,
}

impl Default for EnactorConfig {
    fn default() -> Self {
        EnactorConfig {
            duration: SimDuration::from_secs(3600),
            rtype: ReservationType::ONE_SHOT_TIME,
            timeout: SimDuration::from_secs(30),
            max_attempts: 32,
            bitmap_walk: true,
            atomic_enact: true,
            requester_domain: None,
            backoff_base: SimDuration::from_millis(500),
            backoff_cap: SimDuration::from_secs(15),
            deadline: None,
            fanout: 1,
        }
    }
}

/// The Enactor service object.
pub struct Enactor {
    loid: Loid,
    fabric: Arc<Fabric>,
    config: EnactorConfig,
    /// Reservation negotiations currently in flight — the saturation
    /// signal the ingress front door sheds load on. Bumped for the
    /// whole of `make_reservations` (backoffs included: a request
    /// parked in a backoff still occupies the Enactor).
    in_flight: std::sync::atomic::AtomicU64,
}

/// Decrements the in-flight gauge on every exit path (including the
/// early returns inside `make_reservations`).
struct InFlightGuard<'a>(&'a std::sync::atomic::AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Enactor {
    /// An Enactor with default configuration.
    pub fn new(fabric: Arc<Fabric>) -> Self {
        Self::with_config(fabric, EnactorConfig::default())
    }

    /// An Enactor with explicit configuration.
    pub fn with_config(fabric: Arc<Fabric>, config: EnactorConfig) -> Self {
        Enactor {
            loid: Loid::fresh(LoidKind::Service),
            fabric,
            config,
            in_flight: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// This Enactor's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }

    /// Reservation negotiations currently in flight. This is the
    /// Enactor-tier saturation signal: a front door comparing it
    /// against its configured limit can shed load (typed `Saturated`
    /// rejections) instead of letting every tenant's requests pile onto
    /// an Enactor already deep in retry/backoff.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The active configuration.
    pub fn config(&self) -> &EnactorConfig {
        &self.config
    }

    fn metrics(&self) -> &MetricsLedger {
        self.fabric.metrics()
    }

    /// The domain name presented to host autonomy policies: the
    /// configured one, or the Enactor's own domain. Resolved once per
    /// `reserve_schedule` call instead of once per mapping.
    fn requester_domain(&self) -> Option<String> {
        self.config.requester_domain.clone().or_else(|| {
            let dom = self.fabric.domain_of(self.loid);
            self.fabric
                .topology(|t| t.domains().get(dom.0 as usize).map(|d| d.name.clone()))
        })
    }

    /// Builds the reservation request for one mapping. Class demand is
    /// memoized in `demand` (one `report()` per class per schedule
    /// attempt, not per mapping) and the requester domain is passed in
    /// pre-resolved, so the fill pass hands workers ready-made requests.
    fn request_with(
        &self,
        m: &Mapping,
        demand: &mut HashMap<Loid, (u32, u32)>,
        requester: &Option<String>,
    ) -> ReservationRequest {
        let (cpu, mem) = *demand.entry(m.class).or_insert_with(|| {
            self.fabric
                .lookup_class(m.class)
                .map(|c| {
                    let r = c.report();
                    (r.cpu_centis, r.memory_mb)
                })
                .unwrap_or((100, 64))
        });
        ReservationRequest {
            class: m.class,
            vault: m.vault,
            rtype: self.config.rtype,
            start: None,
            duration: self.config.duration,
            timeout: Some(self.config.timeout),
            cpu_centis: cpu,
            memory_mb: mem,
            requester_domain: requester.clone(),
        }
    }

    /// One reservation attempt against the host named by `m`, resolving
    /// the host and its domain from a per-attempt registry snapshot.
    /// `rng`: `Some` draws any loss decision from the caller's stream
    /// (fan-out workers), `None` uses the fabric's shared stream (the
    /// serial path, bit-identical to pre-fan-out behaviour).
    fn reserve_one(
        &self,
        registry: &RegistrySnapshot,
        m: &Mapping,
        req: &ReservationRequest,
        rng: Option<&mut SmallRng>,
    ) -> Result<ReservationToken, LegionError> {
        self.fabric.link_via(registry, self.loid, m.host, rng)?;
        let host = registry.lookup_host(m.host).ok_or(LegionError::NoSuchHost(m.host))?;
        let now = self.fabric.clock().now();
        host.make_reservation(req, now)
    }

    /// Cancels one held token (best effort; the host may be gone). The
    /// span absorbs the cancel message's simulated latency, so the
    /// enact-stage histograms include the cancel path — previously the
    /// ledger counted cancels without any sim-time reading. Returns
    /// whether the host actually released the token, so callers can
    /// account per token cancelled rather than per call — the quantity
    /// that reconciles against the ledger's `reservations_cancelled`.
    fn cancel_one(&self, token: &ReservationToken) -> bool {
        let span = self.fabric.tracer().span(SpanKind::CancelReservation);
        span.attr("host", token.host.to_string());
        if self.fabric.link(self.loid, token.host).is_err() {
            span.end_with(SpanOutcome::Infrastructure);
            return false;
        }
        let Some(host) = self.fabric.lookup_host(token.host) else {
            span.end_with(SpanOutcome::HostDown);
            return false;
        };
        match host.cancel_reservation(token) {
            Ok(()) => {
                span.end_ok();
                true
            }
            Err(e) => {
                span.end_with(SpanOutcome::from_error(&e));
                false
            }
        }
    }

    /// `make_reservations` (Fig. 6): walk the request list, trying each
    /// master and its variants until one schedule fully reserves.
    pub fn make_reservations(&self, request: &ScheduleRequestList) -> ScheduleFeedback {
        self.in_flight.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _gauge = InFlightGuard(&self.in_flight);
        let span = self.fabric.tracer().span(SpanKind::MakeReservations);
        span.attr("schedules", request.schedules.len() as i64);
        if let Err(LegionError::MalformedSchedule(why)) = request.validate() {
            span.end_with(SpanOutcome::Malformed);
            return ScheduleFeedback {
                request: request.clone(),
                outcome: ScheduleOutcome::Failed(FailureClass::Malformed(why)),
                reservations: Vec::new(),
                mappings: Vec::new(),
            };
        }

        let deadline = self
            .config
            .deadline
            .map(|budget| self.fabric.clock().now() + budget);
        let mut failure = FailureClass::ResourceUnavailable;
        for (si, sched) in request.schedules.iter().enumerate() {
            match self.reserve_schedule(sched, deadline) {
                Ok((variant, mappings, tokens)) => {
                    MetricsLedger::bump(&self.metrics().schedules_reserved);
                    span.attr("schedule", si as i64);
                    span.attr("variant", variant.map(|v| v as i64).unwrap_or(-1));
                    span.end_ok();
                    return ScheduleFeedback {
                        request: request.clone(),
                        outcome: ScheduleOutcome::Reserved { schedule: si, variant },
                        reservations: tokens,
                        mappings,
                    };
                }
                Err(FailureClass::DeadlineExceeded) => {
                    // The budget is per request, not per schedule — stop.
                    failure = FailureClass::DeadlineExceeded;
                    break;
                }
                Err(fc) => failure = fc,
            }
        }

        span.end_with(failure.span_outcome());
        ScheduleFeedback {
            request: request.clone(),
            outcome: ScheduleOutcome::Failed(failure),
            reservations: Vec::new(),
            mappings: Vec::new(),
        }
    }

    /// Tries a master and its variants; on success returns the
    /// [`ReservedSchedule`] (variant index used, effective mappings and
    /// their tokens); on failure the class of the failure.
    ///
    /// When failures are transient and no untried variant covers the
    /// failed positions, the Enactor waits out a capped exponential
    /// backoff (with deterministic jitter, advancing the virtual clock)
    /// and retries the same mappings — contention and network weather
    /// pass. Failures that are *permanent for their host* (`HostDown`,
    /// `NoSuchHost`) are never retried in place: with no variant left to
    /// move to, the attempt is abandoned immediately instead of burning
    /// `max_attempts` against a dead machine.
    fn reserve_schedule(
        &self,
        sched: &ScheduleRequest,
        deadline: Option<SimTime>,
    ) -> Result<ReservedSchedule, FailureClass> {
        let n = sched.master.len();
        let mut current: Vec<Mapping> = sched.master.mappings.clone();
        let mut held: Vec<Option<ReservationToken>> = vec![None; n];
        // (position, mapping) pairs previously cancelled — for thrash
        // accounting.
        let mut cancelled_before: HashSet<(usize, Mapping)> = HashSet::new();
        let mut tried_variants: Vec<bool> = vec![false; sched.variants.len()];
        let mut attempts = 0usize;
        // `None` = the pure master; `Some(vi)` = variant vi.
        let mut plan: Option<usize> = None;
        let mut backoff = self.config.backoff_base;
        // Jitter stream derived from the fabric seed and the virtual
        // start time: deterministic for a given run, decorrelated
        // between requests.
        let mut jitter_rng = self
            .fabric
            .rng()
            .stream_indexed("enactor-backoff", self.fabric.clock().now().as_micros());
        let mut failure;
        let mut slept = false;
        // Per-call request-building caches: class demand and the
        // requester domain are invariant across attempts, so resolve
        // them once instead of per mapping per attempt.
        let mut demand: HashMap<Loid, (u32, u32)> = HashMap::new();
        let requester = self.requester_domain();

        loop {
            if deadline.is_some_and(|d| self.fabric.clock().now() >= d) {
                failure = FailureClass::DeadlineExceeded;
                break;
            }
            attempts += 1;
            MetricsLedger::bump(&self.metrics().schedules_attempted);
            let attempt_span = self.fabric.tracer().span(SpanKind::ReserveAttempt);
            attempt_span.attr("attempt", attempts as i64);
            attempt_span.attr("variant", plan.map(|v| v as i64).unwrap_or(-1));
            // Positions whose reservation the bitmap walk carried over
            // from the previous attempt — each one is a cancel+remake
            // (thrash) the variant structure avoided.
            attempt_span
                .attr("kept", held.iter().filter(|slot| slot.is_some()).count() as i64);

            // A backoff may have outlived a held token's confirmation
            // timeout — drop any hold that is no longer live so the
            // position is refilled instead of enacted with a dead token.
            if slept {
                slept = false;
                for slot in held.iter_mut() {
                    let live = slot.as_ref().is_some_and(|tok| {
                        self.fabric.link(self.loid, tok.host).is_ok()
                            && self.fabric.lookup_host(tok.host).is_some_and(|h| {
                                matches!(
                                    h.check_reservation(tok, self.fabric.clock().now()),
                                    Ok(ReservationStatus::Pending | ReservationStatus::Active)
                                )
                            })
                    });
                    if slot.is_some() && !live {
                        *slot = None;
                    }
                }
            }

            // Fill every position lacking a token under the current
            // mapping; remember which positions fail and why. Thrash is
            // accounted on the coordinating thread before dispatch; the
            // reservations themselves may fan out across workers.
            let pending: Vec<usize> = (0..n).filter(|&i| held[i].is_none()).collect();
            let mut thrash = 0i64;
            for &i in &pending {
                if cancelled_before.contains(&(i, current[i].clone())) {
                    MetricsLedger::bump(&self.metrics().reservation_thrash);
                    thrash += 1;
                }
            }
            let results = self.fill_positions(
                &pending,
                &current,
                &mut demand,
                &requester,
                attempts,
                &attempt_span,
            );
            let mut failed: Vec<usize> = Vec::new();
            let mut errors: Vec<LegionError> = Vec::new();
            // `results` is in position order, so `errors` carries the
            // same order the serial pass produced — classification
            // below is width-independent.
            for (i, res) in results {
                match res {
                    Ok(tok) => held[i] = Some(tok),
                    Err(e) => {
                        failed.push(i);
                        errors.push(e);
                    }
                }
            }
            attempt_span.attr("thrash", thrash);
            attempt_span.attr("failed", failed.len() as i64);

            if failed.is_empty() {
                attempt_span.end_ok();
                let tokens = held.into_iter().map(|t| t.expect("all positions held")).collect();
                return Ok((plan, current, tokens));
            }
            failure = Self::classify_attempt(&errors);
            attempt_span.end_with(failure.span_outcome());

            if attempts >= self.config.max_attempts {
                break;
            }

            // Select the next variant: prefer one covering *all* failed
            // positions, then one covering any, then any untried.
            let next = self.pick_variant(sched, &tried_variants, &failed);
            let Some(vi) = next else {
                // No variant left to switch to. Only network weather
                // (message drops, partitions) is worth waiting out in
                // place: capacity denials won't change within one
                // request's horizon, and dead hosts stay dead —
                // retrying identical mappings there just burns the
                // remaining attempts.
                if !errors.iter().any(|e| matches!(e, LegionError::NetworkFailure { .. })) {
                    break;
                }
                // Wait out a capped, jittered backoff (within the
                // deadline budget) and retry the same mappings.
                let delay = self.jittered(backoff, &mut jitter_rng);
                if deadline.is_some_and(|d| self.fabric.clock().now() + delay >= d) {
                    failure = FailureClass::DeadlineExceeded;
                    break;
                }
                let backoff_span = self.fabric.tracer().span(SpanKind::Backoff);
                backoff_span.attr("delay_us", delay.as_micros() as i64);
                backoff_span.attr("attempt", attempts as i64);
                // Under the discrete-event scheduler this parks the
                // episode's task on a wake event — other episodes run
                // during the backoff; the thread path advances the
                // shared clock directly as before.
                self.fabric.wait(delay);
                backoff_span.end_ok();
                MetricsLedger::bump(&self.metrics().enactor_backoffs);
                backoff = SimDuration::from_micros(
                    (backoff.as_micros() * 2).min(self.config.backoff_cap.as_micros()),
                );
                slept = true;
                continue;
            };
            tried_variants[vi] = true;
            plan = Some(vi);

            let variant = &sched.variants[vi];
            if self.config.bitmap_walk {
                // Delta walk: cancel and remap only replaced positions;
                // failed-but-unreplaced positions keep their (absent)
                // token slot and are retried with the same mapping.
                for pos in variant.replaces.iter_ones() {
                    if let Some(tok) = held[pos].take() {
                        cancelled_before.insert((pos, current[pos].clone()));
                        self.cancel_one(&tok);
                    }
                    if let Some(m) = variant.replacement_for(pos) {
                        current[pos] = m.clone();
                    }
                }
            } else {
                // Naive walk (ablation): drop everything and rebuild the
                // whole schedule under the variant.
                for (pos, slot) in held.iter_mut().enumerate() {
                    if let Some(tok) = slot.take() {
                        cancelled_before.insert((pos, current[pos].clone()));
                        self.cancel_one(&tok);
                    }
                }
                current = sched.resolve(Some(vi));
            }
        }

        // Back out of any partial holds.
        for tok in held.into_iter().flatten() {
            self.cancel_one(&tok);
        }
        Err(failure)
    }

    /// One fill pass: reserves every `pending` position of `current`,
    /// returning `(position, outcome)` pairs **sorted by position** so
    /// callers observe the serial pass's error order regardless of
    /// width.
    ///
    /// With `fanout <= 1` (or one position) this is the plain serial
    /// loop, drawing loss from the fabric's shared stream — bit-for-bit
    /// the pre-fan-out behaviour. Wider, the positions are strided
    /// across scoped worker threads (the coordinating thread works the
    /// first bucket itself, so width k spawns k-1 threads). Safety and
    /// determinism:
    ///
    /// * hosts arbitrate admission under their own reservation-table
    ///   locks, so concurrent `make_reservation` calls cannot
    ///   over-commit — the property `tests/concurrency.rs` pins;
    /// * every mapping resolves against one shared [`RegistrySnapshot`]
    ///   taken for the attempt (no registry lock contention, and all
    ///   workers see the same registry state);
    /// * each position draws loss from its own `DetRng` stream keyed by
    ///   (master seed, attempt nonce, position), so the draw a mapping
    ///   sees is a pure function of the seed — independent of worker
    ///   count, striding, and join order, and identical for any width
    ///   k > 1;
    /// * workers adopt the attempt span's [`SpanContext`], so message
    ///   latency they charge lands on the same `ReserveAttempt` span
    ///   the serial pass charges.
    ///
    /// [`SpanContext`]: legion_trace::SpanContext
    fn fill_positions(
        &self,
        pending: &[usize],
        current: &[Mapping],
        demand: &mut HashMap<Loid, (u32, u32)>,
        requester: &Option<String>,
        attempt: usize,
        attempt_span: &SpanGuard,
    ) -> Vec<(usize, Result<ReservationToken, LegionError>)> {
        let registry = self.fabric.registry();
        let jobs: Vec<(usize, ReservationRequest)> = pending
            .iter()
            .map(|&i| (i, self.request_with(&current[i], demand, requester)))
            .collect();
        let width = self.config.fanout.max(1).min(jobs.len().max(1));
        if width <= 1 {
            return jobs
                .into_iter()
                .map(|(i, req)| (i, self.reserve_one(&registry, &current[i], &req, None)))
                .collect();
        }

        // Attempt nonce for the per-position loss streams: virtual time
        // decorrelates calls, the attempt counter decorrelates retries
        // of the same mapping at an unadvanced clock.
        let nonce = self
            .fabric
            .clock()
            .now()
            .as_micros()
            .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let reserve = |(i, req): (usize, ReservationRequest)| {
            let mut rng = self.fabric.rng().stream_indexed2("enactor-fanout", nonce, i as u64);
            (i, self.reserve_one(&registry, &current[i], &req, Some(&mut rng)))
        };
        let mut buckets: Vec<Vec<(usize, ReservationRequest)>> =
            (0..width).map(|_| Vec::new()).collect();
        for (k, job) in jobs.into_iter().enumerate() {
            buckets[k % width].push(job);
        }
        let ctx = attempt_span.context();
        let mut results = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .drain(1..)
                .map(|bucket| {
                    let ctx = ctx.clone();
                    let reserve = &reserve;
                    scope.spawn(move || {
                        let _adopted = ctx.enter();
                        bucket.into_iter().map(reserve).collect::<Vec<_>>()
                    })
                })
                .collect();
            // The coordinating thread works bucket 0 itself; its
            // context stack already has the attempt span on top.
            let mut out: Vec<_> =
                buckets.pop().expect("bucket 0").into_iter().map(&reserve).collect();
            for h in handles {
                out.extend(h.join().expect("reservation fan-out worker panicked"));
            }
            out
        });
        results.sort_unstable_by_key(|&(i, _)| i);
        results
    }

    /// The class reported for one failed fill pass: all-dead-hosts is
    /// `HostDown`; otherwise the first error that is not a dead host
    /// sets the class (resource denials dominate infrastructure noise).
    fn classify_attempt(errors: &[LegionError]) -> FailureClass {
        if !errors.is_empty() && errors.iter().all(|e| e.is_permanent_for_host()) {
            return FailureClass::HostDown;
        }
        errors
            .iter()
            .find(|e| !e.is_permanent_for_host())
            .map(FailureClass::classify)
            .unwrap_or(FailureClass::ResourceUnavailable)
    }

    /// Half-to-full jitter on a backoff delay, from the fabric stream.
    fn jittered(&self, backoff: SimDuration, rng: &mut rand::rngs::SmallRng) -> SimDuration {
        use rand::Rng;
        let us = backoff.as_micros().max(2);
        SimDuration::from_micros(us / 2 + rng.gen_range(0..=us / 2))
    }

    /// Bitmap-guided variant selection.
    fn pick_variant(
        &self,
        sched: &ScheduleRequest,
        tried: &[bool],
        failed: &[usize],
    ) -> Option<usize> {
        let untried = || (0..sched.variants.len()).filter(|&i| !tried[i]);
        // Covers all failed positions?
        if let Some(vi) = untried().find(|&i| {
            failed.iter().all(|&p| {
                p < sched.variants[i].replaces.len() && sched.variants[i].replaces.get(p)
            })
        }) {
            return Some(vi);
        }
        // Covers at least one failed position?
        if let Some(vi) = untried().find(|&i| {
            failed.iter().any(|&p| {
                p < sched.variants[i].replaces.len() && sched.variants[i].replaces.get(p)
            })
        }) {
            return Some(vi);
        }
        untried().next()
    }

    /// `cancel_reservations` (Fig. 6): releases every token in the
    /// feedback. Returns how many tokens the hosts actually released —
    /// the paper's `int` return — counted per token, not per call, so
    /// fan-out partial-failure cleanup reconciles exactly against the
    /// ledger's `reservations_cancelled` counter.
    pub fn cancel_reservations(&self, feedback: &ScheduleFeedback) -> usize {
        feedback.reservations.iter().filter(|tok| self.cancel_one(tok)).count()
    }

    /// `enact_schedule` (Fig. 6): instantiates the objects through their
    /// Class objects, using the directed-placement `create_instance`
    /// (§3.4). Returns the instances created, in mapping order.
    pub fn enact_schedule(
        &self,
        feedback: &ScheduleFeedback,
    ) -> Result<Vec<(Mapping, Loid)>, LegionError> {
        let span = self.fabric.tracer().span(SpanKind::EnactSchedule);
        span.attr("mappings", feedback.mappings.len() as i64);
        if !feedback.reserved() {
            span.end_with(SpanOutcome::Error("unreserved feedback".into()));
            return Err(LegionError::Other("enact_schedule on unreserved feedback".into()));
        }
        let mut created: Vec<(Mapping, Loid)> = Vec::with_capacity(feedback.mappings.len());
        for (m, tok) in feedback.mappings.iter().zip(&feedback.reservations) {
            let inst_span = self.fabric.tracer().span(SpanKind::EnactInstantiation);
            inst_span.attr("class", m.class.to_string());
            inst_span.attr("host", m.host.to_string());
            // Count the attempt up front so the counter and the span
            // agree even when the instantiation message is lost.
            MetricsLedger::bump(&self.metrics().enact_instantiations);
            let step = (|| -> Result<Loid, LegionError> {
                self.fabric.link(self.loid, m.class)?;
                let class = self
                    .fabric
                    .lookup_class(m.class)
                    .ok_or(LegionError::NoSuchObject(m.class))?;
                let placement =
                    Placement { host: m.host, vault: m.vault, token: tok.clone() };
                class.create_instance(Some(placement), &*self.fabric)
            })();
            match step {
                Ok(instance) => {
                    inst_span.end_ok();
                    created.push((m.clone(), instance));
                }
                Err(e) => {
                    inst_span.end_with(SpanOutcome::from_error(&e));
                    if self.config.atomic_enact {
                        // Roll back: destroy started instances, release
                        // the unused reservations.
                        for (dm, inst) in &created {
                            if let Some(class) = self.fabric.lookup_class(dm.class) {
                                let _ = class.destroy_instance(*inst, &*self.fabric);
                            }
                        }
                        for tok in
                            &feedback.reservations[created.len().min(feedback.reservations.len())..]
                        {
                            self.cancel_one(tok);
                        }
                    }
                    span.attr("created", created.len() as i64);
                    span.end_with(SpanOutcome::from_error(&e));
                    return Err(e);
                }
            }
        }
        span.attr("created", created.len() as i64);
        span.end_ok();
        Ok(created)
    }
}
