//! A compact bit set.
//!
//! "Our data structure includes a bitmap field (one bit per object
//! mapping) for each variant schedule which allows the Enactor to
//! efficiently select the next variant schedule to try." (§3.4)

/// A fixed-length bit set, one bit per master-schedule mapping.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitMap {
    len: usize,
    words: Vec<u64>,
}

impl BitMap {
    /// An all-zeros bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        BitMap { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over set-bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Whether any set bit is shared with `other`.
    pub fn intersects(&self, other: &BitMap) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Builds a bitmap of `len` bits with the given indices set.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut b = BitMap::new(len);
        for &i in indices {
            b.set(i);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitMap::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_ascending_across_words() {
        let b = BitMap::from_indices(130, &[129, 0, 64, 7]);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 7, 64, 129]);
    }

    #[test]
    fn intersects() {
        let a = BitMap::from_indices(10, &[1, 3]);
        let b = BitMap::from_indices(10, &[3, 5]);
        let c = BitMap::from_indices(10, &[0, 2]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        BitMap::new(8).get(8);
    }

    #[test]
    fn empty() {
        let b = BitMap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }
}
