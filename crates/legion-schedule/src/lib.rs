//! Schedules and the Enactor.
//!
//! This crate implements the paper's schedule data structure (**Fig. 5**)
//! — a list of master schedules, each with variant schedules carrying a
//! per-variant bitmap — and the **Enactor** (**Fig. 6**), the "schedule
//! implementor" that obtains reservations from the Hosts and Vaults named
//! in a schedule, walks variants on failure while avoiding reservation
//! thrashing, and instantiates objects through Class objects once the
//! Scheduler confirms.

pub mod bitmap;
pub mod enactor;
pub mod schedule;

pub use bitmap::BitMap;
pub use enactor::{Enactor, EnactorConfig};
pub use schedule::{
    FailureClass, Mapping, MasterSchedule, ScheduleFeedback, ScheduleOutcome, ScheduleRequest,
    ScheduleRequestList, VariantSchedule,
};
