//! Direct tests of the StandardHost against the Table 1 contract.

use legion_core::host::well_known;
use legion_core::{
    AttributeDb, EventKind, Guard, HostObject, LegionError, Loid, LoidKind, ObjectSpec,
    ReservationRequest, ReservationStatus, SimDuration, SimTime, Trigger, VaultDirectory,
    VaultObject,
};
use legion_hosts::{BackgroundLoad, HostConfig, LoadCeiling, StandardHost};
use legion_vaults::{StandardVault, VaultConfig};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A standalone vault directory for host-level tests.
#[derive(Default)]
struct Dir {
    vaults: RwLock<BTreeMap<Loid, Arc<dyn VaultObject>>>,
}

impl Dir {
    fn add(&self, config: VaultConfig) -> Loid {
        let v: Arc<dyn VaultObject> = Arc::new(StandardVault::new(config));
        let loid = v.loid();
        self.vaults.write().insert(loid, v);
        loid
    }
}

impl VaultDirectory for Dir {
    fn lookup_vault(&self, loid: Loid) -> Option<Arc<dyn VaultObject>> {
        self.vaults.read().get(&loid).cloned()
    }

    fn vault_loids(&self) -> Vec<Loid> {
        self.vaults.read().keys().copied().collect()
    }
}

fn setup() -> (Arc<Dir>, Arc<StandardHost>, Loid, Loid) {
    let dir = Arc::new(Dir::default());
    let vault = dir.add(VaultConfig::default());
    let host = StandardHost::new(
        HostConfig::unix("h0", "uva.edu"),
        Arc::clone(&dir) as Arc<dyn VaultDirectory>,
        11,
    );
    let class = Loid::synthetic(LoidKind::Class, 1);
    (dir, host, vault, class)
}

fn req(class: Loid, vault: Loid) -> ReservationRequest {
    ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(600))
        .with_demand(25, 64)
}

#[test]
fn reservation_requires_known_vault() {
    let (_, host, _, class) = setup();
    let ghost = Loid::synthetic(LoidKind::Vault, 99);
    let err = host.make_reservation(&req(class, ghost), SimTime::ZERO);
    assert!(matches!(err, Err(LegionError::VaultUnreachable { .. })));
}

#[test]
fn reservation_requires_compatible_vault() {
    let (dir, host, _, class) = setup();
    // A vault that only accepts hosts in another domain.
    let picky = dir.add(VaultConfig {
        accepted_domains: vec!["elsewhere.org".into()],
        ..Default::default()
    });
    let err = host.make_reservation(&req(class, picky), SimTime::ZERO);
    assert!(matches!(err, Err(LegionError::VaultIncompatible { .. })));
    assert!(!host.vault_ok(picky));
}

#[test]
fn compatible_vaults_reflect_directory_growth() {
    let (dir, host, vault, _) = setup();
    assert_eq!(host.get_compatible_vaults(), vec![vault]);
    let second = dir.add(VaultConfig { name: "v2".into(), ..Default::default() });
    let mut got = host.get_compatible_vaults();
    got.sort();
    let mut want = vec![vault, second];
    want.sort();
    assert_eq!(got, want, "new vaults are discovered without re-registration");
}

#[test]
fn start_object_rejects_wrong_class_spec() {
    let (_, host, vault, class) = setup();
    let other = Loid::synthetic(LoidKind::Class, 2);
    let tok = host.make_reservation(&req(class, vault), SimTime::ZERO).unwrap();
    let err = host.start_object(&tok, &[ObjectSpec::new(other)], SimTime::ZERO);
    assert!(matches!(err, Err(LegionError::MalformedSchedule(_))));
    // The failed start must not have consumed the one-shot token.
    host.start_object(&tok, &[ObjectSpec::new(class)], SimTime::ZERO).unwrap();
}

#[test]
fn start_object_with_empty_specs_fails() {
    let (_, host, vault, class) = setup();
    let tok = host.make_reservation(&req(class, vault), SimTime::ZERO).unwrap();
    assert!(host.start_object(&tok, &[], SimTime::ZERO).is_err());
}

#[test]
fn kill_frees_capacity_and_reservation() {
    let (_, host, vault, class) = setup();
    // Full-machine shared demand.
    let big = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(600))
        .with_demand(100, 256);
    let tok = host.make_reservation(&big, SimTime::ZERO).unwrap();
    let obj = host.start_object(&tok, &[ObjectSpec::new(class)], SimTime::ZERO).unwrap()[0];
    // No capacity left for another full-CPU request.
    assert!(host.make_reservation(&big, SimTime::from_secs(1)).is_err());
    host.kill_object(obj).unwrap();
    // Early release (the one-shot job ended): capacity is back.
    host.make_reservation(&big, SimTime::from_secs(2)).unwrap();
    assert!(matches!(host.kill_object(obj), Err(LegionError::NoSuchObject(_))));
}

#[test]
fn deactivation_stores_opr_then_removes_object() {
    let (dir, host, vault, class) = setup();
    let tok = host.make_reservation(&req(class, vault), SimTime::ZERO).unwrap();
    let mut spec = ObjectSpec::new(class);
    spec.initial_state = b"precious".to_vec();
    spec.memory_mb = 48;
    let obj = host.start_object(&tok, &[spec], SimTime::ZERO).unwrap()[0];

    let opr = host.deactivate_object(obj, SimTime::from_secs(5)).unwrap();
    assert_eq!(&opr.state[..], b"precious");
    assert_eq!(opr.memory_mb, 48);
    assert_eq!(opr.class, class);
    assert!(host.running_objects().is_empty());
    assert!(dir.lookup_vault(vault).unwrap().holds(obj));

    // Reactivation restores it.
    host.reactivate_object(&opr, SimTime::from_secs(6)).unwrap();
    assert_eq!(host.running_objects(), vec![obj]);
}

#[test]
fn deactivation_fails_if_vault_cannot_store() {
    let (dir, host, _, class) = setup();
    // A tiny vault that cannot hold the object's state.
    let tiny = dir.add(VaultConfig { capacity_bytes: 4, ..Default::default() });
    let tok = host
        .make_reservation(&req(class, tiny), SimTime::ZERO)
        .expect("reservation fine");
    let mut spec = ObjectSpec::new(class);
    spec.initial_state = vec![0u8; 64];
    let obj = host.start_object(&tok, &[spec], SimTime::ZERO).unwrap()[0];

    let err = host.deactivate_object(obj, SimTime::from_secs(1));
    assert!(matches!(err, Err(LegionError::VaultFull(_))));
    // Crucially, the object still runs — state was never lost.
    assert_eq!(host.running_objects(), vec![obj]);
}

#[test]
fn attributes_track_running_objects_and_memory() {
    let (_, host, vault, class) = setup();
    let before = host.attributes();
    assert_eq!(before.get_i64(well_known::RUNNING_OBJECTS), Some(0));
    let free_before = before.get_i64(well_known::FREE_MEMORY_MB).unwrap();

    let tok = host.make_reservation(&req(class, vault), SimTime::ZERO).unwrap();
    let mut spec = ObjectSpec::new(class);
    spec.memory_mb = 100;
    host.start_object(&tok, &[spec], SimTime::ZERO).unwrap();

    let after = host.attributes();
    assert_eq!(after.get_i64(well_known::RUNNING_OBJECTS), Some(1));
    assert_eq!(
        after.get_i64(well_known::FREE_MEMORY_MB),
        Some(free_before - 100)
    );
}

#[test]
fn reassess_updates_load_from_background_model() {
    let (_, host, _, _) = setup();
    host.set_background_load(BackgroundLoad::steady(1.25));
    host.reassess(SimTime::from_secs(30));
    assert_eq!(host.attributes().get_f64(well_known::LOAD), Some(1.25));
}

#[test]
fn policy_chain_applies_in_order_and_denies() {
    let (_, host, vault, class) = setup();
    host.set_background_load(BackgroundLoad::steady(3.0));
    host.reassess(SimTime::ZERO);
    host.add_policy(Arc::new(LoadCeiling { max_load: 2.0 }));
    let err = host.make_reservation(&req(class, vault), SimTime::ZERO);
    match err {
        Err(LegionError::PolicyRefused { policy, .. }) => {
            assert!(policy.starts_with("load-ceiling"), "{policy}");
        }
        other => panic!("expected policy refusal, got {other:?}"),
    }
    // Load drops: the same request is accepted.
    host.set_background_load(BackgroundLoad::steady(0.5));
    host.reassess(SimTime::from_secs(30));
    host.make_reservation(&req(class, vault), SimTime::from_secs(30)).unwrap();
}

#[test]
fn check_reservation_lifecycle() {
    let (_, host, vault, class) = setup();
    let tok = host.make_reservation(&req(class, vault), SimTime::ZERO).unwrap();
    assert_eq!(
        host.check_reservation(&tok, SimTime::ZERO).unwrap(),
        ReservationStatus::Active
    );
    host.start_object(&tok, &[ObjectSpec::new(class)], SimTime::from_secs(1)).unwrap();
    assert_eq!(
        host.check_reservation(&tok, SimTime::from_secs(1)).unwrap(),
        ReservationStatus::Consumed
    );
    let tok2 = host.make_reservation(&req(class, vault), SimTime::from_secs(1)).unwrap();
    host.cancel_reservation(&tok2).unwrap();
    assert_eq!(
        host.check_reservation(&tok2, SimTime::from_secs(1)).unwrap(),
        ReservationStatus::Cancelled
    );
}

#[test]
fn trigger_guard_over_custom_attribute_combination() {
    let (_, host, vault, class) = setup();
    let fired = legion_core::rge::CollectingOutcall::new();
    host.register_outcall(Arc::clone(&fired) as Arc<dyn legion_core::Outcall>);
    host.register_trigger(
        Trigger::new(
            Guard::attr_gt(well_known::RUNNING_OBJECTS, 0.0)
                .and(Guard::attr_gt(well_known::LOAD, 1.0)),
            EventKind::Custom("busy-with-guests".into()),
        )
        .with_cooldown(SimDuration::ZERO),
    );

    // Load high but no objects: quiet.
    host.set_background_load(BackgroundLoad::steady(2.0));
    host.reassess(SimTime::from_secs(30));
    assert_eq!(fired.len(), 0);

    // Objects running and load high: fires.
    let tok = host.make_reservation(&req(class, vault), SimTime::from_secs(30)).unwrap();
    host.start_object(&tok, &[ObjectSpec::new(class)], SimTime::from_secs(31)).unwrap();
    host.reassess(SimTime::from_secs(60));
    assert_eq!(fired.len(), 1);
    let events = fired.take();
    assert_eq!(events[0].kind, EventKind::Custom("busy-with-guests".into()));
    // The event detail snapshots the attribute database.
    assert!(events[0].detail.get_f64(well_known::LOAD).unwrap() > 1.0);
}

#[test]
fn smp_reports_scaled_capacity() {
    let dir = Arc::new(Dir::default());
    dir.add(VaultConfig::default());
    let smp = StandardHost::new(
        HostConfig::smp("big", "uva.edu", 8),
        Arc::clone(&dir) as Arc<dyn VaultDirectory>,
        5,
    );
    let a = smp.attributes();
    assert_eq!(a.get_i64(well_known::NCPUS), Some(8));
    assert_eq!(a.get_i64(well_known::MEMORY_MB), Some(8 * 1024));
}

#[test]
fn reactivation_requires_an_opr_somewhere() {
    let (_, host, _, class) = setup();
    let orphan = legion_core::Opr::new(
        Loid::synthetic(LoidKind::Instance, 42),
        class,
        SimTime::ZERO,
        &b"ghost"[..],
    );
    assert!(matches!(
        host.reactivate_object(&orphan, SimTime::ZERO),
        Err(LegionError::NoSuchOpr(_))
    ));
}

#[test]
fn attribute_db_is_a_snapshot_not_a_view() {
    let (_, host, _, _) = setup();
    let snap: AttributeDb = host.attributes();
    host.set_background_load(BackgroundLoad::steady(3.0));
    host.reassess(SimTime::from_secs(30));
    // The old snapshot is unchanged; a fresh one sees the new load.
    assert_ne!(snap.get_f64(well_known::LOAD), Some(3.0));
    assert_eq!(host.attributes().get_f64(well_known::LOAD), Some(3.0));
}

#[test]
fn implementation_selection_validated_by_host() {
    use legion_core::ObjectImplementation;
    let (_, host, vault, class) = setup();
    let tok = host.make_reservation(&req(class, vault), SimTime::ZERO).unwrap();
    // The host is mips/IRIX; a sparc binary must be rejected.
    let wrong = ObjectSpec::new(class)
        .with_implementation(ObjectImplementation::new("sparc", "Solaris"));
    assert!(matches!(
        host.start_object(&tok, &[wrong], SimTime::ZERO),
        Err(LegionError::NoUsableImplementation { .. })
    ));
    // The matching binary is accepted (token unconsumed by the failure).
    let right = ObjectSpec::new(class)
        .with_implementation(ObjectImplementation::new("mips", "IRIX"));
    host.start_object(&tok, &[right], SimTime::ZERO).unwrap();
}
