//! Model-based property tests for the reservation table.
//!
//! The table is the host's capacity ledger; its core invariant is that
//! the resources held by live reservations never exceed the machine
//! (Table 2 semantics). We drive it with random operation sequences and
//! check invariants after every step.

use legion_core::{
    LegionError, Loid, LoidKind, ReservationRequest, ReservationToken, ReservationType,
    SimDuration, SimTime,
};
use legion_hosts::{ReservationTable, TableCapacity};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Request (share, reuse, cpu, mem, start_slot, dur_slots).
    Make { share: bool, reuse: bool, cpu: u32, mem: u32, start: u64, dur: u64 },
    /// Consume the i-th granted token (mod #granted).
    Consume(usize),
    /// Cancel the i-th granted token.
    Cancel(usize),
    /// Advance time by one slot and sweep.
    Tick,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<bool>(), any::<bool>(), 1u32..200, 1u32..600, 0u64..6, 1u64..4).prop_map(
            |(share, reuse, cpu, mem, start, dur)| Op::Make {
                share,
                reuse,
                cpu,
                mem,
                start,
                dur
            }
        ),
        (0usize..16).prop_map(Op::Consume),
        (0usize..16).prop_map(Op::Cancel),
        Just(Op::Tick),
    ]
}

const CAP_CPU: u32 = 400;
const CAP_MEM: u32 = 1024;
const SLOT: u64 = 100; // seconds per time slot

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After any operation sequence, resources held at any probed time
    /// never exceed capacity, and exclusive windows are never shared.
    #[test]
    fn held_never_exceeds_capacity(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let host = Loid::synthetic(LoidKind::Host, 1);
        let mut table = ReservationTable::new(
            host,
            7,
            TableCapacity { cpu_centis: CAP_CPU, memory_mb: CAP_MEM },
        );
        let mut now = SimTime::ZERO;
        let mut granted: Vec<ReservationToken> = Vec::new();

        for op in ops {
            match op {
                Op::Make { share, reuse, cpu, mem, start, dur } => {
                    let req = ReservationRequest::instantaneous(
                        Loid::synthetic(LoidKind::Class, 1),
                        Loid::synthetic(LoidKind::Vault, 1),
                        SimDuration::from_secs(dur * SLOT),
                    )
                    .with_type(ReservationType { share, reuse })
                    .with_demand(cpu, mem)
                    .starting_at(now + SimDuration::from_secs(start * SLOT));
                    match table.make(&req, now) {
                        Ok(tok) => granted.push(tok),
                        Err(LegionError::ReservationDenied { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Consume(i) if !granted.is_empty() => {
                    let tok = granted[i % granted.len()].clone();
                    // Any outcome is legal; state machine errors are typed.
                    match table.consume(&tok, now) {
                        Ok(())
                        | Err(LegionError::ReservationConsumed)
                        | Err(LegionError::ReservationExpired)
                        | Err(LegionError::ReservationDenied { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected consume error {e}"),
                    }
                }
                Op::Cancel(i) if !granted.is_empty() => {
                    let tok = granted[i % granted.len()].clone();
                    table.cancel(&tok).expect("genuine tokens always cancellable");
                }
                Op::Consume(_) | Op::Cancel(_) => {}
                Op::Tick => {
                    now += SimDuration::from_secs(SLOT);
                    table.sweep(now);
                }
            }

            // Invariant: capacity respected at a spread of probe times.
            for probe in 0..10u64 {
                let t = SimTime::from_secs(probe * SLOT);
                let (cpu, mem) = table.held_at(t);
                prop_assert!(cpu <= CAP_CPU, "cpu {cpu} over capacity at {t}");
                prop_assert!(mem <= CAP_MEM, "mem {mem} over capacity at {t}");
            }
        }
    }

    /// A granted token always verifies; a token from another table never
    /// does.
    #[test]
    fn token_provenance(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let host = Loid::synthetic(LoidKind::Host, 1);
        let cap = TableCapacity { cpu_centis: 100, memory_mb: 100 };
        let mut a = ReservationTable::new(host, seed_a, cap);
        let b = ReservationTable::new(host, seed_b, cap);
        let req = ReservationRequest::instantaneous(
            Loid::synthetic(LoidKind::Class, 1),
            Loid::synthetic(LoidKind::Vault, 1),
            SimDuration::from_secs(10),
        )
        .with_demand(10, 10);
        let tok = a.make(&req, SimTime::ZERO).unwrap();
        prop_assert!(a.verify(&tok));
        prop_assert!(!b.verify(&tok));
    }

    /// Disjoint exclusive windows all admit; overlapping ones admit at
    /// most one per window.
    #[test]
    fn exclusive_windows_partition(slots in proptest::collection::vec(0u64..8, 1..12)) {
        let host = Loid::synthetic(LoidKind::Host, 1);
        let mut table = ReservationTable::new(
            host,
            3,
            TableCapacity { cpu_centis: 100, memory_mb: 100 },
        );
        let mut per_slot = std::collections::BTreeMap::new();
        for &s in &slots {
            let req = ReservationRequest::instantaneous(
                Loid::synthetic(LoidKind::Class, 1),
                Loid::synthetic(LoidKind::Vault, 1),
                SimDuration::from_secs(SLOT),
            )
            .with_type(ReservationType::REUSABLE_SPACE)
            .starting_at(SimTime::from_secs(s * SLOT));
            let granted = table.make(&req, SimTime::ZERO).is_ok();
            let count = per_slot.entry(s).or_insert(0u32);
            if granted {
                *count += 1;
            }
            prop_assert!(*count <= 1, "slot {s} admitted {count} exclusives");
        }
        // Every slot admitted exactly one.
        for (s, c) in per_slot {
            prop_assert_eq!(c, 1, "slot {} should have exactly one holder", s);
        }
    }
}
