//! The host-side reservation table.
//!
//! "the standard Unix Host Object maintains a reservation table in the
//! Host Object, because the Unix OS has no notion of reservations.
//! Similarly, most batch processing systems do not understand
//! reservations, and so our basic Batch Queue Host maintains reservations
//! in a fashion similar to the Unix Host Object." (§3.1)
//!
//! The table implements the admission semantics of **Table 2**:
//!
//! * an *unshared* (`share = 0`) reservation "allocates the entire
//!   resource" — it conflicts with any other reservation overlapping its
//!   service window, in either direction;
//! * *shared* (`share = 1`) reservations multiplex the host: the summed
//!   CPU and memory demand of overlapping shared holders must fit the
//!   host's capacity;
//! * a *one-shot* (`reuse = 0`) token is consumed by its first
//!   `start_object()`; a *reusable* (`reuse = 1`) token may be presented
//!   repeatedly while its window lasts;
//! * an instantaneous reservation lapses if not confirmed within its
//!   timeout — "confirmation is implicit when the reservation token is
//!   presented with the StartObject() call" (§3.1).

use legion_core::{
    LegionError, Loid, ReservationRequest, ReservationStatus, ReservationToken, SimTime,
    TokenMinter,
};
use std::collections::BTreeMap;

/// Capacity the table admits against.
#[derive(Debug, Clone, Copy)]
pub struct TableCapacity {
    /// Total CPU, in hundredths of a processor (ncpus × 100).
    pub cpu_centis: u32,
    /// Total memory, MB.
    pub memory_mb: u32,
}

/// Lifecycle state of one reservation entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Granted; awaiting confirmation or its start time.
    Pending,
    /// Confirmed by a `start_object()`; reusable tokens stay here.
    Confirmed,
    /// One-shot token consumed.
    Consumed,
    /// Cancelled by the Enactor.
    Cancelled,
    /// Lapsed (confirmation timeout or window end), or released early.
    Expired,
}

#[derive(Debug, Clone)]
struct Entry {
    token: ReservationToken,
    state: EntryState,
}

impl Entry {
    /// Whether this entry holds resources during `[start, end)` overlap
    /// checks: pending, confirmed and consumed entries all hold their
    /// window; cancelled/expired do not.
    fn holds(&self) -> bool {
        matches!(self.state, EntryState::Pending | EntryState::Confirmed | EntryState::Consumed)
    }

    fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.token.start < end && start < self.token.end()
    }
}

/// The reservation table: mints, admits, confirms, expires.
#[derive(Debug)]
pub struct ReservationTable {
    host: Loid,
    capacity: TableCapacity,
    minter: TokenMinter,
    entries: BTreeMap<u64, Entry>,
}

impl ReservationTable {
    /// Creates a table for a host with the given capacity and secret.
    pub fn new(host: Loid, secret: u64, capacity: TableCapacity) -> Self {
        ReservationTable {
            host,
            capacity,
            minter: TokenMinter::new(host, secret),
            entries: BTreeMap::new(),
        }
    }

    /// Attempts to admit and mint a reservation.
    pub fn make(
        &mut self,
        req: &ReservationRequest,
        now: SimTime,
    ) -> Result<ReservationToken, LegionError> {
        self.sweep(now);
        self.autocompact();
        let start = req.start.unwrap_or(now);
        let end = start + req.duration;
        let host = self.minter_host();

        // Effective demand: an unshared reservation takes the machine.
        let (cpu, mem) = if req.rtype.share {
            (req.cpu_centis, req.memory_mb)
        } else {
            (self.capacity.cpu_centis, self.capacity.memory_mb)
        };
        if cpu > self.capacity.cpu_centis || mem > self.capacity.memory_mb {
            return Err(LegionError::ReservationDenied {
                host,
                reason: format!(
                    "demand ({cpu} cpu-centis, {mem} MB) exceeds capacity ({}, {})",
                    self.capacity.cpu_centis, self.capacity.memory_mb
                ),
            });
        }

        let mut cpu_held: u64 = 0;
        let mut mem_held: u64 = 0;
        for e in self.entries.values().filter(|e| e.holds() && e.overlaps(start, end)) {
            if !e.token.rtype.share || !req.rtype.share {
                // Either side unshared ⇒ exclusive conflict.
                return Err(LegionError::ReservationDenied {
                    host,
                    reason: "window conflicts with an exclusive reservation".into(),
                });
            }
            cpu_held += e.token.cpu_centis as u64;
            mem_held += e.token.memory_mb as u64;
        }
        if cpu_held + cpu as u64 > self.capacity.cpu_centis as u64
            || mem_held + mem as u64 > self.capacity.memory_mb as u64
        {
            return Err(LegionError::ReservationDenied {
                host,
                reason: format!(
                    "insufficient shared capacity: {cpu_held}/{} cpu-centis, {mem_held}/{} MB held",
                    self.capacity.cpu_centis, self.capacity.memory_mb
                ),
            });
        }

        // Instantaneous reservations get a confirmation deadline.
        let confirm_by = match (req.start, req.timeout) {
            (None, Some(t)) => Some(now + t),
            _ => None,
        };
        let token = self.minter.mint(req, start, confirm_by);
        self.entries.insert(token.serial, Entry { token: token.clone(), state: EntryState::Pending });
        Ok(token)
    }

    /// Reports a token's status (with lazy expiry).
    pub fn check(
        &mut self,
        token: &ReservationToken,
        now: SimTime,
    ) -> Result<ReservationStatus, LegionError> {
        if !self.minter.verify(token) {
            return Err(LegionError::InvalidToken);
        }
        self.sweep(now);
        let e = self.entries.get(&token.serial).ok_or(LegionError::InvalidToken)?;
        Ok(match e.state {
            EntryState::Pending => {
                if e.token.covers(now) {
                    ReservationStatus::Active
                } else {
                    ReservationStatus::Pending
                }
            }
            EntryState::Confirmed => ReservationStatus::Active,
            EntryState::Consumed => ReservationStatus::Consumed,
            EntryState::Cancelled => ReservationStatus::Cancelled,
            EntryState::Expired => ReservationStatus::Expired,
        })
    }

    /// Confirms/consumes a token presented with `start_object()`.
    pub fn consume(
        &mut self,
        token: &ReservationToken,
        now: SimTime,
    ) -> Result<(), LegionError> {
        if !self.minter.verify(token) {
            return Err(LegionError::InvalidToken);
        }
        self.sweep(now);
        let e = self.entries.get_mut(&token.serial).ok_or(LegionError::InvalidToken)?;
        match e.state {
            EntryState::Consumed => return Err(LegionError::ReservationConsumed),
            EntryState::Cancelled | EntryState::Expired => {
                return Err(LegionError::ReservationExpired)
            }
            EntryState::Pending | EntryState::Confirmed => {}
        }
        if now < e.token.start {
            return Err(LegionError::ReservationDenied {
                host: e.token.host,
                reason: format!("service window opens at {}", e.token.start),
            });
        }
        if now >= e.token.end() {
            e.state = EntryState::Expired;
            return Err(LegionError::ReservationExpired);
        }
        e.state = if e.token.rtype.reuse { EntryState::Confirmed } else { EntryState::Consumed };
        Ok(())
    }

    /// Cancels a reservation (Enactor backing out of a schedule).
    pub fn cancel(&mut self, token: &ReservationToken) -> Result<(), LegionError> {
        if !self.minter.verify(token) {
            return Err(LegionError::InvalidToken);
        }
        let e = self.entries.get_mut(&token.serial).ok_or(LegionError::InvalidToken)?;
        e.state = EntryState::Cancelled;
        Ok(())
    }

    /// Releases a reservation early (e.g. its one-shot job finished),
    /// freeing the window for others.
    pub fn release(&mut self, serial: u64) {
        if let Some(e) = self.entries.get_mut(&serial) {
            if e.holds() {
                e.state = EntryState::Expired;
            }
        }
    }

    /// Expires every live entry at once: the host fail-stopped and its
    /// volatile reservation state is gone. The minter (and thus the
    /// serial counter) survives, so tokens granted after a restart can
    /// never collide with a pre-crash serial — a stale token presented
    /// later fails with `ReservationExpired`, not a false match.
    pub fn expire_all(&mut self) -> usize {
        let mut n = 0;
        for e in self.entries.values_mut() {
            if e.holds() {
                e.state = EntryState::Expired;
                n += 1;
            }
        }
        n
    }

    /// Expires lapsed entries; returns the tokens that expired this sweep.
    pub fn sweep(&mut self, now: SimTime) -> Vec<ReservationToken> {
        let mut expired = Vec::new();
        for e in self.entries.values_mut() {
            let lapsed_confirmation = e.state == EntryState::Pending
                && e.token.confirm_by.is_some_and(|d| now >= d);
            let window_over = e.holds() && now >= e.token.end();
            if lapsed_confirmation || window_over {
                e.state = EntryState::Expired;
                expired.push(e.token.clone());
            }
        }
        expired
    }

    /// (cpu-centis, MB) held by reservations whose window covers `now`.
    pub fn held_at(&self, now: SimTime) -> (u32, u32) {
        let mut cpu = 0u32;
        let mut mem = 0u32;
        for e in self.entries.values().filter(|e| e.holds() && e.token.covers(now)) {
            if e.token.rtype.share {
                cpu += e.token.cpu_centis;
                mem += e.token.memory_mb;
            } else {
                cpu = self.capacity.cpu_centis;
                mem = self.capacity.memory_mb;
            }
        }
        (cpu.min(self.capacity.cpu_centis), mem.min(self.capacity.memory_mb))
    }

    /// Number of live (holding) entries.
    pub fn live_count(&self) -> usize {
        self.entries.values().filter(|e| e.holds()).count()
    }

    /// Total entries ever granted (diagnostics).
    pub fn total_granted(&self) -> usize {
        self.entries.len()
    }

    /// Drops cancelled/expired entries older than `horizon` to bound
    /// memory in long experiments.
    pub fn compact(&mut self, horizon: SimTime) {
        self.entries.retain(|_, e| e.holds() || e.token.end() >= horizon);
    }

    /// Garbage-collects dead entries once they dominate the table, so
    /// admission scans stay proportional to *live* reservations rather
    /// than all reservations ever granted. Checks against a collected
    /// token thereafter report `InvalidToken` (the record is gone), the
    /// same observable behaviour as an explicit [`Self::compact`].
    fn autocompact(&mut self) {
        const MIN_ENTRIES: usize = 64;
        if self.entries.len() < MIN_ENTRIES {
            return;
        }
        let live = self.live_count();
        if self.entries.len() > 4 * live.max(1) {
            self.entries.retain(|_, e| e.holds());
        }
    }

    /// Verifies a token without touching state.
    pub fn verify(&self, token: &ReservationToken) -> bool {
        self.minter.verify(token)
    }

    fn minter_host(&self) -> Loid {
        self.host
    }

    /// The host this table belongs to.
    pub fn host(&self) -> Loid {
        self.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::{LoidKind, ReservationType, SimDuration};

    fn table(cpu: u32, mem: u32) -> ReservationTable {
        ReservationTable::new(
            Loid::synthetic(LoidKind::Host, 1),
            0xBEEF,
            TableCapacity { cpu_centis: cpu, memory_mb: mem },
        )
    }

    fn req(rtype: ReservationType, cpu: u32, mem: u32) -> ReservationRequest {
        ReservationRequest::instantaneous(
            Loid::synthetic(LoidKind::Class, 1),
            Loid::synthetic(LoidKind::Vault, 1),
            SimDuration::from_secs(100),
        )
        .with_type(rtype)
        .with_demand(cpu, mem)
    }

    #[test]
    fn unshared_is_exclusive() {
        let mut t = table(400, 1024);
        let r = req(ReservationType::REUSABLE_SPACE, 100, 64);
        t.make(&r, SimTime::ZERO).unwrap();
        // Any second overlapping reservation is refused, shared or not.
        assert!(t.make(&req(ReservationType::ONE_SHOT_TIME, 100, 64), SimTime::ZERO).is_err());
        assert!(t.make(&req(ReservationType::ONE_SHOT_SPACE, 100, 64), SimTime::ZERO).is_err());
    }

    #[test]
    fn shared_multiplexes_until_capacity() {
        let mut t = table(400, 1024);
        let r = req(ReservationType::ONE_SHOT_TIME, 150, 256);
        t.make(&r, SimTime::ZERO).unwrap();
        t.make(&r, SimTime::ZERO).unwrap();
        // 300/400 centis held; a 150-centi request no longer fits.
        assert!(t.make(&r, SimTime::ZERO).is_err());
        // But a 100-centi one does.
        t.make(&req(ReservationType::ONE_SHOT_TIME, 100, 256), SimTime::ZERO).unwrap();
    }

    #[test]
    fn memory_is_also_admitted() {
        let mut t = table(400, 256);
        t.make(&req(ReservationType::ONE_SHOT_TIME, 50, 200), SimTime::ZERO).unwrap();
        assert!(t.make(&req(ReservationType::ONE_SHOT_TIME, 50, 100), SimTime::ZERO).is_err());
    }

    #[test]
    fn shared_after_unshared_conflicts() {
        let mut t = table(400, 1024);
        t.make(&req(ReservationType::ONE_SHOT_TIME, 100, 64), SimTime::ZERO).unwrap();
        // An exclusive request must fail while shared holders overlap.
        assert!(t.make(&req(ReservationType::REUSABLE_SPACE, 100, 64), SimTime::ZERO).is_err());
    }

    #[test]
    fn disjoint_windows_coexist() {
        let mut t = table(100, 128);
        let early = req(ReservationType::REUSABLE_SPACE, 100, 128)
            .starting_at(SimTime::from_secs(0));
        let late = req(ReservationType::REUSABLE_SPACE, 100, 128)
            .starting_at(SimTime::from_secs(100));
        t.make(&early, SimTime::ZERO).unwrap();
        t.make(&late, SimTime::ZERO).unwrap();
    }

    #[test]
    fn one_shot_consumed_once() {
        let mut t = table(400, 1024);
        let tok = t.make(&req(ReservationType::ONE_SHOT_TIME, 100, 64), SimTime::ZERO).unwrap();
        t.consume(&tok, SimTime::from_secs(1)).unwrap();
        assert!(matches!(
            t.consume(&tok, SimTime::from_secs(2)),
            Err(LegionError::ReservationConsumed)
        ));
        assert_eq!(
            t.check(&tok, SimTime::from_secs(2)).unwrap(),
            ReservationStatus::Consumed
        );
    }

    #[test]
    fn reusable_consumed_many_times() {
        let mut t = table(400, 1024);
        let tok = t.make(&req(ReservationType::REUSABLE_TIME, 100, 64), SimTime::ZERO).unwrap();
        for s in 1..5 {
            t.consume(&tok, SimTime::from_secs(s)).unwrap();
        }
        assert_eq!(t.check(&tok, SimTime::from_secs(5)).unwrap(), ReservationStatus::Active);
    }

    #[test]
    fn confirmation_timeout_expires() {
        let mut t = table(400, 1024);
        let mut r = req(ReservationType::ONE_SHOT_TIME, 100, 64);
        r.timeout = Some(SimDuration::from_secs(10));
        let tok = t.make(&r, SimTime::ZERO).unwrap();
        assert_eq!(t.check(&tok, SimTime::from_secs(5)).unwrap(), ReservationStatus::Active);
        // Past the timeout without confirmation: expired.
        assert_eq!(t.check(&tok, SimTime::from_secs(11)).unwrap(), ReservationStatus::Expired);
        assert!(matches!(
            t.consume(&tok, SimTime::from_secs(12)),
            Err(LegionError::ReservationExpired)
        ));
    }

    #[test]
    fn confirmation_within_timeout_sticks() {
        let mut t = table(400, 1024);
        let mut r = req(ReservationType::REUSABLE_TIME, 100, 64);
        r.timeout = Some(SimDuration::from_secs(10));
        let tok = t.make(&r, SimTime::ZERO).unwrap();
        t.consume(&tok, SimTime::from_secs(5)).unwrap();
        // The confirmation deadline no longer applies once confirmed.
        assert_eq!(t.check(&tok, SimTime::from_secs(50)).unwrap(), ReservationStatus::Active);
    }

    #[test]
    fn future_reservation_cannot_start_early() {
        let mut t = table(400, 1024);
        let r = req(ReservationType::REUSABLE_SPACE, 100, 64).starting_at(SimTime::from_secs(100));
        let tok = t.make(&r, SimTime::ZERO).unwrap();
        assert!(t.consume(&tok, SimTime::from_secs(50)).is_err());
        t.consume(&tok, SimTime::from_secs(100)).unwrap();
    }

    #[test]
    fn window_end_expires() {
        let mut t = table(400, 1024);
        let tok = t.make(&req(ReservationType::REUSABLE_TIME, 100, 64), SimTime::ZERO).unwrap();
        t.consume(&tok, SimTime::from_secs(1)).unwrap();
        assert!(matches!(
            t.consume(&tok, SimTime::from_secs(101)),
            Err(LegionError::ReservationExpired)
        ));
    }

    #[test]
    fn cancel_frees_capacity() {
        let mut t = table(100, 128);
        let tok = t.make(&req(ReservationType::REUSABLE_SPACE, 100, 128), SimTime::ZERO).unwrap();
        assert!(t.make(&req(ReservationType::ONE_SHOT_TIME, 50, 64), SimTime::ZERO).is_err());
        t.cancel(&tok).unwrap();
        t.make(&req(ReservationType::ONE_SHOT_TIME, 50, 64), SimTime::ZERO).unwrap();
    }

    #[test]
    fn forged_tokens_rejected_everywhere() {
        let mut t = table(400, 1024);
        let tok = t.make(&req(ReservationType::ONE_SHOT_TIME, 100, 64), SimTime::ZERO).unwrap();
        let mut forged = tok.clone();
        forged.cpu_centis = 1; // try to shrink the footprint
        assert!(matches!(t.check(&forged, SimTime::ZERO), Err(LegionError::InvalidToken)));
        assert!(matches!(t.consume(&forged, SimTime::ZERO), Err(LegionError::InvalidToken)));
        assert!(matches!(t.cancel(&forged), Err(LegionError::InvalidToken)));
        // The genuine token still works.
        t.consume(&tok, SimTime::ZERO).unwrap();
    }

    #[test]
    fn held_at_accounts_types() {
        let mut t = table(400, 1024);
        t.make(&req(ReservationType::ONE_SHOT_TIME, 150, 100), SimTime::ZERO).unwrap();
        t.make(&req(ReservationType::ONE_SHOT_TIME, 100, 100), SimTime::ZERO).unwrap();
        assert_eq!(t.held_at(SimTime::from_secs(1)), (250, 200));
        // After the windows close, nothing is held.
        t.sweep(SimTime::from_secs(200));
        assert_eq!(t.held_at(SimTime::from_secs(200)), (0, 0));
    }

    #[test]
    fn release_frees_early() {
        let mut t = table(100, 128);
        let tok = t.make(&req(ReservationType::REUSABLE_SPACE, 100, 128), SimTime::ZERO).unwrap();
        t.consume(&tok, SimTime::ZERO).unwrap();
        t.release(tok.serial);
        t.make(&req(ReservationType::ONE_SHOT_TIME, 50, 64), SimTime::from_secs(1)).unwrap();
    }

    #[test]
    fn compact_retains_live() {
        let mut t = table(400, 1024);
        let tok = t.make(&req(ReservationType::ONE_SHOT_TIME, 100, 64), SimTime::ZERO).unwrap();
        let tok2 = t
            .make(
                &req(ReservationType::ONE_SHOT_TIME, 100, 64).starting_at(SimTime::from_secs(500)),
                SimTime::ZERO,
            )
            .unwrap();
        t.cancel(&tok).unwrap();
        t.compact(SimTime::from_secs(400));
        assert_eq!(t.total_granted(), 1);
        assert_eq!(t.check(&tok2, SimTime::ZERO).unwrap(), ReservationStatus::Pending);
        assert!(matches!(t.check(&tok, SimTime::ZERO), Err(LegionError::InvalidToken)));
    }
}
