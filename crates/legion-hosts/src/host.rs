//! The standard (Unix / SMP) Host object.
//!
//! "Host Objects encapsulate machine capabilities (e.g., a processor and
//! its associated memory) and are responsible for instantiating objects
//! on the processor. In this way, the Host acts as an arbiter for the
//! machine's capabilities." (§2.1)
//!
//! [`StandardHost`] implements the full Table 1 interface over the
//! host-side [`ReservationTable`], a chain of [`LocalPolicy`]s (site
//! autonomy), a [`BackgroundLoad`] model, and the RGE trigger mechanism.
//! A multiprocessor (SMP) host is a `StandardHost` with `ncpus > 1` —
//! its `start_object()` accepts several [`ObjectSpec`]s per call, "
//! important to support efficient object creation for multiprocessor
//! systems" (§3.1).

use crate::load::BackgroundLoad;
use crate::policy::{AcceptAll, LocalPolicy};
use crate::restable::{ReservationTable, TableCapacity};
use legion_core::host::well_known;
use legion_core::{
    AttrValue, AttributeDb, Event, EventKind, HostObject, LegionError, Loid, LoidKind, ObjectSpec,
    Opr, ReservationRequest, ReservationStatus, ReservationToken, SimTime, SpanKind, SpanOutcome,
    Trigger, TriggerId, VaultDirectory, Outcall,
};
use legion_fabric::MetricsLedger;
use legion_trace::TraceSink;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Static description of the machine a host guards.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host name.
    pub name: String,
    /// Administrative domain.
    pub domain: String,
    /// Architecture (e.g. `"mips"`).
    pub arch: String,
    /// OS name (e.g. `"IRIX"`).
    pub os_name: String,
    /// OS version (e.g. `"5.3"`).
    pub os_version: String,
    /// Processor count.
    pub ncpus: u32,
    /// Physical memory, MB.
    pub memory_mb: u32,
    /// Price per CPU-second, millicents (the paper's "amount charged per
    /// CPU cycle consumed").
    pub price_per_cpu_sec: u64,
    /// Advertised willingness to accept extra jobs, [0, 1].
    pub willingness: f64,
}

impl HostConfig {
    /// A single-CPU Unix workstation.
    pub fn unix(name: impl Into<String>, domain: impl Into<String>) -> Self {
        HostConfig {
            name: name.into(),
            domain: domain.into(),
            arch: "mips".into(),
            os_name: "IRIX".into(),
            os_version: "5.3".into(),
            ncpus: 1,
            memory_mb: 512,
            price_per_cpu_sec: 0,
            willingness: 1.0,
        }
    }

    /// A shared-memory multiprocessor.
    pub fn smp(name: impl Into<String>, domain: impl Into<String>, ncpus: u32) -> Self {
        HostConfig { ncpus, memory_mb: 1024 * ncpus, ..Self::unix(name, domain) }
    }

    /// Builder: override platform (arch, os, version).
    pub fn platform(
        mut self,
        arch: impl Into<String>,
        os: impl Into<String>,
        version: impl Into<String>,
    ) -> Self {
        self.arch = arch.into();
        self.os_name = os.into();
        self.os_version = version.into();
        self
    }

    /// Builder: override memory.
    pub fn with_memory_mb(mut self, mb: u32) -> Self {
        self.memory_mb = mb;
        self
    }

    /// Builder: set the price per CPU-second.
    pub fn priced(mut self, millicents: u64) -> Self {
        self.price_per_cpu_sec = millicents;
        self
    }
}

#[derive(Debug, Clone)]
struct RunningObject {
    class: Loid,
    vault: Loid,
    memory_mb: u32,
    cpu_centis: u32,
    state: Vec<u8>,
    version: u64,
    token_serial: u64,
}

struct TriggerEntry {
    trigger: Trigger,
    last_fired: Option<SimTime>,
}

/// The standard Host object.
pub struct StandardHost {
    loid: Loid,
    config: HostConfig,
    flavor: &'static str,
    table: Mutex<ReservationTable>,
    running: RwLock<BTreeMap<Loid, RunningObject>>,
    policies: RwLock<Vec<Arc<dyn LocalPolicy>>>,
    triggers: RwLock<BTreeMap<u64, TriggerEntry>>,
    next_trigger: AtomicU64,
    outcalls: RwLock<Vec<Arc<dyn Outcall>>>,
    vaults: Arc<dyn VaultDirectory>,
    load: Mutex<BackgroundLoad>,
    attrs_cache: RwLock<AttributeDb>,
    metrics: RwLock<Option<Arc<MetricsLedger>>>,
    tracer: RwLock<Option<Arc<TraceSink>>>,
    draining: std::sync::atomic::AtomicBool,
    crashed: std::sync::atomic::AtomicBool,
}

impl StandardHost {
    /// Creates a host guarding the configured machine.
    ///
    /// `seed` derives the reservation-token secret; `vaults` resolves
    /// vault LOIDs (usually the fabric).
    pub fn new(config: HostConfig, vaults: Arc<dyn VaultDirectory>, seed: u64) -> Arc<Self> {
        Self::with_loid(Loid::fresh(LoidKind::Host), config, vaults, seed)
    }

    /// As [`StandardHost::new`] with a caller-chosen LOID.
    pub fn with_loid(
        loid: Loid,
        config: HostConfig,
        vaults: Arc<dyn VaultDirectory>,
        seed: u64,
    ) -> Arc<Self> {
        assert_eq!(loid.kind, LoidKind::Host, "host LOID must have host kind");
        let capacity =
            TableCapacity { cpu_centis: config.ncpus * 100, memory_mb: config.memory_mb };
        let secret = legion_core::hash::mix64(seed ^ loid.digest());
        let host = StandardHost {
            loid,
            flavor: "unix",
            table: Mutex::new(ReservationTable::new(loid, secret, capacity)),
            running: RwLock::new(BTreeMap::new()),
            policies: RwLock::new(vec![Arc::new(AcceptAll)]),
            triggers: RwLock::new(BTreeMap::new()),
            next_trigger: AtomicU64::new(1),
            outcalls: RwLock::new(Vec::new()),
            vaults,
            load: Mutex::new(BackgroundLoad::steady(0.0)),
            attrs_cache: RwLock::new(AttributeDb::new()),
            metrics: RwLock::new(None),
            tracer: RwLock::new(None),
            draining: std::sync::atomic::AtomicBool::new(false),
            crashed: std::sync::atomic::AtomicBool::new(false),
            config,
        };
        let host = Arc::new(host);
        host.refresh_attrs(SimTime::ZERO);
        host
    }

    /// The machine's configuration.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Replaces the policy chain.
    pub fn set_policies(&self, policies: Vec<Arc<dyn LocalPolicy>>) {
        *self.policies.write() = policies;
    }

    /// Appends a policy to the chain.
    pub fn add_policy(&self, policy: Arc<dyn LocalPolicy>) {
        self.policies.write().push(policy);
    }

    /// Sets the background load process.
    pub fn set_background_load(&self, load: BackgroundLoad) {
        *self.load.lock() = load;
    }

    /// Attaches the fabric metrics ledger.
    pub fn set_metrics(&self, m: Arc<MetricsLedger>) {
        *self.metrics.write() = Some(m);
    }

    /// Attaches the fabric trace sink so `start_object` calls emit
    /// `start_object` spans.
    pub fn set_tracer(&self, t: Arc<TraceSink>) {
        *self.tracer.write() = Some(t);
    }

    fn start_span(&self) -> legion_trace::SpanGuard {
        match self.tracer.read().as_ref() {
            Some(t) => t.span(SpanKind::StartObject),
            None => legion_trace::SpanGuard::disabled(),
        }
    }

    /// Begins an administrative shutdown: new reservations are refused
    /// and every reassessment raises a `HostShutdown` event until the
    /// host is empty, so a Monitor can drain the resident objects
    /// ("the host is shutting down and objects must migrate").
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Cancels an administrative shutdown.
    pub fn cancel_shutdown(&self) {
        self.draining.store(false, Ordering::Release);
    }

    /// Whether the host is draining for shutdown.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Fails with `HostDown` while the host is crashed; every RMI entry
    /// point calls this first, so a dead host answers nothing.
    fn ensure_up(&self) -> Result<(), LegionError> {
        if self.crashed.load(Ordering::Acquire) {
            Err(LegionError::HostDown(self.loid))
        } else {
            Ok(())
        }
    }

    fn bump(&self, f: impl FnOnce(&MetricsLedger)) {
        if let Some(m) = self.metrics.read().as_ref() {
            f(m);
        }
    }

    /// Sum of running Legion demand: (cpu-centis, memory MB).
    fn legion_demand(&self) -> (u32, u32) {
        let running = self.running.read();
        let cpu = running.values().map(|r| r.cpu_centis).sum();
        let mem = running.values().map(|r| r.memory_mb).sum();
        (cpu, mem)
    }

    /// Recomputes the attribute cache; returns the fresh snapshot.
    fn refresh_attrs(&self, now: SimTime) -> AttributeDb {
        let bg = self.load.lock().current(now);
        let (cpu, mem) = self.legion_demand();
        let load = bg + cpu as f64 / 100.0;
        let free_mem = self.config.memory_mb.saturating_sub(mem);
        let running_count = self.running.read().len() as i64;
        let vault_list: Vec<AttrValue> = self
            .compatible_vault_scan()
            .into_iter()
            .map(|l| AttrValue::Str(l.to_string()))
            .collect();
        let attrs = AttributeDb::new()
            .with("host_name", self.config.name.as_str())
            .with(well_known::DOMAIN, self.config.domain.as_str())
            .with(well_known::ARCH, self.config.arch.as_str())
            .with(well_known::OS_NAME, self.config.os_name.as_str())
            .with(well_known::OS_VERSION, self.config.os_version.as_str())
            .with(well_known::NCPUS, self.config.ncpus as i64)
            .with(well_known::MEMORY_MB, self.config.memory_mb as i64)
            .with(well_known::FREE_MEMORY_MB, free_mem as i64)
            .with(well_known::LOAD, load)
            .with(well_known::PRICE_PER_CPU_SEC, self.config.price_per_cpu_sec as i64)
            .with(well_known::WILLINGNESS, self.config.willingness)
            .with(well_known::FLAVOR, self.flavor)
            .with("host_draining", self.is_draining())
            .with(well_known::RUNNING_OBJECTS, running_count)
            .with(well_known::COMPATIBLE_VAULTS, AttrValue::List(vault_list))
            .with("host_loid", self.loid.to_string());
        *self.attrs_cache.write() = attrs.clone();
        attrs
    }

    /// Scans the vault directory for compatible vaults (uses config-level
    /// facts only, so it is safe during attribute refresh).
    fn compatible_vault_scan(&self) -> Vec<Loid> {
        let probe = AttributeDb::new()
            .with(well_known::DOMAIN, self.config.domain.as_str())
            .with(well_known::ARCH, self.config.arch.as_str());
        self.vaults
            .vault_loids()
            .into_iter()
            .filter(|&v| {
                self.vaults
                    .lookup_vault(v)
                    .is_some_and(|vault| vault.compatible_with_host(&probe))
            })
            .collect()
    }

}

impl HostObject for StandardHost {
    fn loid(&self) -> Loid {
        self.loid
    }

    fn make_reservation(
        &self,
        req: &ReservationRequest,
        now: SimTime,
    ) -> Result<ReservationToken, LegionError> {
        self.ensure_up()?;
        self.bump(|m| MetricsLedger::bump(&m.reservation_requests));

        // 0. A draining host accepts nothing new.
        if self.is_draining() {
            self.bump(|m| MetricsLedger::bump(&m.reservations_denied));
            return Err(LegionError::PolicyRefused {
                host: self.loid,
                policy: "shutdown: host is draining".into(),
            });
        }

        // 1. The vault must be reachable and compatible (§3.1).
        let vault = self
            .vaults
            .lookup_vault(req.vault)
            .ok_or(LegionError::VaultUnreachable { host: self.loid, vault: req.vault })?;
        let attrs = self.attrs_cache.read().clone();
        if !vault.compatible_with_host(&attrs) {
            self.bump(|m| MetricsLedger::bump(&m.reservations_denied));
            return Err(LegionError::VaultIncompatible { host: self.loid, vault: req.vault });
        }

        // 2. Local placement policy (§3.1 — site autonomy).
        for p in self.policies.read().iter() {
            if let Err(reason) = p.permit(req, &attrs, now) {
                self.bump(|m| MetricsLedger::bump(&m.reservations_denied));
                return Err(LegionError::PolicyRefused {
                    host: self.loid,
                    policy: format!("{}: {reason}", p.name()),
                });
            }
        }

        // 3. Sufficient resources (the reservation table's admission).
        match self.table.lock().make(req, now) {
            Ok(tok) => {
                self.bump(|m| MetricsLedger::bump(&m.reservations_granted));
                Ok(tok)
            }
            Err(e) => {
                self.bump(|m| MetricsLedger::bump(&m.reservations_denied));
                Err(e)
            }
        }
    }

    fn check_reservation(
        &self,
        token: &ReservationToken,
        now: SimTime,
    ) -> Result<ReservationStatus, LegionError> {
        self.ensure_up()?;
        self.table.lock().check(token, now)
    }

    fn cancel_reservation(&self, token: &ReservationToken) -> Result<(), LegionError> {
        self.ensure_up()?;
        self.table.lock().cancel(token)?;
        self.bump(|m| MetricsLedger::bump(&m.reservations_cancelled));
        Ok(())
    }

    fn start_object(
        &self,
        token: &ReservationToken,
        specs: &[ObjectSpec],
        now: SimTime,
    ) -> Result<Vec<Loid>, LegionError> {
        let span = self.start_span();
        span.attr("host", self.config.name.as_str());
        span.attr("class", token.class.to_string());
        span.attr("specs", specs.len() as i64);
        let result = (|| -> Result<Vec<Loid>, LegionError> {
        self.ensure_up()?;
        if specs.is_empty() {
            return Err(LegionError::Other("start_object with no specs".into()));
        }
        for s in specs {
            if s.class != token.class {
                return Err(LegionError::MalformedSchedule(format!(
                    "spec class {} does not match reservation class {}",
                    s.class, token.class
                )));
            }
            // A selected implementation must actually run here (§3.3).
            if let Some(imp) = &s.implementation {
                if !imp.runs_on(&self.config.arch, &self.config.os_name) {
                    return Err(LegionError::NoUsableImplementation { class: s.class });
                }
            }
        }
        // Presenting the token is the implicit confirmation (§3.1).
        self.table.lock().consume(token, now)?;

        let per_obj_cpu = (token.cpu_centis / specs.len() as u32).max(1);
        let mut started = Vec::with_capacity(specs.len());
        let vault = self.vaults.lookup_vault(token.vault);
        {
            let mut running = self.running.write();
            for spec in specs {
                let instance = if spec.instance.is_nil() {
                    Loid::fresh(LoidKind::Instance)
                } else {
                    spec.instance
                };
                // Checkpoint at birth (§2.1): seed the vault with an
                // initial OPR so a Monitor can restart the object from
                // passive state if this host fail-stops before its first
                // deactivation. Best-effort — a full vault degrades to
                // the pre-checkpoint (unrecoverable) behaviour.
                let mut version = 0;
                if let Some(v) = &vault {
                    let opr = Opr::new(instance, spec.class, now, spec.initial_state.clone())
                        .with_memory_mb(spec.memory_mb)
                        .with_cpu_centis(per_obj_cpu);
                    if v.store_opr(opr).is_ok() {
                        version = 1;
                    }
                }
                running.insert(
                    instance,
                    RunningObject {
                        class: spec.class,
                        vault: token.vault,
                        memory_mb: spec.memory_mb,
                        cpu_centis: per_obj_cpu,
                        state: spec.initial_state.clone(),
                        version,
                        token_serial: token.serial,
                    },
                );
                started.push(instance);
            }
        }
        self.bump(|m| MetricsLedger::bump_by(&m.objects_started, started.len() as u64));
        self.refresh_attrs(now);
        Ok(started)
        })();
        match &result {
            Ok(started) => {
                span.attr("started", started.len() as i64);
                span.end_ok();
            }
            Err(e) => span.end_with(SpanOutcome::from_error(e)),
        }
        result
    }

    fn kill_object(&self, object: Loid) -> Result<(), LegionError> {
        self.ensure_up()?;
        let removed = {
            let mut running = self.running.write();
            running.remove(&object).ok_or(LegionError::NoSuchObject(object))?
        };
        // Free the reservation early if nothing else runs under it.
        let serial_in_use = self
            .running
            .read()
            .values()
            .any(|r| r.token_serial == removed.token_serial);
        if !serial_in_use {
            self.table.lock().release(removed.token_serial);
        }
        // Drop the checkpoint OPR: a killed object must not be
        // resurrected by the Monitor's crash-recovery sweep.
        if let Some(v) = self.vaults.lookup_vault(removed.vault) {
            let _ = v.delete_opr(object);
        }
        self.bump(|m| MetricsLedger::bump(&m.objects_killed));
        Ok(())
    }

    fn deactivate_object(&self, object: Loid, now: SimTime) -> Result<Opr, LegionError> {
        self.ensure_up()?;
        let obj = {
            let running = self.running.read();
            running.get(&object).cloned().ok_or(LegionError::NoSuchObject(object))?
        };
        let vault = self
            .vaults
            .lookup_vault(obj.vault)
            .ok_or(LegionError::NoSuchVault(obj.vault))?;
        let mut opr = Opr::new(object, obj.class, now, obj.state.clone())
            .with_memory_mb(obj.memory_mb)
            .with_cpu_centis(obj.cpu_centis);
        opr.version = obj.version + 1;
        vault.store_opr(opr.clone())?;

        // Only remove the object once its state is safely in the vault.
        self.running.write().remove(&object);
        let serial_in_use =
            self.running.read().values().any(|r| r.token_serial == obj.token_serial);
        if !serial_in_use {
            self.table.lock().release(obj.token_serial);
        }
        self.bump(|m| MetricsLedger::bump(&m.objects_deactivated));
        self.refresh_attrs(now);
        Ok(opr)
    }

    fn reactivate_object(&self, opr: &Opr, now: SimTime) -> Result<(), LegionError> {
        self.ensure_up()?;
        // Find a compatible vault actually holding the OPR — reactivation
        // is driven by access, the host locates the passive state.
        let vault_loid = self
            .compatible_vault_scan()
            .into_iter()
            .find(|&v| {
                self.vaults.lookup_vault(v).is_some_and(|vault| vault.holds(opr.object))
            })
            .ok_or(LegionError::NoSuchOpr(opr.object))?;

        let (_, mem_in_use) = self.legion_demand();
        if mem_in_use + opr.memory_mb > self.config.memory_mb {
            return Err(LegionError::ReservationDenied {
                host: self.loid,
                reason: "insufficient free memory to reactivate".into(),
            });
        }
        self.running.write().insert(
            opr.object,
            RunningObject {
                class: opr.class,
                vault: vault_loid,
                memory_mb: opr.memory_mb,
                cpu_centis: opr.cpu_centis,
                state: opr.state.to_vec(),
                version: opr.version,
                token_serial: 0,
            },
        );
        self.bump(|m| MetricsLedger::bump(&m.objects_reactivated));
        self.refresh_attrs(now);
        Ok(())
    }

    fn running_objects(&self) -> Vec<Loid> {
        self.running.read().keys().copied().collect()
    }

    fn get_compatible_vaults(&self) -> Vec<Loid> {
        self.compatible_vault_scan()
    }

    fn vault_ok(&self, vault: Loid) -> bool {
        if self.crashed.load(Ordering::Acquire) {
            return false;
        }
        self.vaults
            .lookup_vault(vault)
            .is_some_and(|v| v.compatible_with_host(&self.attrs_cache.read()))
    }

    fn attributes(&self) -> AttributeDb {
        self.attrs_cache.read().clone()
    }

    fn register_trigger(&self, trigger: Trigger) -> TriggerId {
        let id = self.next_trigger.fetch_add(1, Ordering::Relaxed);
        self.triggers.write().insert(id, TriggerEntry { trigger, last_fired: None });
        TriggerId(id)
    }

    fn remove_trigger(&self, id: TriggerId) {
        self.triggers.write().remove(&id.0);
    }

    fn register_outcall(&self, outcall: Arc<dyn Outcall>) {
        self.outcalls.write().push(outcall);
    }

    fn crash(&self) {
        if self.crashed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Volatile state is lost: running objects vanish and every live
        // reservation lapses. OPR checkpoints in the vaults survive —
        // they are the Monitor's recovery material.
        self.running.write().clear();
        self.table.lock().expire_all();
        self.bump(|m| MetricsLedger::bump(&m.host_crashes));
    }

    fn restart(&self, now: SimTime) {
        if !self.crashed.swap(false, Ordering::AcqRel) {
            return;
        }
        // The running map and reservation table were emptied at crash
        // time, so the machine comes back with reclaimed resources;
        // republish fresh attributes so schedulers see it as idle.
        self.refresh_attrs(now);
        self.bump(|m| MetricsLedger::bump(&m.host_restarts));
    }

    fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    fn probe(&self, _now: SimTime) -> Result<(), LegionError> {
        self.ensure_up()
    }

    fn reassess(&self, now: SimTime) -> Vec<Event> {
        // A crashed host is silent: no load sampling, no trigger
        // evaluation, no outcall notifications. The Monitor perceives
        // the crash only as missed reports.
        if self.crashed.load(Ordering::Acquire) {
            return Vec::new();
        }
        // Advance the background load and expire lapsed reservations.
        self.load.lock().sample(now);
        let expired = self.table.lock().sweep(now);
        let attrs = self.refresh_attrs(now);

        let mut events = Vec::new();
        if self.is_draining() && !self.running.read().is_empty() {
            events.push(Event {
                kind: EventKind::HostShutdown,
                source: self.loid,
                at: now,
                detail: attrs.clone(),
            });
        }
        for tok in expired {
            events.push(Event {
                kind: EventKind::ReservationExpired,
                source: self.loid,
                at: now,
                detail: AttributeDb::new().with("reservation_serial", tok.serial as i64),
            });
        }

        // Evaluate triggers against the fresh attribute snapshot.
        {
            let mut triggers = self.triggers.write();
            for entry in triggers.values_mut() {
                let cooled = entry
                    .last_fired
                    .is_none_or(|t| now.since(t) >= entry.trigger.cooldown);
                if cooled && entry.trigger.guard.eval(&attrs) {
                    entry.last_fired = Some(now);
                    events.push(Event {
                        kind: entry.trigger.raises.clone(),
                        source: self.loid,
                        at: now,
                        detail: attrs.clone(),
                    });
                    self.bump(|m| MetricsLedger::bump(&m.trigger_firings));
                }
            }
        }

        if !events.is_empty() {
            let outcalls = self.outcalls.read().clone();
            for e in &events {
                for oc in &outcalls {
                    oc.notify(e);
                }
            }
        }
        events
    }
}
