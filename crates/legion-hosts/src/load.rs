//! Background load models.
//!
//! "The Host Object reassesses its local state periodically, and
//! repopulates its attributes" (§3.1). The load a scheduler observes is
//! the sum of a *background* component (other users of the machine,
//! outside Legion's control) and the demand of Legion objects the host is
//! running. This module models the background component; the host adds
//! the Legion component itself.

use legion_core::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A background load process sampled at each reassessment.
#[derive(Debug)]
pub enum BackgroundLoad {
    /// Constant load.
    Steady(f64),
    /// First-order autoregressive walk: `x' = base + rho (x - base) + e`,
    /// `e ~ U(-sigma, sigma)`, clamped to `[0, max]`. This is the kind of
    /// process the Network Weather Service forecasts.
    Ar1 {
        /// Long-run mean.
        base: f64,
        /// Persistence in [0, 1): higher = smoother.
        rho: f64,
        /// Half-width of the uniform innovation.
        sigma: f64,
        /// Clamp ceiling.
        max: f64,
        /// Current value.
        state: f64,
        /// Innovation source.
        rng: SmallRng,
    },
    /// Diurnal pattern: `base + amp * sin(2π hour/24)`, never negative.
    Diurnal {
        /// Mean load.
        base: f64,
        /// Swing amplitude.
        amp: f64,
    },
}

impl BackgroundLoad {
    /// A constant background load.
    pub fn steady(load: f64) -> Self {
        BackgroundLoad::Steady(load.max(0.0))
    }

    /// An AR(1) walk with the given parameters.
    pub fn ar1(base: f64, rho: f64, sigma: f64, max: f64, seed: u64) -> Self {
        BackgroundLoad::Ar1 { base, rho, sigma, max, state: base, rng: SmallRng::seed_from_u64(seed) }
    }

    /// A diurnal sinusoid.
    pub fn diurnal(base: f64, amp: f64) -> Self {
        BackgroundLoad::Diurnal { base, amp }
    }

    /// Samples the background load at `now`, advancing stateful models.
    pub fn sample(&mut self, now: SimTime) -> f64 {
        match self {
            BackgroundLoad::Steady(x) => *x,
            BackgroundLoad::Ar1 { base, rho, sigma, max, state, rng } => {
                let e = rng.gen_range(-*sigma..=*sigma);
                *state = (*base + *rho * (*state - *base) + e).clamp(0.0, *max);
                *state
            }
            BackgroundLoad::Diurnal { base, amp } => {
                let hours = now.as_secs_f64() / 3600.0;
                let v = *base + *amp * (2.0 * std::f64::consts::PI * hours / 24.0).sin();
                v.max(0.0)
            }
        }
    }

    /// Peeks at the current value without advancing.
    pub fn current(&self, now: SimTime) -> f64 {
        match self {
            BackgroundLoad::Steady(x) => *x,
            BackgroundLoad::Ar1 { state, .. } => *state,
            BackgroundLoad::Diurnal { base, amp } => {
                let hours = now.as_secs_f64() / 3600.0;
                (*base + *amp * (2.0 * std::f64::consts::PI * hours / 24.0).sin()).max(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_steady() {
        let mut l = BackgroundLoad::steady(0.7);
        for i in 0..10 {
            assert_eq!(l.sample(SimTime::from_secs(i)), 0.7);
        }
    }

    #[test]
    fn ar1_stays_in_bounds_and_moves() {
        let mut l = BackgroundLoad::ar1(0.5, 0.9, 0.2, 2.0, 42);
        let samples: Vec<f64> = (0..200).map(|i| l.sample(SimTime::from_secs(i))).collect();
        assert!(samples.iter().all(|&x| (0.0..=2.0).contains(&x)));
        let distinct = samples.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct > 100, "AR(1) should actually move");
        // Long-run mean near base.
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn ar1_is_deterministic_per_seed() {
        let mut a = BackgroundLoad::ar1(0.5, 0.9, 0.2, 2.0, 7);
        let mut b = BackgroundLoad::ar1(0.5, 0.9, 0.2, 2.0, 7);
        for i in 0..50 {
            assert_eq!(a.sample(SimTime::from_secs(i)), b.sample(SimTime::from_secs(i)));
        }
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let mut l = BackgroundLoad::diurnal(1.0, 0.5);
        let at = |h: u64| SimTime::from_secs(h * 3600);
        let morning = l.sample(at(6)); // sin peak at 6h
        let evening = l.sample(at(18)); // sin trough at 18h
        assert!(morning > 1.4 && morning < 1.6);
        assert!(evening > 0.4 && evening < 0.6);
        // Never negative even with large amplitude.
        let mut big = BackgroundLoad::diurnal(0.1, 5.0);
        assert_eq!(big.sample(at(18)), 0.0);
    }
}
