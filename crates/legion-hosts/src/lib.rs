//! Host object implementations.
//!
//! Hosts are the arbiters of machine capability (§2.1). This crate
//! provides:
//!
//! * [`StandardHost`] — the Unix / SMP Host object: the full Table 1
//!   interface over a host-side [`ReservationTable`] (Table 2 admission
//!   semantics), a [`LocalPolicy`] chain (site autonomy), a
//!   [`BackgroundLoad`] model, and RGE triggers;
//! * [`BatchQueueHost`] — a host fronting a reservation-less queue
//!   management system (three simulated disciplines stand in for the
//!   paper's LoadLeveler / Condor / Codine integrations);
//! * policies and load models used by the experiments.

pub mod batch;
pub mod host;
pub mod load;
pub mod policy;
pub mod queue_sim;
pub mod restable;

pub use batch::{BatchQueueHost, QueueStats};
pub use host::{HostConfig, StandardHost};
pub use load::BackgroundLoad;
pub use policy::{AcceptAll, DomainRefusal, LoadCeiling, LocalPolicy, MemoryFloor, TimeOfDayWindow};
pub use queue_sim::{CompletedJob, FairShareQueue, FcfsQueue, Job, PriorityQueue, QueueSim};
pub use restable::{ReservationTable, TableCapacity};
