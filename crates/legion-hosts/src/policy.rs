//! Local placement policies — site autonomy.
//!
//! "administrators want to ensure that their systems are safe and secure,
//! and will grant resource access according to their own policies" (§1).
//! The host consults its policy chain before granting any reservation:
//! "its local placement policy permits instantiating the object" (§3.1).
//! The paper's examples — refusing requests from certain domains, and
//! "a description of its willingness to accept extra jobs based on the
//! time of day" — are implemented here, along with load and memory
//! ceilings.

use legion_core::{AttributeDb, ReservationRequest, SimTime};

/// One local policy in a host's chain. All must permit for a grant.
pub trait LocalPolicy: Send + Sync {
    /// Policy name, reported in `PolicyRefused` errors.
    fn name(&self) -> &str;

    /// Returns `Err(reason)` to refuse the request.
    fn permit(
        &self,
        req: &ReservationRequest,
        host_attrs: &AttributeDb,
        now: SimTime,
    ) -> Result<(), String>;
}

/// Accepts everything (the default chain).
#[derive(Debug, Default)]
pub struct AcceptAll;

impl LocalPolicy for AcceptAll {
    fn name(&self) -> &str {
        "accept-all"
    }

    fn permit(&self, _: &ReservationRequest, _: &AttributeDb, _: SimTime) -> Result<(), String> {
        Ok(())
    }
}

/// Refuses requests originating from listed domains (§3.1).
#[derive(Debug)]
pub struct DomainRefusal {
    refused: Vec<String>,
}

impl DomainRefusal {
    /// Refuse the listed requester domains.
    pub fn new(refused: impl IntoIterator<Item = impl Into<String>>) -> Self {
        DomainRefusal { refused: refused.into_iter().map(Into::into).collect() }
    }

    /// The refused domains.
    pub fn refused(&self) -> &[String] {
        &self.refused
    }
}

impl LocalPolicy for DomainRefusal {
    fn name(&self) -> &str {
        "domain-refusal"
    }

    fn permit(&self, req: &ReservationRequest, _: &AttributeDb, _: SimTime) -> Result<(), String> {
        if let Some(dom) = &req.requester_domain {
            if self.refused.iter().any(|r| r == dom) {
                return Err(format!("requests from domain `{dom}` are refused"));
            }
        }
        Ok(())
    }
}

/// Refuses new work while the host's load exceeds a ceiling.
#[derive(Debug)]
pub struct LoadCeiling {
    /// Maximum admissible load average.
    pub max_load: f64,
}

impl LocalPolicy for LoadCeiling {
    fn name(&self) -> &str {
        "load-ceiling"
    }

    fn permit(&self, _: &ReservationRequest, attrs: &AttributeDb, _: SimTime) -> Result<(), String> {
        let load = attrs.get_f64(legion_core::host::well_known::LOAD).unwrap_or(0.0);
        if load > self.max_load {
            Err(format!("load {load:.2} exceeds ceiling {:.2}", self.max_load))
        } else {
            Ok(())
        }
    }
}

/// Accepts external work only during an allowed window of the (virtual)
/// day — "its willingness to accept extra jobs based on the time of day"
/// (§3.1). Hours wrap midnight, so `from = 18, to = 8` means overnight.
#[derive(Debug)]
pub struct TimeOfDayWindow {
    /// First accepting hour (0–23).
    pub from_hour: u8,
    /// First refusing hour (0–23); equal to `from_hour` means always.
    pub to_hour: u8,
}

impl TimeOfDayWindow {
    fn hour_of(now: SimTime) -> u8 {
        ((now.as_micros() / 3_600_000_000) % 24) as u8
    }
}

impl LocalPolicy for TimeOfDayWindow {
    fn name(&self) -> &str {
        "time-of-day"
    }

    fn permit(&self, _: &ReservationRequest, _: &AttributeDb, now: SimTime) -> Result<(), String> {
        let h = Self::hour_of(now);
        let open = if self.from_hour == self.to_hour {
            true
        } else if self.from_hour < self.to_hour {
            (self.from_hour..self.to_hour).contains(&h)
        } else {
            h >= self.from_hour || h < self.to_hour
        };
        if open {
            Ok(())
        } else {
            Err(format!(
                "host accepts external jobs only {:02}:00-{:02}:00 (virtual), now {h:02}:00",
                self.from_hour, self.to_hour
            ))
        }
    }
}

/// Refuses work that would drop free memory below a floor.
#[derive(Debug)]
pub struct MemoryFloor {
    /// Minimum free memory (MB) that must remain after the grant.
    pub min_free_mb: u32,
}

impl LocalPolicy for MemoryFloor {
    fn name(&self) -> &str {
        "memory-floor"
    }

    fn permit(&self, req: &ReservationRequest, attrs: &AttributeDb, _: SimTime) -> Result<(), String> {
        let free = attrs.get_i64(legion_core::host::well_known::FREE_MEMORY_MB).unwrap_or(0);
        if free - req.memory_mb as i64 >= self.min_free_mb as i64 {
            Ok(())
        } else {
            Err(format!(
                "granting {} MB would leave {} MB free (< floor {})",
                req.memory_mb,
                free - req.memory_mb as i64,
                self.min_free_mb
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::host::well_known;
    use legion_core::{Loid, LoidKind, ReservationRequest, SimDuration};

    fn req() -> ReservationRequest {
        ReservationRequest::instantaneous(
            Loid::synthetic(LoidKind::Class, 1),
            Loid::synthetic(LoidKind::Vault, 1),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn accept_all_accepts() {
        assert!(AcceptAll.permit(&req(), &AttributeDb::new(), SimTime::ZERO).is_ok());
    }

    #[test]
    fn domain_refusal() {
        let p = DomainRefusal::new(["spam.org", "evil.net"]);
        let ok = req().from_domain("uva.edu");
        let bad = req().from_domain("evil.net");
        let anon = req();
        assert!(p.permit(&ok, &AttributeDb::new(), SimTime::ZERO).is_ok());
        assert!(p.permit(&bad, &AttributeDb::new(), SimTime::ZERO).is_err());
        // Anonymous requests are not covered by domain refusal.
        assert!(p.permit(&anon, &AttributeDb::new(), SimTime::ZERO).is_ok());
    }

    #[test]
    fn load_ceiling() {
        let p = LoadCeiling { max_load: 1.5 };
        let low = AttributeDb::new().with(well_known::LOAD, 0.5);
        let high = AttributeDb::new().with(well_known::LOAD, 2.0);
        assert!(p.permit(&req(), &low, SimTime::ZERO).is_ok());
        assert!(p.permit(&req(), &high, SimTime::ZERO).is_err());
    }

    #[test]
    fn time_window_daytime() {
        let p = TimeOfDayWindow { from_hour: 9, to_hour: 17 };
        let at = |h: u64| SimTime::from_secs(h * 3600);
        assert!(p.permit(&req(), &AttributeDb::new(), at(10)).is_ok());
        assert!(p.permit(&req(), &AttributeDb::new(), at(8)).is_err());
        assert!(p.permit(&req(), &AttributeDb::new(), at(17)).is_err());
        // Next virtual day, 10:00 again.
        assert!(p.permit(&req(), &AttributeDb::new(), at(34)).is_ok());
    }

    #[test]
    fn time_window_overnight_wraps() {
        let p = TimeOfDayWindow { from_hour: 18, to_hour: 8 };
        let at = |h: u64| SimTime::from_secs(h * 3600);
        assert!(p.permit(&req(), &AttributeDb::new(), at(20)).is_ok());
        assert!(p.permit(&req(), &AttributeDb::new(), at(3)).is_ok());
        assert!(p.permit(&req(), &AttributeDb::new(), at(12)).is_err());
    }

    #[test]
    fn memory_floor() {
        let p = MemoryFloor { min_free_mb: 128 };
        let attrs = AttributeDb::new().with(well_known::FREE_MEMORY_MB, 256i64);
        let mut r = req();
        r.memory_mb = 64;
        assert!(p.permit(&r, &attrs, SimTime::ZERO).is_ok());
        r.memory_mb = 200;
        assert!(p.permit(&r, &attrs, SimTime::ZERO).is_err());
    }
}
