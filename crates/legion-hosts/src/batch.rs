//! The Batch Queue Host.
//!
//! "most batch processing systems do not understand reservations, and so
//! our basic Batch Queue Host maintains reservations in a fashion similar
//! to the Unix Host Object" (§3.1). A [`BatchQueueHost`] therefore
//! *composes* a [`StandardHost`] — which contributes the reservation
//! table, policy chain, attribute reporting and trigger machinery — with
//! a simulated queue management system that actually executes the work.
//!
//! "Our real ability to coordinate large applications running across
//! multiple queuing systems will be limited by the functionality of the
//! underlying queuing system" — the queue disciplines in
//! [`queue_sim`](crate::queue_sim) reproduce exactly that limitation:
//! a granted reservation guarantees admission, but execution still waits
//! for a queue slot.

use crate::host::StandardHost;
use crate::queue_sim::{Job, QueueSim};
use legion_core::host::well_known;
use legion_core::{
    AttributeDb, Event, HostObject, LegionError, Loid, ObjectSpec, Opr, ReservationRequest,
    ReservationStatus, ReservationToken, SimDuration, SimTime, Trigger, TriggerId, Outcall,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregate queue statistics for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueStats {
    /// Jobs completed so far.
    pub completed: u64,
    /// Sum of queue waits (µs) over completed jobs.
    pub total_wait_us: u64,
}

impl QueueStats {
    /// Mean queue wait in seconds.
    pub fn mean_wait_secs(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_wait_us as f64 / 1e6 / self.completed as f64
        }
    }
}

/// A host fronting a (reservation-less) batch queue system.
pub struct BatchQueueHost {
    inner: Arc<StandardHost>,
    queue: Mutex<Box<dyn QueueSim>>,
    next_job: AtomicU64,
    stats: Mutex<QueueStats>,
    default_user: String,
}

impl BatchQueueHost {
    /// Wraps `inner` with the given queue discipline.
    pub fn new(inner: Arc<StandardHost>, queue: Box<dyn QueueSim>) -> Arc<Self> {
        Arc::new(BatchQueueHost {
            inner,
            queue: Mutex::new(queue),
            next_job: AtomicU64::new(1),
            stats: Mutex::new(QueueStats::default()),
            default_user: "legion".into(),
        })
    }

    /// The wrapped standard host (reservation table, policies, triggers).
    pub fn inner(&self) -> &Arc<StandardHost> {
        &self.inner
    }

    /// Queue statistics so far.
    pub fn queue_stats(&self) -> QueueStats {
        *self.stats.lock()
    }

    /// (queued, running) job counts.
    pub fn queue_depths(&self) -> (usize, usize) {
        let q = self.queue.lock();
        (q.queued(), q.running())
    }
}

impl HostObject for BatchQueueHost {
    fn loid(&self) -> Loid {
        self.inner.loid()
    }

    fn make_reservation(
        &self,
        req: &ReservationRequest,
        now: SimTime,
    ) -> Result<ReservationToken, LegionError> {
        // Reservations are host-side; the queue never sees them.
        self.inner.make_reservation(req, now)
    }

    fn check_reservation(
        &self,
        token: &ReservationToken,
        now: SimTime,
    ) -> Result<ReservationStatus, LegionError> {
        self.inner.check_reservation(token, now)
    }

    fn cancel_reservation(&self, token: &ReservationToken) -> Result<(), LegionError> {
        self.inner.cancel_reservation(token)
    }

    fn start_object(
        &self,
        token: &ReservationToken,
        specs: &[ObjectSpec],
        now: SimTime,
    ) -> Result<Vec<Loid>, LegionError> {
        // Consume the reservation and register the objects with the
        // standard host, then submit one queue job per object. The job
        // runs for the reserved duration; queue wait is extra — exactly
        // the "limited by the underlying queuing system" conflict.
        let started = self.inner.start_object(token, specs, now)?;
        let mut q = self.queue.lock();
        let cpus_per_job = (token.cpu_centis / 100).max(1) / specs.len().max(1) as u32;
        for &object in &started {
            q.submit(Job {
                id: self.next_job.fetch_add(1, Ordering::Relaxed),
                object,
                cpus: cpus_per_job.max(1),
                runtime: token.duration,
                submitted: now,
                user: self.default_user.clone(),
                priority: 0,
            });
        }
        Ok(started)
    }

    fn kill_object(&self, object: Loid) -> Result<(), LegionError> {
        self.queue.lock().remove(object);
        self.inner.kill_object(object)
    }

    fn deactivate_object(&self, object: Loid, now: SimTime) -> Result<Opr, LegionError> {
        self.queue.lock().remove(object);
        self.inner.deactivate_object(object, now)
    }

    fn reactivate_object(&self, opr: &Opr, now: SimTime) -> Result<(), LegionError> {
        self.inner.reactivate_object(opr, now)?;
        self.queue.lock().submit(Job {
            id: self.next_job.fetch_add(1, Ordering::Relaxed),
            object: opr.object,
            cpus: 1,
            runtime: SimDuration::from_secs(3600),
            submitted: now,
            user: self.default_user.clone(),
            priority: 0,
        });
        Ok(())
    }

    fn running_objects(&self) -> Vec<Loid> {
        self.inner.running_objects()
    }

    fn get_compatible_vaults(&self) -> Vec<Loid> {
        self.inner.get_compatible_vaults()
    }

    fn vault_ok(&self, vault: Loid) -> bool {
        self.inner.vault_ok(vault)
    }

    fn attributes(&self) -> AttributeDb {
        let mut attrs = self.inner.attributes();
        let q = self.queue.lock();
        attrs.set(well_known::FLAVOR, "batch");
        attrs.set(well_known::QUEUE_SYSTEM, q.name());
        attrs.set("host_queue_depth", q.queued() as i64);
        attrs.set("host_queue_running", q.running() as i64);
        attrs.set("host_queue_slots", q.slots() as i64);
        attrs
    }

    fn crash(&self) {
        // Jobs die with the machine: drop every queued/running job,
        // then fail-stop the wrapped host.
        let objects = self.inner.running_objects();
        {
            let mut q = self.queue.lock();
            for o in objects {
                q.remove(o);
            }
        }
        self.inner.crash();
    }

    fn restart(&self, now: SimTime) {
        self.inner.restart(now)
    }

    fn is_crashed(&self) -> bool {
        self.inner.is_crashed()
    }

    fn probe(&self, now: SimTime) -> Result<(), LegionError> {
        self.inner.probe(now)
    }

    fn register_trigger(&self, trigger: Trigger) -> TriggerId {
        self.inner.register_trigger(trigger)
    }

    fn remove_trigger(&self, id: TriggerId) {
        self.inner.remove_trigger(id)
    }

    fn register_outcall(&self, outcall: Arc<dyn Outcall>) {
        self.inner.register_outcall(outcall)
    }

    fn reassess(&self, now: SimTime) -> Vec<Event> {
        // Drive the queue: completed jobs leave the host.
        let completed = self.queue.lock().advance(now);
        if !completed.is_empty() {
            let mut stats = self.stats.lock();
            for c in &completed {
                stats.completed += 1;
                stats.total_wait_us += c.queue_wait().as_micros();
            }
        }
        for c in &completed {
            // The object finished; ignore races where it was already
            // killed or migrated away.
            let _ = self.inner.kill_object(c.job.object);
        }
        self.inner.reassess(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostConfig;
    use crate::queue_sim::FcfsQueue;
    use legion_core::{LoidKind, VaultDirectory, VaultObject};
    use legion_vaults::{StandardVault, VaultConfig};
    use std::collections::BTreeMap;

    /// Minimal vault directory for host-level tests.
    #[derive(Default)]
    struct MapDir {
        vaults: BTreeMap<Loid, Arc<dyn VaultObject>>,
    }

    impl MapDir {
        fn with_open_vault() -> (Arc<Self>, Loid) {
            let v: Arc<dyn VaultObject> =
                Arc::new(StandardVault::new(VaultConfig::default()));
            let loid = v.loid();
            let mut d = MapDir::default();
            d.vaults.insert(loid, v);
            (Arc::new(d), loid)
        }
    }

    impl VaultDirectory for MapDir {
        fn lookup_vault(&self, loid: Loid) -> Option<Arc<dyn VaultObject>> {
            self.vaults.get(&loid).cloned()
        }

        fn vault_loids(&self) -> Vec<Loid> {
            self.vaults.keys().copied().collect()
        }
    }

    fn batch_host() -> (Arc<BatchQueueHost>, Loid) {
        let (dir, vault) = MapDir::with_open_vault();
        let inner = StandardHost::new(HostConfig::smp("bq0", "uva.edu", 2), dir, 99);
        (BatchQueueHost::new(inner, Box::new(FcfsQueue::new(2))), vault)
    }

    #[test]
    fn jobs_queue_and_complete() {
        let (h, vault) = batch_host();
        let class = Loid::synthetic(LoidKind::Class, 1);
        // Modest CPU shares so the reservation table admits all three;
        // the 2-slot queue is then the bottleneck: one job must wait.
        let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(10))
            .with_demand(50, 64);
        for _ in 0..3 {
            let tok = h.make_reservation(&req, SimTime::ZERO).unwrap();
            h.start_object(&tok, &[ObjectSpec::new(class)], SimTime::ZERO).unwrap();
        }
        assert_eq!(h.running_objects().len(), 3);
        h.reassess(SimTime::ZERO); // queue starts 2 of 3
        assert_eq!(h.queue_depths(), (1, 2));

        h.reassess(SimTime::from_secs(10)); // first two finish, third starts
        assert_eq!(h.queue_depths().0, 0);
        let stats = h.queue_stats();
        assert_eq!(stats.completed, 2);

        h.reassess(SimTime::from_secs(20));
        assert_eq!(h.queue_stats().completed, 3);
        assert_eq!(h.running_objects().len(), 0);
        // The third job waited ~10 virtual seconds.
        assert!(h.queue_stats().mean_wait_secs() > 3.0);
    }

    #[test]
    fn batch_attributes_report_queue() {
        let (h, _) = batch_host();
        let a = h.attributes();
        assert_eq!(a.get_str(well_known::FLAVOR), Some("batch"));
        assert_eq!(a.get_str(well_known::QUEUE_SYSTEM), Some("loadleveler-sim"));
        assert_eq!(a.get_i64("host_queue_slots"), Some(2));
    }

    #[test]
    fn reservations_still_enforced_host_side() {
        let (h, vault) = batch_host();
        let class = Loid::synthetic(LoidKind::Class, 1);
        // Exclusive reservation blocks the whole (2-cpu) machine even
        // though the queue knows nothing about reservations.
        let excl = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(100))
            .with_type(legion_core::ReservationType::REUSABLE_SPACE);
        h.make_reservation(&excl, SimTime::ZERO).unwrap();
        let shared = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(10));
        assert!(h.make_reservation(&shared, SimTime::ZERO).is_err());
    }
}
