//! Simulated batch-queue management systems.
//!
//! The paper integrates Legion with "queue management systems such as
//! LoadLeveler and Condor" and reports "Batch Queue Host implementations
//! for Unix machines, LoadLeveler, and Codine" (§2.1, §3.1). Those
//! systems are proprietary; per DESIGN.md we substitute three simulated
//! queue managers with the scheduling disciplines that distinguish them:
//!
//! * [`FcfsQueue`] — strict first-come-first-served (LoadLeveler-like);
//! * [`PriorityQueue`] — priority order, FCFS within a priority
//!   (Condor-like);
//! * [`FairShareQueue`] — round-robin across users (Codine-like).
//!
//! None of them understands reservations — which is the paper's point:
//! the Batch Queue Host keeps its own reservation table and only uses the
//! queue for execution.

use legion_core::{Loid, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// A job submitted to a queue system.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Queue-local job id.
    pub id: u64,
    /// The Legion object the job runs.
    pub object: Loid,
    /// CPUs the job occupies.
    pub cpus: u32,
    /// How long the job runs once started.
    pub runtime: SimDuration,
    /// Submission time.
    pub submitted: SimTime,
    /// Submitting user (fair-share key).
    pub user: String,
    /// Priority (higher runs first where the discipline cares).
    pub priority: i32,
}

/// A finished job with its timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob {
    /// The job.
    pub job: Job,
    /// When it began executing.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
}

impl CompletedJob {
    /// Time spent waiting in the queue.
    pub fn queue_wait(&self) -> SimDuration {
        self.started.since(self.job.submitted)
    }
}

/// A queue management system simulator.
///
/// `advance(now)` first completes running jobs whose runtime has elapsed,
/// then starts queued jobs into free slots per the discipline. Drivers
/// call it from the Batch Queue Host's periodic reassessment.
pub trait QueueSim: Send {
    /// Discipline name, exported in host attributes.
    fn name(&self) -> &'static str;

    /// Submits a job.
    fn submit(&mut self, job: Job);

    /// Removes a job (queued or running); true if it existed.
    fn remove(&mut self, object: Loid) -> bool;

    /// Advances to `now`; returns jobs that completed.
    fn advance(&mut self, now: SimTime) -> Vec<CompletedJob>;

    /// Jobs currently executing.
    fn running(&self) -> usize;

    /// Jobs waiting.
    fn queued(&self) -> usize;

    /// Total CPU slots.
    fn slots(&self) -> u32;
}

#[derive(Debug, Clone)]
struct RunningJob {
    job: Job,
    started: SimTime,
    ends: SimTime,
}

/// Shared mechanics: slot accounting + completion; the discipline only
/// decides *which* queued job starts next.
#[derive(Debug)]
struct QueueCore {
    slots: u32,
    in_use: u32,
    running: Vec<RunningJob>,
}

impl QueueCore {
    fn new(slots: u32) -> Self {
        QueueCore { slots, in_use: 0, running: Vec::new() }
    }

    fn complete(&mut self, now: SimTime) -> Vec<CompletedJob> {
        let mut done = Vec::new();
        self.running.retain(|r| {
            if r.ends <= now {
                done.push(CompletedJob { job: r.job.clone(), started: r.started, finished: r.ends });
                false
            } else {
                true
            }
        });
        for d in &done {
            self.in_use -= d.job.cpus;
        }
        done
    }

    fn try_start(&mut self, job: Job, now: SimTime) -> bool {
        if self.in_use + job.cpus <= self.slots {
            self.in_use += job.cpus;
            let ends = now + job.runtime;
            self.running.push(RunningJob { job, started: now, ends });
            true
        } else {
            false
        }
    }

    fn remove_running(&mut self, object: Loid) -> bool {
        if let Some(i) = self.running.iter().position(|r| r.job.object == object) {
            self.in_use -= self.running[i].job.cpus;
            self.running.remove(i);
            true
        } else {
            false
        }
    }
}

/// Strict first-come-first-served (LoadLeveler-like).
#[derive(Debug)]
pub struct FcfsQueue {
    core: QueueCore,
    queue: VecDeque<Job>,
}

impl FcfsQueue {
    /// A queue over `slots` CPU slots.
    pub fn new(slots: u32) -> Self {
        FcfsQueue { core: QueueCore::new(slots), queue: VecDeque::new() }
    }
}

impl QueueSim for FcfsQueue {
    fn name(&self) -> &'static str {
        "loadleveler-sim"
    }

    fn submit(&mut self, job: Job) {
        self.queue.push_back(job);
    }

    fn remove(&mut self, object: Loid) -> bool {
        if let Some(i) = self.queue.iter().position(|j| j.object == object) {
            self.queue.remove(i);
            return true;
        }
        self.core.remove_running(object)
    }

    fn advance(&mut self, now: SimTime) -> Vec<CompletedJob> {
        let done = self.core.complete(now);
        // FCFS with no backfilling: stop at the first job that won't fit.
        while let Some(job) = self.queue.front() {
            if self.core.in_use + job.cpus > self.core.slots {
                break;
            }
            let job = self.queue.pop_front().expect("front checked");
            assert!(self.core.try_start(job, now));
        }
        done
    }

    fn running(&self) -> usize {
        self.core.running.len()
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn slots(&self) -> u32 {
        self.core.slots
    }
}

/// Priority scheduling, FCFS within a priority level (Condor-like).
#[derive(Debug)]
pub struct PriorityQueue {
    core: QueueCore,
    queue: Vec<Job>,
}

impl PriorityQueue {
    /// A queue over `slots` CPU slots.
    pub fn new(slots: u32) -> Self {
        PriorityQueue { core: QueueCore::new(slots), queue: Vec::new() }
    }
}

impl QueueSim for PriorityQueue {
    fn name(&self) -> &'static str {
        "condor-sim"
    }

    fn submit(&mut self, job: Job) {
        self.queue.push(job);
    }

    fn remove(&mut self, object: Loid) -> bool {
        if let Some(i) = self.queue.iter().position(|j| j.object == object) {
            self.queue.remove(i);
            return true;
        }
        self.core.remove_running(object)
    }

    fn advance(&mut self, now: SimTime) -> Vec<CompletedJob> {
        let done = self.core.complete(now);
        loop {
            // Highest priority first; ties broken by submission order
            // (stable because we scan in insertion order with strict >).
            let mut best: Option<usize> = None;
            for (i, j) in self.queue.iter().enumerate() {
                if self.core.in_use + j.cpus > self.core.slots {
                    continue;
                }
                match best {
                    None => best = Some(i),
                    Some(b) if j.priority > self.queue[b].priority => best = Some(i),
                    _ => {}
                }
            }
            match best {
                Some(i) => {
                    let job = self.queue.remove(i);
                    assert!(self.core.try_start(job, now));
                }
                None => break,
            }
        }
        done
    }

    fn running(&self) -> usize {
        self.core.running.len()
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn slots(&self) -> u32 {
        self.core.slots
    }
}

/// Round-robin across users (Codine/fair-share-like).
#[derive(Debug)]
pub struct FairShareQueue {
    core: QueueCore,
    per_user: BTreeMap<String, VecDeque<Job>>,
    /// Users in service order; rotated as they are served.
    rotation: VecDeque<String>,
}

impl FairShareQueue {
    /// A queue over `slots` CPU slots.
    pub fn new(slots: u32) -> Self {
        FairShareQueue { core: QueueCore::new(slots), per_user: BTreeMap::new(), rotation: VecDeque::new() }
    }
}

impl QueueSim for FairShareQueue {
    fn name(&self) -> &'static str {
        "codine-sim"
    }

    fn submit(&mut self, job: Job) {
        if !self.per_user.contains_key(&job.user) {
            self.rotation.push_back(job.user.clone());
        }
        self.per_user.entry(job.user.clone()).or_default().push_back(job);
    }

    fn remove(&mut self, object: Loid) -> bool {
        for q in self.per_user.values_mut() {
            if let Some(i) = q.iter().position(|j| j.object == object) {
                q.remove(i);
                return true;
            }
        }
        self.core.remove_running(object)
    }

    fn advance(&mut self, now: SimTime) -> Vec<CompletedJob> {
        let done = self.core.complete(now);
        // Serve users round-robin until nothing startable remains.
        let mut stalled = 0;
        while stalled < self.rotation.len() && !self.rotation.is_empty() {
            let Some(user) = self.rotation.pop_front() else { break };
            let started = if let Some(q) = self.per_user.get_mut(&user) {
                if let Some(job) = q.front() {
                    if self.core.in_use + job.cpus <= self.core.slots {
                        let job = q.pop_front().expect("front checked");
                        assert!(self.core.try_start(job, now));
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            } else {
                false
            };
            let empty = self.per_user.get(&user).is_none_or(|q| q.is_empty());
            if empty {
                self.per_user.remove(&user);
            } else {
                self.rotation.push_back(user);
            }
            stalled = if started { 0 } else { stalled + 1 };
        }
        done
    }

    fn running(&self) -> usize {
        self.core.running.len()
    }

    fn queued(&self) -> usize {
        self.per_user.values().map(|q| q.len()).sum()
    }

    fn slots(&self) -> u32 {
        self.core.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::LoidKind;

    fn job(id: u64, cpus: u32, secs: u64) -> Job {
        Job {
            id,
            object: Loid::synthetic(LoidKind::Instance, id),
            cpus,
            runtime: SimDuration::from_secs(secs),
            submitted: SimTime::ZERO,
            user: "alice".into(),
            priority: 0,
        }
    }

    #[test]
    fn fcfs_runs_in_order() {
        let mut q = FcfsQueue::new(1);
        q.submit(job(1, 1, 10));
        q.submit(job(2, 1, 10));
        q.advance(SimTime::ZERO);
        assert_eq!(q.running(), 1);
        assert_eq!(q.queued(), 1);
        let done = q.advance(SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].job.id, 1);
        assert_eq!(q.running(), 1); // job 2 started at t=10
        let done = q.advance(SimTime::from_secs(20));
        assert_eq!(done[0].job.id, 2);
        assert_eq!(done[0].queue_wait(), SimDuration::from_secs(10));
    }

    #[test]
    fn fcfs_does_not_backfill() {
        let mut q = FcfsQueue::new(2);
        q.submit(job(1, 2, 10));
        q.advance(SimTime::ZERO);
        q.submit(job(2, 2, 10)); // blocks the head
        q.submit(job(3, 1, 1)); // would fit, but FCFS won't jump it
        q.advance(SimTime::from_secs(1));
        assert_eq!(q.running(), 1);
        assert_eq!(q.queued(), 2);
    }

    #[test]
    fn priority_orders_by_priority() {
        let mut q = PriorityQueue::new(1);
        let mut lo = job(1, 1, 5);
        lo.priority = 1;
        let mut hi = job(2, 1, 5);
        hi.priority = 9;
        q.submit(lo);
        q.submit(hi);
        q.advance(SimTime::ZERO);
        let done = q.advance(SimTime::from_secs(5));
        assert_eq!(done[0].job.id, 2, "high priority runs first");
    }

    #[test]
    fn priority_ties_are_fcfs() {
        let mut q = PriorityQueue::new(1);
        q.submit(job(1, 1, 5));
        q.submit(job(2, 1, 5));
        q.advance(SimTime::ZERO);
        let done = q.advance(SimTime::from_secs(5));
        assert_eq!(done[0].job.id, 1);
    }

    #[test]
    fn fair_share_alternates_users() {
        let mut q = FairShareQueue::new(1);
        for i in 0..3 {
            let mut j = job(i, 1, 10);
            j.user = "alice".into();
            j.id = i;
            q.submit(j);
        }
        let mut bob = job(10, 1, 10);
        bob.user = "bob".into();
        q.submit(bob);

        // alice's first job starts; at its completion bob goes next even
        // though alice queued earlier jobs.
        q.advance(SimTime::ZERO);
        let done = q.advance(SimTime::from_secs(10));
        assert_eq!(done[0].job.user, "alice");
        let done = q.advance(SimTime::from_secs(20));
        assert_eq!(done[0].job.user, "bob", "fair share should rotate to bob");
    }

    #[test]
    fn remove_covers_queued_and_running() {
        let mut q = FcfsQueue::new(1);
        q.submit(job(1, 1, 10));
        q.submit(job(2, 1, 10));
        q.advance(SimTime::ZERO);
        assert!(q.remove(Loid::synthetic(LoidKind::Instance, 2))); // queued
        assert!(q.remove(Loid::synthetic(LoidKind::Instance, 1))); // running
        assert!(!q.remove(Loid::synthetic(LoidKind::Instance, 3)));
        assert_eq!(q.running() + q.queued(), 0);
    }

    #[test]
    fn multi_cpu_jobs_respect_slots() {
        let mut q = FcfsQueue::new(4);
        q.submit(job(1, 3, 10));
        q.submit(job(2, 2, 10));
        q.advance(SimTime::ZERO);
        assert_eq!(q.running(), 1, "3+2 > 4 slots");
        q.advance(SimTime::from_secs(10));
        assert_eq!(q.running(), 1, "second starts after first completes");
    }
}
