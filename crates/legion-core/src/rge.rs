//! Reflective Graph and Events (RGE) — triggers and outcalls.
//!
//! "Hosts also contain a mechanism for defining event triggers — this
//! allows a Host to, e.g., initiate object migration if its load rises
//! above a threshold. Conceptually, triggers are guarded statements which
//! raise events if the guard evaluates to a boolean true." (§2.1)
//!
//! "Using this mechanism, the Monitor can register an outcall with the
//! Host Objects; this outcall will be performed when a trigger's guard
//! evaluates to true." (§3.5)
//!
//! A [`Trigger`] pairs a [`Guard`] (a predicate over the host's attribute
//! database) with the [`EventKind`] to raise. Hosts evaluate their
//! triggers whenever they reassess local state, and deliver raised
//! [`Event`]s to every registered [`Outcall`].

use crate::attrs::AttributeDb;
use crate::loid::Loid;
use crate::time::{SimDuration, SimTime};
use std::fmt;
use std::sync::Arc;

/// Identifier of a registered trigger on a particular host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriggerId(pub u64);

/// The kind of event a trigger raises.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Load rose above the trigger's threshold — the canonical migration
    /// trigger from the paper.
    LoadThresholdExceeded,
    /// Free memory fell below a threshold.
    MemoryPressure,
    /// A running object failed.
    ObjectFailed,
    /// A reservation lapsed without confirmation.
    ReservationExpired,
    /// The host is shutting down and objects must migrate.
    HostShutdown,
    /// Extension point for user-defined triggers.
    Custom(String),
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::LoadThresholdExceeded => write!(f, "load-threshold-exceeded"),
            EventKind::MemoryPressure => write!(f, "memory-pressure"),
            EventKind::ObjectFailed => write!(f, "object-failed"),
            EventKind::ReservationExpired => write!(f, "reservation-expired"),
            EventKind::HostShutdown => write!(f, "host-shutdown"),
            EventKind::Custom(s) => write!(f, "custom:{s}"),
        }
    }
}

/// An event raised by a trigger.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The object (usually a Host) that raised it.
    pub source: Loid,
    /// When it was raised.
    pub at: SimTime,
    /// A snapshot of relevant source state (e.g. the offending load).
    pub detail: AttributeDb,
}

/// A guard: boolean predicate over an attribute database.
///
/// Guards are built from combinators so schedulers and monitors can
/// assemble them without writing closures, but an arbitrary predicate
/// escape hatch is provided.
///
/// ```
/// use legion_core::{AttributeDb, Guard};
///
/// // The paper's canonical trigger: load above a threshold.
/// let overloaded = Guard::attr_gt("host_load", 0.8)
///     .and(Guard::attr_eq("host_os_name", "IRIX"));
/// let db = AttributeDb::new().with("host_load", 1.2).with("host_os_name", "IRIX");
/// assert!(overloaded.eval(&db));
/// ```
#[derive(Clone)]
pub struct Guard(Arc<dyn Fn(&AttributeDb) -> bool + Send + Sync>);

impl Guard {
    /// Guard from an arbitrary predicate.
    pub fn from_fn(f: impl Fn(&AttributeDb) -> bool + Send + Sync + 'static) -> Self {
        Guard(Arc::new(f))
    }

    /// `$attr > threshold` (numeric).
    pub fn attr_gt(attr: impl Into<String>, threshold: f64) -> Self {
        let attr = attr.into();
        Guard::from_fn(move |db| db.get_f64(&attr).is_some_and(|v| v > threshold))
    }

    /// `$attr < threshold` (numeric).
    pub fn attr_lt(attr: impl Into<String>, threshold: f64) -> Self {
        let attr = attr.into();
        Guard::from_fn(move |db| db.get_f64(&attr).is_some_and(|v| v < threshold))
    }

    /// `$attr == value` (string).
    pub fn attr_eq(attr: impl Into<String>, value: impl Into<String>) -> Self {
        let attr = attr.into();
        let value = value.into();
        Guard::from_fn(move |db| db.get_str(&attr) == Some(value.as_str()))
    }

    /// Conjunction.
    pub fn and(self, other: Guard) -> Self {
        Guard::from_fn(move |db| self.eval(db) && other.eval(db))
    }

    /// Disjunction.
    pub fn or(self, other: Guard) -> Self {
        Guard::from_fn(move |db| self.eval(db) || other.eval(db))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Guard::from_fn(move |db| !self.eval(db))
    }

    /// Evaluates the guard.
    pub fn eval(&self, db: &AttributeDb) -> bool {
        (self.0)(db)
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Guard(..)")
    }
}

/// A guarded statement: when the guard becomes true during a host's state
/// reassessment, the event is raised.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// The predicate over the host's attribute database.
    pub guard: Guard,
    /// What to raise when the guard fires.
    pub raises: EventKind,
    /// Minimum virtual time between consecutive firings, so a persistently
    /// loaded host does not flood its Monitor with events.
    pub cooldown: SimDuration,
}

impl Trigger {
    /// Creates a trigger with a default 5-second cooldown.
    pub fn new(guard: Guard, raises: EventKind) -> Self {
        Trigger { guard, raises, cooldown: SimDuration::from_secs(5) }
    }

    /// Builder: override the cooldown.
    pub fn with_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.cooldown = cooldown;
        self
    }
}

/// A registered event sink — the Monitor side of an RGE outcall.
pub trait Outcall: Send + Sync {
    /// Called by the host when a trigger fires. Implementations must be
    /// quick and non-blocking; heavy work belongs on the Monitor's own
    /// thread.
    fn notify(&self, event: &Event);
}

/// Trivial outcall that collects events into a shared vector (testing).
#[derive(Debug, Default)]
pub struct CollectingOutcall {
    events: parking_lot::Mutex<Vec<Event>>,
}

impl CollectingOutcall {
    /// Creates an empty collector.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Drains the collected events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock())
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Outcall for CollectingOutcall {
    fn notify(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(load: f64, os: &str) -> AttributeDb {
        AttributeDb::new().with("host_load", load).with("host_os_name", os)
    }

    #[test]
    fn threshold_guards() {
        let g = Guard::attr_gt("host_load", 0.8);
        assert!(g.eval(&db(0.9, "IRIX")));
        assert!(!g.eval(&db(0.5, "IRIX")));
        assert!(!g.eval(&AttributeDb::new())); // missing attr never fires
    }

    #[test]
    fn combinators() {
        let g = Guard::attr_gt("host_load", 0.8).and(Guard::attr_eq("host_os_name", "IRIX"));
        assert!(g.eval(&db(0.9, "IRIX")));
        assert!(!g.eval(&db(0.9, "Linux")));
        let h = Guard::attr_lt("host_load", 0.1).or(Guard::attr_eq("host_os_name", "Linux"));
        assert!(h.eval(&db(0.9, "Linux")));
        assert!(h.eval(&db(0.05, "IRIX")));
        assert!(!h.eval(&db(0.5, "IRIX")));
        assert!(Guard::attr_gt("host_load", 0.8).not().eval(&db(0.1, "x")));
    }

    #[test]
    fn collecting_outcall_gathers() {
        let c = CollectingOutcall::new();
        assert!(c.is_empty());
        let e = Event {
            kind: EventKind::LoadThresholdExceeded,
            source: Loid::NIL,
            at: SimTime::ZERO,
            detail: AttributeDb::new(),
        };
        c.notify(&e);
        c.notify(&e);
        assert_eq!(c.len(), 2);
        assert_eq!(c.take().len(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn event_kind_display() {
        assert_eq!(EventKind::LoadThresholdExceeded.to_string(), "load-threshold-exceeded");
        assert_eq!(EventKind::Custom("x".into()).to_string(), "custom:x");
    }
}
