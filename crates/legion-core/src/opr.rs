//! Object Persistent Representations.
//!
//! "To be executed, a Legion object must have a Vault to hold its
//! persistent state in an Object Persistent Representation (OPR). The
//! OPR is used for migration and for shutdown/restart purposes." (§2.1)
//!
//! All Legion objects support shutdown and restart, so "any active object
//! can be migrated by shutting it down, moving the passive state to a new
//! Vault if necessary, and activating the object on another host". The
//! migration driver in `legion-monitor` exercises exactly this sequence.

use crate::loid::Loid;
use crate::time::SimTime;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// The serialized passive state of a deactivated object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Opr {
    /// The object this state belongs to.
    pub object: Loid,
    /// The object's class.
    pub class: Loid,
    /// When the state was saved.
    pub saved_at: SimTime,
    /// Serialized state bytes (opaque to the RMI).
    #[serde(with = "bytes_serde")]
    pub state: Bytes,
    /// Monotonic version; bumped on every save so a stale OPR can be
    /// detected after migration races.
    pub version: u64,
    /// Memory footprint of the active object (MB), so the reactivating
    /// host can account for it without decoding the opaque state.
    pub memory_mb: u32,
    /// CPU demand of the active object (hundredths of a CPU), for the
    /// same accounting purpose.
    pub cpu_centis: u32,
}

impl Opr {
    /// Creates an OPR from raw state bytes.
    pub fn new(object: Loid, class: Loid, saved_at: SimTime, state: impl Into<Bytes>) -> Self {
        Opr { object, class, saved_at, state: state.into(), version: 1, memory_mb: 64, cpu_centis: 100 }
    }

    /// Builder: record the active object's memory footprint.
    pub fn with_memory_mb(mut self, mb: u32) -> Self {
        self.memory_mb = mb;
        self
    }

    /// Builder: record the active object's CPU demand.
    pub fn with_cpu_centis(mut self, centis: u32) -> Self {
        self.cpu_centis = centis;
        self
    }

    /// Size of the stored state, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.state.len()
    }

    /// Returns a copy with a bumped version and new timestamp, as written
    /// by a subsequent deactivation.
    pub fn resaved(&self, at: SimTime, state: impl Into<Bytes>) -> Opr {
        Opr {
            object: self.object,
            class: self.class,
            saved_at: at,
            state: state.into(),
            version: self.version + 1,
            memory_mb: self.memory_mb,
            cpu_centis: self.cpu_centis,
        }
    }
}

// Only referenced from the Serialize/Deserialize derive expansions; the
// vendored no-op derives leave it unused at compile time.
#[allow(dead_code)]
mod bytes_serde {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loid::LoidKind;

    #[test]
    fn construction_and_size() {
        let o = Opr::new(
            Loid::synthetic(LoidKind::Instance, 1),
            Loid::synthetic(LoidKind::Class, 2),
            SimTime::from_secs(1),
            vec![0u8; 128],
        );
        assert_eq!(o.size_bytes(), 128);
        assert_eq!(o.version, 1);
    }

    #[test]
    fn resave_bumps_version() {
        let o = Opr::new(
            Loid::synthetic(LoidKind::Instance, 1),
            Loid::synthetic(LoidKind::Class, 2),
            SimTime::ZERO,
            &b"state-v1"[..],
        );
        let o2 = o.resaved(SimTime::from_secs(9), &b"state-v2"[..]);
        assert_eq!(o2.version, 2);
        assert_eq!(o2.saved_at, SimTime::from_secs(9));
        assert_eq!(o2.object, o.object);
        assert_eq!(&o2.state[..], b"state-v2");
    }
}
