//! Host object interface — **Table 1** of the paper.
//!
//! | Reservation Management | Process Management | Information Reporting |
//! |---|---|---|
//! | `make_reservation()` | `start_object()` | `get_compatible_vaults()` |
//! | `check_reservation()` | `kill_object()` | `vault_ok()` |
//! | `cancel_reservation()` | `deactivate_object()` | *(attribute database)* |
//!
//! "When asked for a reservation, the Host is responsible for ensuring
//! that the vault is reachable, that sufficient resources are available,
//! and that its local placement policy permits instantiating the object."
//! (§3.1)
//!
//! "The StartObject function can create one or more objects; this is
//! important to support efficient object creation for multiprocessor
//! systems." (§3.1)
//!
//! Object reactivation needs no explicit method — it is initiated by an
//! attempt to access the object — so the interface matches the paper's
//! three groups plus trigger registration (§2.1) and the periodic state
//! reassessment hook (§3.1).

use crate::attrs::AttributeDb;
use crate::error::LegionError;
use crate::loid::Loid;
use crate::opr::Opr;
use crate::request::ObjectImplementation;
use crate::reservation::{ReservationRequest, ReservationToken};
use crate::rge::{Event, Outcall, Trigger, TriggerId};
use crate::time::SimTime;
use std::sync::Arc;

/// Well-known attribute names exported by Host objects.
///
/// The paper's minimum is "architecture, OS, and load average"; Legion
/// hosts export "a rich set of information, well beyond" it — price per
/// cycle, refused domains, willingness by time of day (§3.1).
pub mod well_known {
    /// Operating system name, e.g. `"IRIX"`.
    pub const OS_NAME: &str = "host_os_name";
    /// Operating system version, e.g. `"5.3"`.
    pub const OS_VERSION: &str = "host_os_version";
    /// Architecture, e.g. `"mips"`.
    pub const ARCH: &str = "host_arch";
    /// Current load average, normalized to [0, ncpus].
    pub const LOAD: &str = "host_load";
    /// Number of processors.
    pub const NCPUS: &str = "host_ncpus";
    /// Total physical memory (MB).
    pub const MEMORY_MB: &str = "host_memory_mb";
    /// Currently available memory (MB).
    pub const FREE_MEMORY_MB: &str = "host_free_memory_mb";
    /// Administrative domain name.
    pub const DOMAIN: &str = "host_domain";
    /// Price charged per CPU-second, in millicents.
    pub const PRICE_PER_CPU_SEC: &str = "host_price_per_cpu_sec";
    /// Domains from which instantiation requests are refused (list).
    pub const REFUSED_DOMAINS: &str = "host_refused_domains";
    /// Willingness to accept extra jobs right now, in [0, 1].
    pub const WILLINGNESS: &str = "host_willingness";
    /// Host flavor: `"unix"`, `"smp"` or `"batch"`.
    pub const FLAVOR: &str = "host_flavor";
    /// Batch-queue system behind a batch host (`"condor-sim"`, ...).
    pub const QUEUE_SYSTEM: &str = "host_queue_system";
    /// Number of running Legion objects.
    pub const RUNNING_OBJECTS: &str = "host_running_objects";
    /// Compatible vault LOIDs (list of strings).
    pub const COMPATIBLE_VAULTS: &str = "host_compatible_vaults";
}

/// Status returned by `check_reservation()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationStatus {
    /// Granted, waiting for its start time or confirmation.
    Pending,
    /// In its service window (or confirmed and running).
    Active,
    /// Consumed by a one-shot `start_object()`.
    Consumed,
    /// Lapsed — confirmation timeout or window end passed.
    Expired,
    /// Cancelled by the Enactor.
    Cancelled,
}

/// Specification of one object to start under a reservation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// The class of the object (must match the reservation's class).
    pub class: Loid,
    /// Pre-allocated LOID for the instance, or NIL to let the host mint.
    pub instance: Loid,
    /// Initial state to place in the vault as the object's OPR seed.
    pub initial_state: Vec<u8>,
    /// Expected memory footprint (MB), for host accounting.
    pub memory_mb: u32,
    /// The implementation (binary) selected for this instance — "this
    /// mapping process may also select from among the available
    /// implementations" (§3.3). `None` leaves the choice to the host's
    /// platform; `Some` is validated against it.
    pub implementation: Option<ObjectImplementation>,
}

impl ObjectSpec {
    /// A spec with host-minted LOID and empty initial state.
    pub fn new(class: Loid) -> Self {
        ObjectSpec {
            class,
            instance: Loid::NIL,
            initial_state: Vec::new(),
            memory_mb: 64,
            implementation: None,
        }
    }

    /// Builder: select an implementation explicitly.
    pub fn with_implementation(mut self, imp: ObjectImplementation) -> Self {
        self.implementation = Some(imp);
        self
    }
}

/// The Host object interface (Table 1).
pub trait HostObject: Send + Sync {
    /// This host's identifier.
    fn loid(&self) -> Loid;

    // --- Reservation management -----------------------------------------

    /// Grants (or refuses) a reservation.
    ///
    /// The host must verify vault reachability, resource availability and
    /// local placement policy before granting (§3.1).
    fn make_reservation(
        &self,
        req: &ReservationRequest,
        now: SimTime,
    ) -> Result<ReservationToken, LegionError>;

    /// Reports the status of a previously granted reservation.
    fn check_reservation(
        &self,
        token: &ReservationToken,
        now: SimTime,
    ) -> Result<ReservationStatus, LegionError>;

    /// Releases a reservation and its resources.
    fn cancel_reservation(&self, token: &ReservationToken) -> Result<(), LegionError>;

    // --- Process (object) management ------------------------------------

    /// Instantiates one or more objects under a reservation.
    ///
    /// Presenting the token is the implicit confirmation of an
    /// instantaneous reservation (§3.1). One-shot tokens are consumed;
    /// reusable tokens may be presented again.
    fn start_object(
        &self,
        token: &ReservationToken,
        specs: &[ObjectSpec],
        now: SimTime,
    ) -> Result<Vec<Loid>, LegionError>;

    /// Destroys a running object.
    fn kill_object(&self, object: Loid) -> Result<(), LegionError>;

    /// Deactivates a running object: serializes its state to an OPR,
    /// stores it in the object's vault, and returns the OPR (the first
    /// half of a migration).
    fn deactivate_object(&self, object: Loid, now: SimTime) -> Result<Opr, LegionError>;

    /// Reactivates an object from its OPR (the second half of a
    /// migration); the OPR must be fetchable from a compatible vault.
    fn reactivate_object(&self, opr: &Opr, now: SimTime) -> Result<(), LegionError>;

    /// The objects currently running on this host.
    fn running_objects(&self) -> Vec<Loid>;

    // --- Information reporting -------------------------------------------

    /// Vaults this host can use for OPR storage.
    fn get_compatible_vaults(&self) -> Vec<Loid>;

    /// Whether the named vault is reachable and compatible.
    fn vault_ok(&self, vault: Loid) -> bool;

    /// A snapshot of the host's attribute database. "These information
    /// reporting methods ... allow an external agent to retrieve
    /// information describing the Host's state" (§3.1).
    fn attributes(&self) -> AttributeDb;

    // --- Failure model ----------------------------------------------------

    /// Simulated fail-stop crash (§3.4 failure model): volatile state —
    /// running objects and live reservations — is lost, and every
    /// subsequent call fails with [`LegionError::HostDown`] until
    /// [`HostObject::restart`]. Hosts without a failure model ignore it.
    fn crash(&self) {}

    /// Brings a crashed host back up with reclaimed (empty) resources.
    /// Objects that were running are *not* resurrected — recovery is the
    /// Monitor's restart-from-OPR path (§2.1).
    fn restart(&self, _now: SimTime) {}

    /// Whether this host is currently crashed.
    fn is_crashed(&self) -> bool {
        false
    }

    /// Liveness probe ("are you there?"), as a Monitor would issue when a
    /// host misses its RGE reports. A crashed host answers `HostDown`.
    fn probe(&self, _now: SimTime) -> Result<(), LegionError> {
        Ok(())
    }

    // --- Triggers and periodic reassessment ------------------------------

    /// Registers an RGE trigger; returns its identifier.
    fn register_trigger(&self, trigger: Trigger) -> TriggerId;

    /// Removes a trigger.
    fn remove_trigger(&self, id: TriggerId);

    /// Registers a Monitor outcall to be notified when triggers fire.
    fn register_outcall(&self, outcall: Arc<dyn Outcall>);

    /// Periodic local-state reassessment (§3.1): recompute load and
    /// attribute values, expire lapsed reservations, evaluate triggers.
    /// Returns any events raised (they are also delivered to outcalls).
    fn reassess(&self, now: SimTime) -> Vec<Event>;
}
