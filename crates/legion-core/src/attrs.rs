//! The extensible attribute database carried by every Legion object.
//!
//! "In their simplest form, attributes are (name, value) pairs. ... All
//! Legion objects include an extensible attribute database, the contents
//! of which are determined by the type of the object." (§3.1)
//!
//! Host objects populate their databases with architecture, operating
//! system, load, available memory and richer policy information (price
//! per CPU cycle, refused domains, time-of-day willingness...). The
//! Collection stores one [`AttributeDb`] per resource record and the
//! query language evaluates against it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A single attribute value.
///
/// Values are dynamically typed; the query evaluator performs semantic
/// comparisons with int/float coercion, mirroring the grammar of the
/// MESSIAHS work the paper builds on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Ordered list of values (e.g. compatible vault LOIDs).
    List(Vec<AttrValue>),
}

impl AttrValue {
    /// Numeric view with int→float coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats are not truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[AttrValue]> {
        match self {
            AttrValue::List(l) => Some(l),
            _ => None,
        }
    }

    /// Semantic comparison with numeric coercion.
    ///
    /// Numbers compare numerically across Int/Float; strings compare
    /// lexicographically; booleans false < true. Mixed, non-coercible
    /// kinds are incomparable (`None`).
    pub fn semantic_cmp(&self, other: &AttrValue) -> Option<std::cmp::Ordering> {
        use AttrValue::*;
        match (self, other) {
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (List(a), List(b)) => {
                // Lexicographic over semantic element comparison.
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.semantic_cmp(y)? {
                        std::cmp::Ordering::Equal => continue,
                        ord => return Some(ord),
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Str(s) => write!(f, "{s:?}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl<T: Into<AttrValue>> From<Vec<T>> for AttrValue {
    fn from(v: Vec<T>) -> Self {
        AttrValue::List(v.into_iter().map(Into::into).collect())
    }
}

/// An ordered attribute database: name → value.
///
/// Backed by a `BTreeMap` so iteration order (and therefore Collection
/// record serialization and experiment output) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributeDb {
    entries: BTreeMap<String, AttrValue>,
}

impl AttributeDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an attribute, returning the previous value if any.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<AttrValue>) -> Option<AttrValue> {
        self.entries.insert(name.into(), value.into())
    }

    /// Builder-style set.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Looks up an attribute.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.entries.get(name)
    }

    /// Removes an attribute.
    pub fn remove(&mut self, name: &str) -> Option<AttrValue> {
        self.entries.remove(name)
    }

    /// Whether the attribute exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Overwrites entries from `other` into `self` (push-model update:
    /// "UpdateCollectionEntry" merges fresh host state over the record).
    pub fn merge_from(&mut self, other: &AttributeDb) {
        for (k, v) in other.iter() {
            self.entries.insert(k.to_string(), v.clone());
        }
    }

    /// Convenience numeric getter.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(AttrValue::as_f64)
    }

    /// Convenience integer getter.
    pub fn get_i64(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(AttrValue::as_i64)
    }

    /// Convenience string getter.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(AttrValue::as_str)
    }

    /// Convenience boolean getter.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(AttrValue::as_bool)
    }
}

impl FromIterator<(String, AttrValue)> for AttributeDb {
    fn from_iter<T: IntoIterator<Item = (String, AttrValue)>>(iter: T) -> Self {
        AttributeDb { entries: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn set_get_roundtrip() {
        let mut db = AttributeDb::new();
        db.set("host_os_name", "IRIX");
        db.set("host_load", 0.25);
        db.set("host_ncpus", 4i64);
        db.set("accepts_guests", true);
        assert_eq!(db.get_str("host_os_name"), Some("IRIX"));
        assert_eq!(db.get_f64("host_load"), Some(0.25));
        assert_eq!(db.get_i64("host_ncpus"), Some(4));
        assert_eq!(db.get_bool("accepts_guests"), Some(true));
        assert_eq!(db.len(), 4);
    }

    #[test]
    fn numeric_coercion_in_comparison() {
        assert_eq!(
            AttrValue::Int(3).semantic_cmp(&AttrValue::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            AttrValue::Float(2.5).semantic_cmp(&AttrValue::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn strings_and_numbers_are_incomparable() {
        assert_eq!(AttrValue::Str("3".into()).semantic_cmp(&AttrValue::Int(3)), None);
    }

    #[test]
    fn list_comparison_is_lexicographic() {
        let a: AttrValue = vec![1i64, 2].into();
        let b: AttrValue = vec![1i64, 3].into();
        let c: AttrValue = vec![1i64, 2, 0].into();
        assert_eq!(a.semantic_cmp(&b), Some(Ordering::Less));
        assert_eq!(a.semantic_cmp(&c), Some(Ordering::Less));
        assert_eq!(a.semantic_cmp(&a), Some(Ordering::Equal));
    }

    #[test]
    fn merge_overwrites() {
        let mut a = AttributeDb::new().with("x", 1i64).with("y", 2i64);
        let b = AttributeDb::new().with("y", 9i64).with("z", 3i64);
        a.merge_from(&b);
        assert_eq!(a.get_i64("y"), Some(9));
        assert_eq!(a.get_i64("z"), Some(3));
        assert_eq!(a.get_i64("x"), Some(1));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let db = AttributeDb::new().with("b", 1i64).with("a", 2i64).with("c", 3i64);
        let names: Vec<&str> = db.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn display_renders_lists() {
        let v: AttrValue = vec!["a", "b"].into();
        assert_eq!(v.to_string(), r#"["a", "b"]"#);
    }
}
