//! Error taxonomy for the resource management infrastructure.
//!
//! The paper stresses that "Legion objects are built to accommodate
//! failure at any step in the scheduling process" (§3.1), so the error
//! type distinguishes the failure classes the Enactor must react to:
//! reservation denials (retry a variant schedule), malformed schedules
//! (report to the Scheduler), autonomy refusals (the host's prerogative)
//! and infrastructure failures (network, unknown objects).

use crate::loid::Loid;
use std::fmt;

/// Any error raised by RMI components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegionError {
    /// The host declined the reservation: insufficient capacity.
    ReservationDenied {
        /// The refusing host.
        host: Loid,
        /// Human-readable reason.
        reason: String,
    },
    /// A token failed tag verification — forged or tampered.
    InvalidToken,
    /// The token's confirmation timeout or duration has lapsed.
    ReservationExpired,
    /// A one-shot (`reuse = 0`) token was presented a second time.
    ReservationConsumed,
    /// The requested vault is not reachable from the host.
    VaultUnreachable {
        /// Host performing the check.
        host: Loid,
        /// The unreachable vault.
        vault: Loid,
    },
    /// The vault is reachable but incompatible (architecture/domain).
    VaultIncompatible {
        /// Host performing the check.
        host: Loid,
        /// The incompatible vault.
        vault: Loid,
    },
    /// Local placement policy refused the request (site autonomy, §3.1).
    PolicyRefused {
        /// The refusing host.
        host: Loid,
        /// Which policy fired.
        policy: String,
    },
    /// No such object is known to the callee.
    NoSuchObject(Loid),
    /// The named host does not exist in the fabric.
    NoSuchHost(Loid),
    /// The named vault does not exist in the fabric.
    NoSuchVault(Loid),
    /// An OPR was requested that the vault does not hold.
    NoSuchOpr(Loid),
    /// The vault has no room for the OPR.
    VaultFull(Loid),
    /// The host has crashed (fail-stop): it answers no calls, its
    /// volatile state is lost, and it stays down until restarted. Callers
    /// should not retry against the same host; the Enactor's variant walk
    /// or the Monitor's restart-from-OPR path is the recovery route.
    HostDown(Loid),
    /// Simulated network failure between domains.
    NetworkFailure {
        /// Message source.
        from: Loid,
        /// Message destination.
        to: Loid,
    },
    /// A schedule was structurally invalid (e.g. empty master, bitmap
    /// length mismatch). The Enactor "may report whether the failure was
    /// due to ... a malformed schedule" (§3.4).
    MalformedSchedule(String),
    /// All master and variant schedules failed to reserve.
    AllSchedulesFailed {
        /// Number of schedules attempted.
        attempted: usize,
    },
    /// A caller failed Collection authentication.
    AuthFailed,
    /// A query string failed to parse.
    BadQuery(String),
    /// The class has no implementation for any available platform.
    NoUsableImplementation {
        /// The class that could not be instantiated.
        class: Loid,
    },
    /// Object (de)serialization failed.
    Serialization(String),
    /// Catch-all for extensions.
    Other(String),
}

impl fmt::Display for LegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use LegionError::*;
        match self {
            ReservationDenied { host, reason } => {
                write!(f, "host {host} denied reservation: {reason}")
            }
            InvalidToken => write!(f, "reservation token failed verification"),
            ReservationExpired => write!(f, "reservation expired"),
            ReservationConsumed => write!(f, "one-shot reservation already consumed"),
            VaultUnreachable { host, vault } => {
                write!(f, "vault {vault} unreachable from host {host}")
            }
            VaultIncompatible { host, vault } => {
                write!(f, "vault {vault} incompatible with host {host}")
            }
            PolicyRefused { host, policy } => {
                write!(f, "host {host} policy `{policy}` refused the request")
            }
            NoSuchObject(l) => write!(f, "no such object {l}"),
            NoSuchHost(l) => write!(f, "no such host {l}"),
            NoSuchVault(l) => write!(f, "no such vault {l}"),
            NoSuchOpr(l) => write!(f, "no OPR stored for object {l}"),
            VaultFull(l) => write!(f, "vault {l} is full"),
            HostDown(l) => write!(f, "host {l} is down"),
            NetworkFailure { from, to } => write!(f, "network failure {from} -> {to}"),
            MalformedSchedule(why) => write!(f, "malformed schedule: {why}"),
            AllSchedulesFailed { attempted } => {
                write!(f, "all {attempted} schedules failed to reserve")
            }
            AuthFailed => write!(f, "authentication failed"),
            BadQuery(why) => write!(f, "bad query: {why}"),
            NoUsableImplementation { class } => {
                write!(f, "class {class} has no usable implementation")
            }
            Serialization(why) => write!(f, "serialization error: {why}"),
            Other(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for LegionError {}

impl LegionError {
    /// Whether the Enactor should try a variant schedule after this error.
    ///
    /// Resource-level denials and transient infrastructure faults are
    /// retryable with a different mapping; malformed schedules and
    /// authentication problems are not.
    pub fn is_retryable(&self) -> bool {
        use LegionError::*;
        matches!(
            self,
            ReservationDenied { .. }
                | ReservationExpired
                | VaultUnreachable { .. }
                | VaultIncompatible { .. }
                | PolicyRefused { .. }
                | NetworkFailure { .. }
                | VaultFull(_)
                | HostDown(_)
        )
    }

    /// Whether retrying the *same* host can ever succeed without outside
    /// intervention. `HostDown` and `NoSuchHost` are permanent per-host:
    /// the Enactor should fail over to a variant mapping immediately
    /// instead of burning attempts (and backoff budget) on a dead host.
    pub fn is_permanent_for_host(&self) -> bool {
        matches!(self, LegionError::HostDown(_) | LegionError::NoSuchHost(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loid::{Loid, LoidKind};

    #[test]
    fn display_is_informative() {
        let h = Loid::synthetic(LoidKind::Host, 1);
        let e = LegionError::PolicyRefused { host: h, policy: "domain-refusal".into() };
        let s = e.to_string();
        assert!(s.contains("domain-refusal"));
        assert!(s.contains("1.02.1"));
    }

    #[test]
    fn retryability_classification() {
        let h = Loid::synthetic(LoidKind::Host, 1);
        let v = Loid::synthetic(LoidKind::Vault, 1);
        assert!(LegionError::ReservationDenied { host: h, reason: "busy".into() }.is_retryable());
        assert!(LegionError::VaultUnreachable { host: h, vault: v }.is_retryable());
        assert!(LegionError::NetworkFailure { from: h, to: v }.is_retryable());
        assert!(!LegionError::MalformedSchedule("empty".into()).is_retryable());
        assert!(!LegionError::AuthFailed.is_retryable());
        assert!(!LegionError::InvalidToken.is_retryable());
    }
}
