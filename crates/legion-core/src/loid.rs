//! Legion Object IDentifiers.
//!
//! Every Legion object has a location-independent name. A [`Loid`] here
//! carries the kind of object it names (class, host, vault, instance or
//! service object), a sequence number drawn from a global allocator, and
//! a random disambiguator so identifiers from different testbeds do not
//! collide.

use crate::hash::mix64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of object a [`Loid`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LoidKind {
    /// A class object (e.g. `LegionClass`, `HostClass`, a user class).
    Class,
    /// A Host object — guardian of a machine's capabilities.
    Host,
    /// A Vault object — persistent storage for OPRs.
    Vault,
    /// An instance of a user class (a running object).
    Instance,
    /// A service object (Collection, Enactor, Scheduler, Monitor...).
    Service,
}

impl LoidKind {
    fn code(self) -> &'static str {
        match self {
            LoidKind::Class => "01",
            LoidKind::Host => "02",
            LoidKind::Vault => "03",
            LoidKind::Instance => "04",
            LoidKind::Service => "05",
        }
    }
}

/// A Legion Object IDentifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Loid {
    /// What kind of object this names.
    pub kind: LoidKind,
    /// Monotonic sequence number (unique within a process).
    pub seq: u64,
    /// Random disambiguator.
    pub nonce: u64,
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// Serialises replay-sensitive test runs against each other.
///
/// [`Loid::fresh`] draws from a process-wide counter — the one piece of
/// global state that leaks into trace exports (LOID strings appear in
/// episode roots and span attributes). Tests that compare two runs
/// byte-for-byte must hold a [`ReplayGuard`] so concurrent tests cannot
/// interleave allocations, and must [`ReplayGuard::rebase`] the counter
/// to the same lane before each run.
static REPLAY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Exclusive license to manipulate the global LOID sequence counter.
///
/// Obtained from [`Loid::replay_guard`]; test harness use only. While a
/// guard is held, no other thread holding (or waiting for) a guard can
/// allocate interleaved sequence numbers.
pub struct ReplayGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl ReplayGuard {
    /// Moves the global sequence counter to `base`, so a replayed run
    /// allocates the same LOIDs as its reference run.
    ///
    /// Pick a lane far above anything organic (e.g. `1 << 40`) so the
    /// rebase cannot collide with identifiers allocated by other tests
    /// before the guard was taken.
    pub fn rebase(&self, base: u64) {
        NEXT_SEQ.store(base, Ordering::SeqCst);
    }

    /// The next sequence number the allocator will hand out.
    pub fn next_seq(&self) -> u64 {
        NEXT_SEQ.load(Ordering::SeqCst)
    }
}

impl Loid {
    /// Allocates a fresh identifier of the given kind.
    ///
    /// Sequence numbers come from a process-wide counter; the nonce is a
    /// mix of the sequence number so identifiers are deterministic within
    /// a run but structurally unguessable across runs of the real system.
    pub fn fresh(kind: LoidKind) -> Self {
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        Loid { kind, seq, nonce: mix64(seq ^ 0x4C45_4749_4F4E_0001) }
    }

    /// Builds a deterministic identifier, for testbed construction.
    pub fn synthetic(kind: LoidKind, seq: u64) -> Self {
        Loid { kind, seq, nonce: mix64(seq) }
    }

    /// Takes the process-wide replay lock (test harness only).
    ///
    /// Byte-identical replay tests rebase the global sequence counter
    /// through the returned guard; holding it keeps unrelated tests from
    /// interleaving allocations into the replayed lane. See
    /// [`ReplayGuard`].
    pub fn replay_guard() -> ReplayGuard {
        ReplayGuard {
            _lock: REPLAY_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// The nil identifier (names nothing).
    pub const NIL: Loid = Loid { kind: LoidKind::Service, seq: 0, nonce: 0 };

    /// Whether this is the nil identifier.
    pub fn is_nil(&self) -> bool {
        self.seq == 0 && self.nonce == 0
    }

    /// A stable 64-bit digest of the identifier (for keyed tags).
    pub fn digest(&self) -> u64 {
        mix64(self.seq ^ self.nonce.rotate_left(23) ^ (self.kind as u64) << 56)
    }
}

impl fmt::Display for Loid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rendered in the dotted style of Legion LOIDs: 1.<type>.<seq>.<nonce>
        write!(f, "1.{}.{:x}.{:016x}", self.kind.code(), self.seq, self.nonce)
    }
}

impl std::str::FromStr for Loid {
    type Err = String;

    /// Parses the dotted rendering produced by `Display`, so identifiers
    /// can round-trip through attribute databases and Collection records.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        let [one, code, seq, nonce] = parts.as_slice() else {
            return Err(format!("malformed LOID `{s}`"));
        };
        if *one != "1" {
            return Err(format!("unsupported LOID version in `{s}`"));
        }
        let kind = match *code {
            "01" => LoidKind::Class,
            "02" => LoidKind::Host,
            "03" => LoidKind::Vault,
            "04" => LoidKind::Instance,
            "05" => LoidKind::Service,
            other => return Err(format!("unknown LOID kind `{other}`")),
        };
        let seq = u64::from_str_radix(seq, 16).map_err(|e| format!("bad seq: {e}"))?;
        let nonce = u64::from_str_radix(nonce, 16).map_err(|e| format!("bad nonce: {e}"))?;
        Ok(Loid { kind, seq, nonce })
    }
}

impl fmt::Debug for Loid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_ids_are_unique() {
        let ids: HashSet<Loid> = (0..1000).map(|_| Loid::fresh(LoidKind::Instance)).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(Loid::synthetic(LoidKind::Host, 7), Loid::synthetic(LoidKind::Host, 7));
        assert_ne!(Loid::synthetic(LoidKind::Host, 7), Loid::synthetic(LoidKind::Host, 8));
    }

    #[test]
    fn nil_detects() {
        assert!(Loid::NIL.is_nil());
        assert!(!Loid::fresh(LoidKind::Class).is_nil());
    }

    #[test]
    fn display_format_is_dotted() {
        let l = Loid::synthetic(LoidKind::Host, 255);
        let s = l.to_string();
        assert!(s.starts_with("1.02.ff."), "{s}");
    }

    #[test]
    fn display_parse_roundtrip() {
        for kind in [
            LoidKind::Class,
            LoidKind::Host,
            LoidKind::Vault,
            LoidKind::Instance,
            LoidKind::Service,
        ] {
            let l = Loid::fresh(kind);
            let parsed: Loid = l.to_string().parse().unwrap();
            assert_eq!(parsed, l);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Loid>().is_err());
        assert!("2.02.1.1".parse::<Loid>().is_err());
        assert!("1.99.1.1".parse::<Loid>().is_err());
        assert!("1.02.zz.1".parse::<Loid>().is_err());
        assert!("1.02.1".parse::<Loid>().is_err());
    }

    #[test]
    fn digest_differs_by_kind() {
        let a = Loid { kind: LoidKind::Host, seq: 1, nonce: 2 };
        let b = Loid { kind: LoidKind::Vault, seq: 1, nonce: 2 };
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn serde_roundtrip() {
        let l = Loid::fresh(LoidKind::Vault);
        let json = serde_json_like(&l);
        assert!(json.contains("Vault"));
    }

    // Tiny stand-in so we don't need serde_json: the derives are what we
    // care about; format details are checked with the debug representation.
    fn serde_json_like(l: &Loid) -> String {
        format!("{:?} {:?}", l.kind, l)
    }
}
