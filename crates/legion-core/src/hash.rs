//! Keyed mixing hash used to tag reservation tokens.
//!
//! Reservations "must be non-forgeable tokens; the Host Object must
//! recognize these tokens when they are passed in with service requests"
//! (§2.1). Inside the simulated fabric we realise that property with a
//! 64-bit keyed tag over the token fields: only the Host knows its secret
//! key, so no other component can mint a token the Host will accept, and
//! any mutation of the fields invalidates the tag.
//!
//! The mixer is a SplitMix64-style finalizer folded over the input words.
//! It is **not** cryptographic — the paper's deployment would use a real
//! MAC — but it delivers the same behavioural contract for experiments:
//! forged or tampered tokens are rejected.

/// Incremental keyed tagger over 64-bit words.
#[derive(Debug, Clone)]
pub struct KeyedTag {
    state: u64,
}

/// SplitMix64 finalizer: a strong 64-bit bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KeyedTag {
    /// Starts a tag computation under `key`.
    pub fn new(key: u64) -> Self {
        KeyedTag { state: mix64(key ^ 0xA5A5_A5A5_5A5A_5A5A) }
    }

    /// Absorbs one 64-bit word.
    pub fn write_u64(&mut self, w: u64) -> &mut Self {
        self.state = mix64(self.state ^ w.rotate_left(17));
        self
    }

    /// Absorbs a byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
        self.write_u64(bytes.len() as u64);
        self
    }

    /// Finishes and returns the tag.
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(key: u64, words: &[u64]) -> u64 {
        let mut t = KeyedTag::new(key);
        for &w in words {
            t.write_u64(w);
        }
        t.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(tag(1, &[2, 3]), tag(1, &[2, 3]));
    }

    #[test]
    fn key_separates() {
        assert_ne!(tag(1, &[2, 3]), tag(2, &[2, 3]));
    }

    #[test]
    fn field_mutation_changes_tag() {
        assert_ne!(tag(1, &[2, 3]), tag(1, &[2, 4]));
        assert_ne!(tag(1, &[2, 3]), tag(1, &[3, 2]));
    }

    #[test]
    fn byte_strings_with_shared_prefix_differ() {
        let mut a = KeyedTag::new(9);
        a.write_bytes(b"abc");
        let mut b = KeyedTag::new(9);
        b.write_bytes(b"abcd");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_is_absorbed() {
        let mut a = KeyedTag::new(9);
        a.write_bytes(b"ab\0");
        let mut b = KeyedTag::new(9);
        b.write_bytes(b"ab");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = mix64(0x1234_5678);
        let b = mix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((20..=44).contains(&flipped), "poor avalanche: {flipped}");
    }
}
