//! Span and episode types for pipeline tracing.
//!
//! The paper's evaluation (§6) reasons about the RMI in terms of *where
//! time and messages go* — Collection lookups vs. reservation thrashing
//! vs. enactment retries. These types make one scheduling episode
//! reconstructible as a timed event trace: every pipeline stage opens a
//! [`Span`] scoped to an [`EpisodeId`], carrying start/end [`SimTime`],
//! an [`SpanOutcome`] and key/value attributes. The collecting sink and
//! the latency histograms over span durations live in `legion-trace`;
//! only the vocabulary shared by every instrumented crate lives here.

use crate::attrs::AttrValue;
use crate::loid::Loid;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// One scheduling episode: a driver-run placement, a watchdog recovery,
/// or any other causally-linked burst of pipeline work.
///
/// Episodes are scoped to a [`Loid`] — the class being placed, or the
/// host being recovered — plus a sink-allocated sequence number, so two
/// placements of the same class remain distinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpisodeId {
    /// The object the episode is about (class placed, host recovered).
    pub root: Loid,
    /// Sink-allocated sequence number (0 is the ambient episode).
    pub seq: u64,
}

impl EpisodeId {
    /// The ambient episode: spans opened outside any explicit episode.
    pub const AMBIENT: EpisodeId = EpisodeId { root: Loid::NIL, seq: 0 };

    /// Whether this is the ambient episode.
    pub fn is_ambient(&self) -> bool {
        self.seq == 0
    }
}

impl fmt::Display for EpisodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ambient() {
            write!(f, "ep-ambient")
        } else {
            write!(f, "ep-{}/{}", self.seq, self.root)
        }
    }
}

/// A span identifier, unique within one sink. `SpanId::NONE` (0) means
/// "no span" — used as the parent of episode roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of roots).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id names a real span.
    pub fn is_some(&self) -> bool {
        self.0 != 0
    }
}

/// The pipeline stage a span covers — one per instrumented operation of
/// the Fig. 3 walkthrough plus the failure-handling stages around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// An episode root: one `ScheduleDriver::place` call or one
    /// watchdog recovery sweep.
    Episode,
    /// One `compute_schedule` call on a Scheduler.
    Schedule,
    /// One Collection query evaluation (indexed or scan).
    CollectionQuery,
    /// One `Enactor::make_reservations` call.
    MakeReservations,
    /// One reservation fill pass (master or variant) inside
    /// `make_reservations` — mirrors the `schedules_attempted` counter.
    ReserveAttempt,
    /// One Enactor backoff sleep (the virtual clock advances).
    Backoff,
    /// One reservation cancellation issued by an Enactor.
    CancelReservation,
    /// One `Enactor::enact_schedule` call.
    EnactSchedule,
    /// One per-mapping `create_instance` inside enactment.
    EnactInstantiation,
    /// One `start_object` call on a Host.
    StartObject,
    /// One watchdog restart-from-OPR attempt for a stranded object.
    RestartFromOpr,
    /// One fault-plan event fired by the fabric (zero duration).
    Fault,
    /// One rebalance-sweep hotspot detection pass over Collection
    /// records (hysteresis update included).
    RebalanceDetect,
    /// One rebalance-sweep planning pass (victim/target selection under
    /// the per-sweep budget).
    RebalancePlan,
    /// One attempted object migration inside a rebalance sweep
    /// (alternate-target retries happen within the same span).
    RebalanceMigrate,
    /// One rebalance-sweep convergence check (post-migration max/mean
    /// load ratio against the exit threshold).
    RebalanceConverge,
    /// One front-door admission decision: a tenant's placement request
    /// admitted through its token bucket and queue, or rejected with a
    /// typed backpressure outcome (rate limit, queue full, saturated).
    Admission,
    /// One step of the request→approve→confirm reservation-grant
    /// workflow at the front door (the `op` attribute names the step).
    ReservationGrant,
}

impl SpanKind {
    /// Number of distinct kinds (histogram array size).
    pub const COUNT: usize = 18;

    /// Every kind, in index order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::Episode,
        SpanKind::Schedule,
        SpanKind::CollectionQuery,
        SpanKind::MakeReservations,
        SpanKind::ReserveAttempt,
        SpanKind::Backoff,
        SpanKind::CancelReservation,
        SpanKind::EnactSchedule,
        SpanKind::EnactInstantiation,
        SpanKind::StartObject,
        SpanKind::RestartFromOpr,
        SpanKind::Fault,
        SpanKind::RebalanceDetect,
        SpanKind::RebalancePlan,
        SpanKind::RebalanceMigrate,
        SpanKind::RebalanceConverge,
        SpanKind::Admission,
        SpanKind::ReservationGrant,
    ];

    /// Dense index (for per-kind histogram arrays).
    pub fn index(self) -> usize {
        SpanKind::ALL.iter().position(|&k| k == self).expect("kind in ALL")
    }

    /// Stable snake_case name (trace files, reports, assertions).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Episode => "episode",
            SpanKind::Schedule => "schedule",
            SpanKind::CollectionQuery => "collection_query",
            SpanKind::MakeReservations => "make_reservations",
            SpanKind::ReserveAttempt => "reserve_attempt",
            SpanKind::Backoff => "backoff",
            SpanKind::CancelReservation => "cancel_reservation",
            SpanKind::EnactSchedule => "enact_schedule",
            SpanKind::EnactInstantiation => "enact_instantiation",
            SpanKind::StartObject => "start_object",
            SpanKind::RestartFromOpr => "restart_from_opr",
            SpanKind::Fault => "fault",
            SpanKind::RebalanceDetect => "rebalance_detect",
            SpanKind::RebalancePlan => "rebalance_plan",
            SpanKind::RebalanceMigrate => "rebalance_migrate",
            SpanKind::RebalanceConverge => "rebalance_converge",
            SpanKind::Admission => "admission",
            SpanKind::ReservationGrant => "reservation_grant",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a span ended — the Enactor's `FailureClass` vocabulary plus the
/// generic success/error cases, so trace assertions can match recovery
/// behaviour (a crashed host yields `HostDown` attempts, §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SpanOutcome {
    /// The span is still open or was closed without a verdict.
    #[default]
    Unset,
    /// The operation succeeded.
    Ok,
    /// Every relevant host was down or unreachable.
    HostDown,
    /// A deadline budget lapsed.
    DeadlineExceeded,
    /// Resources were denied (capacity, policy, vault).
    ResourceUnavailable,
    /// Infrastructure failure (network, missing objects).
    Infrastructure,
    /// The input was structurally invalid.
    Malformed,
    /// Any other failure, with its message.
    Error(String),
}

impl SpanOutcome {
    /// Whether the span succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, SpanOutcome::Ok)
    }

    /// Maps an error onto the outcome taxonomy — the same grouping the
    /// Enactor's `FailureClass::classify` applies, so trace outcomes and
    /// scheduler feedback agree about what went wrong.
    pub fn from_error(e: &crate::error::LegionError) -> SpanOutcome {
        use crate::error::LegionError::*;
        match e {
            HostDown(_) | NoSuchHost(_) => SpanOutcome::HostDown,
            NetworkFailure { .. } | NoSuchObject(_) | NoSuchVault(_) | NoSuchOpr(_)
            | Serialization(_) => SpanOutcome::Infrastructure,
            ReservationDenied { .. }
            | ReservationExpired
            | ReservationConsumed
            | PolicyRefused { .. }
            | VaultUnreachable { .. }
            | VaultIncompatible { .. }
            | VaultFull(_)
            | AllSchedulesFailed { .. } => SpanOutcome::ResourceUnavailable,
            MalformedSchedule(_) | BadQuery(_) => SpanOutcome::Malformed,
            other => SpanOutcome::Error(other.to_string()),
        }
    }

    /// Stable label (trace files, reports).
    pub fn label(&self) -> &str {
        match self {
            SpanOutcome::Unset => "unset",
            SpanOutcome::Ok => "ok",
            SpanOutcome::HostDown => "host_down",
            SpanOutcome::DeadlineExceeded => "deadline_exceeded",
            SpanOutcome::ResourceUnavailable => "resource_unavailable",
            SpanOutcome::Infrastructure => "infrastructure",
            SpanOutcome::Malformed => "malformed",
            SpanOutcome::Error(msg) => msg,
        }
    }
}

impl fmt::Display for SpanOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One closed span: a timed, attributed pipeline operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// This span's identifier.
    pub id: SpanId,
    /// Enclosing span (NONE for episode roots and ambient spans).
    pub parent: SpanId,
    /// The episode this span belongs to.
    pub episode: EpisodeId,
    /// The pipeline stage covered.
    pub kind: SpanKind,
    /// Virtual time the span opened.
    pub start: SimTime,
    /// Virtual time the span closed (never before `start`).
    pub end: SimTime,
    /// Simulated latency charged to this span (network messages sent
    /// while it was the active span). The clock does not advance for
    /// message latency, so charges are tracked separately and included
    /// in [`Span::duration`].
    pub charged: SimDuration,
    /// How the operation ended.
    pub outcome: SpanOutcome,
    /// Key/value attributes (counts, identifiers, decisions).
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Total simulated cost: wall span on the virtual clock plus the
    /// charged message latency.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start) + self.charged
    }

    /// Looks up an attribute by key (last write wins).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Integer attribute convenience.
    pub fn attr_i64(&self, key: &str) -> Option<i64> {
        match self.attr(key) {
            Some(AttrValue::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// String attribute convenience.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(AttrValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loid::LoidKind;

    #[test]
    fn kind_index_roundtrips() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(SpanKind::ALL.len(), SpanKind::COUNT);
    }

    #[test]
    fn duration_includes_charges_and_never_underflows() {
        let s = Span {
            id: SpanId(1),
            parent: SpanId::NONE,
            episode: EpisodeId::AMBIENT,
            kind: SpanKind::CollectionQuery,
            start: SimTime::from_micros(100),
            end: SimTime::from_micros(150),
            charged: SimDuration::from_micros(25),
            outcome: SpanOutcome::Ok,
            attrs: Vec::new(),
        };
        assert_eq!(s.duration(), SimDuration::from_micros(75));
        let backwards = Span { end: SimTime::from_micros(50), ..s };
        assert_eq!(backwards.duration(), SimDuration::from_micros(25), "saturates to charges");
    }

    #[test]
    fn attrs_last_write_wins() {
        let mut s = Span {
            id: SpanId(1),
            parent: SpanId::NONE,
            episode: EpisodeId::AMBIENT,
            kind: SpanKind::Schedule,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            charged: SimDuration::ZERO,
            outcome: SpanOutcome::Unset,
            attrs: Vec::new(),
        };
        s.attrs.push(("n", AttrValue::Int(1)));
        s.attrs.push(("n", AttrValue::Int(2)));
        assert_eq!(s.attr_i64("n"), Some(2));
        assert_eq!(s.attr_str("n"), None);
    }

    #[test]
    fn episode_display_and_ambient() {
        assert!(EpisodeId::AMBIENT.is_ambient());
        assert_eq!(EpisodeId::AMBIENT.to_string(), "ep-ambient");
        let ep = EpisodeId { root: Loid::synthetic(LoidKind::Class, 3), seq: 7 };
        assert!(!ep.is_ambient());
        assert!(ep.to_string().starts_with("ep-7/1.01."));
    }
}
