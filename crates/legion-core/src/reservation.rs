//! Reservations — the negotiation currency of Legion scheduling.
//!
//! "To support scheduling, Hosts grant reservations for future service.
//! ... they must be non-forgeable tokens" (§2.1). A reservation has a
//! start time, a duration, and an optional timeout period for confirming
//! an instantaneous reservation; confirmation is implicit when the token
//! is presented with `start_object()` (§3.1).
//!
//! Two type bits — `reuse` and `share` — yield the four reservation types
//! of **Table 2**:
//!
//! | | `share = 0` | `share = 1` |
//! |---|---|---|
//! | `reuse = 0` | one-shot space sharing | one-shot timesharing |
//! | `reuse = 1` | reusable space sharing | reusable timesharing |
//!
//! An unshared reservation allocates the entire resource; shared
//! reservations let the host multiplex. A reusable token may be passed to
//! multiple `start_object()` calls.

use crate::hash::KeyedTag;
use crate::loid::Loid;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two type bits of a Legion reservation (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReservationType {
    /// `share` bit: may the host multiplex the resource under this token?
    pub share: bool,
    /// `reuse` bit: may the token be presented to multiple
    /// `start_object()` calls?
    pub reuse: bool,
}

impl ReservationType {
    /// One-shot space sharing (`share = 0, reuse = 0`).
    pub const ONE_SHOT_SPACE: ReservationType = ReservationType { share: false, reuse: false };
    /// Reusable space sharing (`share = 0, reuse = 1`) — "the machine is
    /// mine for the time period".
    pub const REUSABLE_SPACE: ReservationType = ReservationType { share: false, reuse: true };
    /// One-shot timesharing (`share = 1, reuse = 0`) — a typical
    /// timesharing system that expires the reservation when the job is
    /// done.
    pub const ONE_SHOT_TIME: ReservationType = ReservationType { share: true, reuse: false };
    /// Reusable timesharing (`share = 1, reuse = 1`).
    pub const REUSABLE_TIME: ReservationType = ReservationType { share: true, reuse: true };

    /// All four types, in Table 2 order.
    pub const ALL: [ReservationType; 4] = [
        Self::ONE_SHOT_SPACE,
        Self::REUSABLE_SPACE,
        Self::ONE_SHOT_TIME,
        Self::REUSABLE_TIME,
    ];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match (self.share, self.reuse) {
            (false, false) => "one-shot space sharing",
            (false, true) => "reusable space sharing",
            (true, false) => "one-shot timesharing",
            (true, true) => "reusable timesharing",
        }
    }

    fn bits(self) -> u64 {
        (self.share as u64) << 1 | self.reuse as u64
    }
}

impl fmt::Display for ReservationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// What a Scheduler/Enactor asks a Host for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReservationRequest {
    /// Class whose instance will run under the reservation.
    pub class: Loid,
    /// Vault that will hold the instance's OPR; the host must verify the
    /// vault is reachable and compatible before granting (§3.1).
    pub vault: Loid,
    /// Reservation type bits.
    pub rtype: ReservationType,
    /// When service begins. `None` means "instantaneous" (now).
    pub start: Option<SimTime>,
    /// How much service is reserved (e.g. an hour of CPU).
    pub duration: SimDuration,
    /// How long the recipient has to confirm an instantaneous
    /// reservation before the host may reclaim it.
    pub timeout: Option<SimDuration>,
    /// CPU share requested in hundredths of a CPU (100 = one processor).
    /// Unshared reservations take the whole machine regardless.
    pub cpu_centis: u32,
    /// Memory requested, in megabytes.
    pub memory_mb: u32,
    /// Administrative domain the request originates from, so hosts can
    /// apply domain-refusal policies ("domains from which it refuses to
    /// accept object instantiation requests", §3.1). `None` is treated
    /// as an anonymous request.
    pub requester_domain: Option<String>,
}

impl ReservationRequest {
    /// A minimal instantaneous request: one CPU's worth of timesharing
    /// service for `duration`, confirmable within `timeout`.
    pub fn instantaneous(class: Loid, vault: Loid, duration: SimDuration) -> Self {
        ReservationRequest {
            class,
            vault,
            rtype: ReservationType::ONE_SHOT_TIME,
            start: None,
            duration,
            timeout: Some(SimDuration::from_secs(30)),
            cpu_centis: 100,
            memory_mb: 64,
            requester_domain: None,
        }
    }

    /// Builder: identify the requesting domain (for autonomy policies).
    pub fn from_domain(mut self, domain: impl Into<String>) -> Self {
        self.requester_domain = Some(domain.into());
        self
    }

    /// Builder: set the reservation type.
    pub fn with_type(mut self, rtype: ReservationType) -> Self {
        self.rtype = rtype;
        self
    }

    /// Builder: set a future start time.
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = Some(start);
        self
    }

    /// Builder: set the resource demand.
    pub fn with_demand(mut self, cpu_centis: u32, memory_mb: u32) -> Self {
        self.cpu_centis = cpu_centis;
        self.memory_mb = memory_mb;
        self
    }
}

/// A granted reservation.
///
/// "Our current implementation of reservations encodes both the Host and
/// the Vault which will be used for execution of the object" (§2.1). The
/// `tag` is a keyed hash over every other field under the host's secret;
/// only the granting host can mint or verify it, and no other object in
/// the system needs to decode it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReservationToken {
    /// Host-local serial number of this reservation.
    pub serial: u64,
    /// The granting host.
    pub host: Loid,
    /// The vault encoded into the reservation.
    pub vault: Loid,
    /// The class the reservation was made for.
    pub class: Loid,
    /// Type bits.
    pub rtype: ReservationType,
    /// Service start time (resolved; never `None` once granted).
    pub start: SimTime,
    /// Reserved service duration.
    pub duration: SimDuration,
    /// Confirmation deadline for instantaneous reservations.
    pub confirm_by: Option<SimTime>,
    /// Granted CPU share (hundredths of a CPU).
    pub cpu_centis: u32,
    /// Granted memory (MB).
    pub memory_mb: u32,
    /// Keyed authentication tag.
    pub tag: u64,
}

impl ReservationToken {
    /// End of the service window.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Whether the window covers `now`.
    pub fn covers(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end()
    }
}

/// Mints and verifies reservation tokens under a host secret key.
///
/// ```
/// use legion_core::{Loid, LoidKind, ReservationRequest, SimDuration, SimTime, TokenMinter};
///
/// let host = Loid::fresh(LoidKind::Host);
/// let mut minter = TokenMinter::new(host, 0xDEAD_BEEF);
/// let req = ReservationRequest::instantaneous(
///     Loid::fresh(LoidKind::Class),
///     Loid::fresh(LoidKind::Vault),
///     SimDuration::from_secs(3600), // an hour of CPU (the paper's example)
/// );
/// let token = minter.mint(&req, SimTime::ZERO, None);
/// assert!(minter.verify(&token));
///
/// // Any tampering invalidates the tag — tokens are non-forgeable.
/// let mut forged = token.clone();
/// forged.duration = SimDuration::from_secs(999_999);
/// assert!(!minter.verify(&forged));
/// ```
#[derive(Debug)]
pub struct TokenMinter {
    host: Loid,
    secret: u64,
    next_serial: u64,
}

impl TokenMinter {
    /// Creates a minter for `host` with the given secret.
    pub fn new(host: Loid, secret: u64) -> Self {
        TokenMinter { host, secret, next_serial: 1 }
    }

    /// Mints a token for a granted request.
    pub fn mint(
        &mut self,
        req: &ReservationRequest,
        start: SimTime,
        confirm_by: Option<SimTime>,
    ) -> ReservationToken {
        let serial = self.next_serial;
        self.next_serial += 1;
        let mut tok = ReservationToken {
            serial,
            host: self.host,
            vault: req.vault,
            class: req.class,
            rtype: req.rtype,
            start,
            duration: req.duration,
            confirm_by,
            cpu_centis: req.cpu_centis,
            memory_mb: req.memory_mb,
            tag: 0,
        };
        tok.tag = self.compute_tag(&tok);
        tok
    }

    /// Verifies that `tok` was minted by this host and is untampered.
    pub fn verify(&self, tok: &ReservationToken) -> bool {
        tok.host == self.host && tok.tag == self.compute_tag(tok)
    }

    fn compute_tag(&self, tok: &ReservationToken) -> u64 {
        let mut t = KeyedTag::new(self.secret);
        t.write_u64(tok.serial)
            .write_u64(tok.host.digest())
            .write_u64(tok.vault.digest())
            .write_u64(tok.class.digest())
            .write_u64(tok.rtype.bits())
            .write_u64(tok.start.as_micros())
            .write_u64(tok.duration.as_micros())
            .write_u64(tok.confirm_by.map(|t| t.as_micros()).unwrap_or(u64::MAX))
            .write_u64(tok.cpu_centis as u64)
            .write_u64(tok.memory_mb as u64);
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loid::LoidKind;

    fn ids() -> (Loid, Loid, Loid) {
        (
            Loid::synthetic(LoidKind::Host, 1),
            Loid::synthetic(LoidKind::Vault, 2),
            Loid::synthetic(LoidKind::Class, 3),
        )
    }

    #[test]
    fn table2_names() {
        assert_eq!(ReservationType::ONE_SHOT_SPACE.name(), "one-shot space sharing");
        assert_eq!(ReservationType::REUSABLE_SPACE.name(), "reusable space sharing");
        assert_eq!(ReservationType::ONE_SHOT_TIME.name(), "one-shot timesharing");
        assert_eq!(ReservationType::REUSABLE_TIME.name(), "reusable timesharing");
    }

    #[test]
    fn mint_verify_roundtrip() {
        let (h, v, c) = ids();
        let mut minter = TokenMinter::new(h, 0xDEAD_BEEF);
        let req = ReservationRequest::instantaneous(c, v, SimDuration::from_secs(3600));
        let tok = minter.mint(&req, SimTime::ZERO, Some(SimTime::from_secs(30)));
        assert!(minter.verify(&tok));
    }

    #[test]
    fn tampered_token_rejected() {
        let (h, v, c) = ids();
        let mut minter = TokenMinter::new(h, 42);
        let req = ReservationRequest::instantaneous(c, v, SimDuration::from_secs(60));
        let tok = minter.mint(&req, SimTime::ZERO, None);

        let mut forged = tok.clone();
        forged.duration = SimDuration::from_secs(9999);
        assert!(!minter.verify(&forged));

        let mut forged = tok.clone();
        forged.vault = Loid::synthetic(LoidKind::Vault, 99);
        assert!(!minter.verify(&forged));

        let mut forged = tok.clone();
        forged.rtype = ReservationType::REUSABLE_SPACE;
        assert!(!minter.verify(&forged));
    }

    #[test]
    fn foreign_minter_rejects() {
        let (h, v, c) = ids();
        let mut ours = TokenMinter::new(h, 1);
        let theirs = TokenMinter::new(h, 2); // same host LOID, different secret
        let req = ReservationRequest::instantaneous(c, v, SimDuration::from_secs(60));
        let tok = ours.mint(&req, SimTime::ZERO, None);
        assert!(!theirs.verify(&tok));
    }

    #[test]
    fn window_covers() {
        let (h, v, c) = ids();
        let mut minter = TokenMinter::new(h, 7);
        let req = ReservationRequest::instantaneous(c, v, SimDuration::from_secs(10))
            .starting_at(SimTime::from_secs(100));
        let tok = minter.mint(&req, SimTime::from_secs(100), None);
        assert!(!tok.covers(SimTime::from_secs(99)));
        assert!(tok.covers(SimTime::from_secs(100)));
        assert!(tok.covers(SimTime::from_secs(109)));
        assert!(!tok.covers(SimTime::from_secs(110)));
    }

    #[test]
    fn serials_are_unique() {
        let (h, v, c) = ids();
        let mut minter = TokenMinter::new(h, 7);
        let req = ReservationRequest::instantaneous(c, v, SimDuration::from_secs(1));
        let a = minter.mint(&req, SimTime::ZERO, None);
        let b = minter.mint(&req, SimTime::ZERO, None);
        assert_ne!(a.serial, b.serial);
        assert_ne!(a.tag, b.tag);
    }

    #[test]
    fn builder_paths() {
        let (_, v, c) = ids();
        let r = ReservationRequest::instantaneous(c, v, SimDuration::from_secs(1))
            .with_type(ReservationType::REUSABLE_SPACE)
            .with_demand(400, 2048)
            .starting_at(SimTime::from_secs(5));
        assert_eq!(r.rtype, ReservationType::REUSABLE_SPACE);
        assert_eq!(r.cpu_centis, 400);
        assert_eq!(r.memory_mb, 2048);
        assert_eq!(r.start, Some(SimTime::from_secs(5)));
    }
}
