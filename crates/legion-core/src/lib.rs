//! Core object model of the Legion resource management system.
//!
//! This crate reproduces the *core objects* of the paper — the types and
//! interfaces "without which the system cannot function" (§2):
//!
//! * [`Loid`] — Legion Object IDentifiers, location-independent names.
//! * [`AttributeDb`] — the extensible attribute database carried by every
//!   Legion object (§3.1), used by Hosts to export state and by the
//!   Collection to store resource descriptions.
//! * [`reservation`] — reservation requests, the four reservation types of
//!   Table 2 (`share` × `reuse`), and non-forgeable reservation tokens.
//! * [`HostObject`] / [`VaultObject`] — the resource-object interfaces
//!   (Table 1): reservation management, object (process) management, and
//!   information reporting for Hosts; OPR storage for Vaults.
//! * [`ClassObject`] and the concrete [`LegionClass`] — classes as *active
//!   managers* of their instances, exporting `create_instance()` with an
//!   optional directed placement (§2.1, §3.4).
//! * [`rge`] — the Reflective Graph & Events trigger mechanism Hosts use
//!   to raise events (e.g. load above threshold) handled by Monitor
//!   outcalls (§2.1, §3.5).
//!
//! Only *interfaces* for Hosts and Vaults live here; implementations are
//! in `legion-hosts` and `legion-vaults`, mirroring the paper's position
//! that "others are free to substitute their own modules".

pub mod attrs;
pub mod class;
pub mod error;
pub mod hash;
pub mod host;
pub mod loid;
pub mod opr;
pub mod request;
pub mod reservation;
pub mod rge;
pub mod time;
pub mod trace;
pub mod vault;

pub use attrs::{AttrValue, AttributeDb};
pub use class::{ClassObject, ClassReport, LegionClass, Placement, PlacementContext};
pub use error::LegionError;
pub use host::{well_known, HostObject, ObjectSpec, ReservationStatus};
pub use loid::{Loid, LoidKind, ReplayGuard};
pub use opr::Opr;
pub use request::{ClassRequest, ObjectImplementation, PlacementRequest};
pub use reservation::{ReservationRequest, ReservationToken, ReservationType, TokenMinter};
pub use rge::{Event, EventKind, Guard, Outcall, Trigger, TriggerId};
pub use time::{SimDuration, SimTime};
pub use trace::{EpisodeId, Span, SpanId, SpanKind, SpanOutcome};
pub use vault::{StorageStats, VaultDirectory, VaultObject};
