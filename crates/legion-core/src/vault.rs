//! Vault object interface.
//!
//! "Vaults are the generic storage abstraction in Legion. To be executed,
//! a Legion object must have a Vault to hold its persistent state in an
//! Object Persistent Representation (OPR)." (§2.1)
//!
//! "The current implementation of Vault Objects does not contain dynamic
//! state to the degree that the Host Object implementation does. Vaults,
//! therefore, only participate in the scheduling process at the start,
//! when they verify that they are compatible with a Host. They may, in
//! the future, be differentiated by the amount of storage available, cost
//! per byte, security policy, etc." (§3.1) — our implementation includes
//! those future differentiators as optional attributes so schedulers can
//! exploit them.

use crate::attrs::AttributeDb;
use crate::error::LegionError;
use crate::loid::Loid;
use crate::opr::Opr;
use std::sync::Arc;

/// Storage accounting for a vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes currently holding OPRs.
    pub used_bytes: u64,
    /// Number of OPRs stored.
    pub opr_count: usize,
}

impl StorageStats {
    /// Remaining free space.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.used_bytes)
    }
}

/// The Vault object interface.
pub trait VaultObject: Send + Sync {
    /// This vault's identifier.
    fn loid(&self) -> Loid;

    /// The vault's attribute database (domain, storage, cost per byte...).
    fn attributes(&self) -> AttributeDb;

    /// Stores (or overwrites, if a newer version) an OPR.
    fn store_opr(&self, opr: Opr) -> Result<(), LegionError>;

    /// Fetches the OPR for `object`.
    fn fetch_opr(&self, object: Loid) -> Result<Opr, LegionError>;

    /// Deletes the OPR for `object`.
    fn delete_opr(&self, object: Loid) -> Result<(), LegionError>;

    /// Whether this vault holds an OPR for `object`.
    fn holds(&self, object: Loid) -> bool;

    /// Verifies compatibility with a host, given the host's attributes.
    /// This is the vault's sole participation in scheduling (§3.1).
    fn compatible_with_host(&self, host_attrs: &AttributeDb) -> bool;

    /// Current storage accounting.
    fn storage(&self) -> StorageStats;
}

/// Resolves vault LOIDs to live vault objects.
///
/// Hosts need this when checking `vault_OK()` and when saving OPRs during
/// deactivation; the fabric provides the implementation.
pub trait VaultDirectory: Send + Sync {
    /// Looks up a vault by identifier.
    fn lookup_vault(&self, loid: Loid) -> Option<Arc<dyn VaultObject>>;

    /// All vault identifiers known to the directory.
    fn vault_loids(&self) -> Vec<Loid>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_stats_free() {
        let s = StorageStats { capacity_bytes: 100, used_bytes: 30, opr_count: 2 };
        assert_eq!(s.free_bytes(), 70);
        let over = StorageStats { capacity_bytes: 10, used_bytes: 30, opr_count: 2 };
        assert_eq!(over.free_bytes(), 0);
    }
}
