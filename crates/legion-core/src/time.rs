//! Simulated time.
//!
//! All RMI components are driven by a virtual clock so experiments are
//! deterministic. Times are microseconds since testbed start; durations
//! are microsecond counts. Reservations (§3.1) carry a start time, a
//! duration and an optional confirmation timeout expressed in these units.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the virtual clock, in microseconds since testbed start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The epoch (testbed start).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a float factor (clamped at zero).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(2);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_micros(), 2_500_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(2));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(SimDuration::from_secs(2).mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1).mul_f64(-1.0), SimDuration::ZERO);
    }
}
