//! Class objects — active managers of their instances.
//!
//! "Class objects in Legion serve two functions. As in other
//! object-oriented systems, Classes define the types of their instances.
//! In Legion, Classes are also active entities, and act as managers for
//! their instances. Thus, a Class is the final authority in matters
//! pertaining to its instances, including object placement. The Class
//! exports the `create_instance()` method, which is responsible for
//! placing an instance on a viable host. `create_instance` takes an
//! optional argument suggesting a placement, which is necessary to
//! implement external Schedulers. In the absence of this argument, the
//! Class makes a quick (and almost certainly non-optimal) placement
//! decision." (§2.1)
//!
//! "The Class object is still responsible for checking the placement for
//! validity and conformance to local policy, but the Class does not have
//! to go through the standard placement steps." (§3.4)

use crate::attrs::AttributeDb;
use crate::error::LegionError;
use crate::host::{HostObject, ObjectSpec};
use crate::loid::{Loid, LoidKind};
use crate::request::ObjectImplementation;
use crate::reservation::{ReservationRequest, ReservationToken};
use crate::time::{SimDuration, SimTime};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A directed placement handed to `create_instance()` by an Enactor:
/// the (Host, Vault) pair plus the reservation token that backs it.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Target host.
    pub host: Loid,
    /// Vault for the instance's OPR.
    pub vault: Loid,
    /// Reservation granted by the host.
    pub token: ReservationToken,
}

/// Resolution context a class uses to reach hosts.
///
/// The fabric implements this; classes stay independent of the fabric
/// crate so alternative runtimes can be substituted.
pub trait PlacementContext: Send + Sync {
    /// Resolves a host LOID to a live host object.
    fn lookup_host(&self, loid: Loid) -> Option<Arc<dyn HostObject>>;

    /// All host LOIDs visible to the caller (for default placement).
    fn host_loids(&self) -> Vec<Loid>;

    /// Current virtual time.
    fn now(&self) -> SimTime;
}

/// Static description of a class, readable by Schedulers (§3.3):
/// "any Scheduler may query the object classes to determine such
/// information (e.g., the available implementations, or memory or
/// communication requirements)".
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The class's identifier.
    pub class: Loid,
    /// Class name.
    pub name: String,
    /// Available implementations.
    pub implementations: Vec<ObjectImplementation>,
    /// Expected memory per instance (MB).
    pub memory_mb: u32,
    /// Expected CPU demand per instance (hundredths of a CPU).
    pub cpu_centis: u32,
    /// Expected bytes exchanged with each communication peer per
    /// compute/communicate cycle (0 for embarrassingly parallel work).
    pub comm_bytes_per_cycle: u64,
}

/// The Class object interface.
pub trait ClassObject: Send + Sync {
    /// This class's identifier.
    fn loid(&self) -> Loid;

    /// Scheduler-readable description of the class.
    fn report(&self) -> ClassReport;

    /// Creates an instance.
    ///
    /// With `placement: Some(..)` the class validates the directed
    /// placement (token integrity is checked by the host) and starts the
    /// object there. With `None`, the class makes its own quick placement
    /// decision — the pre-1.5 default behaviour.
    fn create_instance(
        &self,
        placement: Option<Placement>,
        ctx: &dyn PlacementContext,
    ) -> Result<Loid, LegionError>;

    /// Destroys an instance wherever it runs.
    fn destroy_instance(&self, instance: Loid, ctx: &dyn PlacementContext)
        -> Result<(), LegionError>;

    /// Instances currently managed by this class, with their hosts.
    fn instances(&self) -> Vec<(Loid, Loid)>;

    /// Records that `instance` now runs on `host` (migration bookkeeping;
    /// the Class is the final authority on its instances' placement).
    fn note_instance_location(&self, instance: Loid, host: Loid);
}

/// The stock class implementation.
#[derive(Debug)]
pub struct LegionClass {
    loid: Loid,
    name: String,
    implementations: Vec<ObjectImplementation>,
    memory_mb: u32,
    cpu_centis: u32,
    comm_bytes_per_cycle: u64,
    default_duration: SimDuration,
    /// instance → host
    instances: RwLock<BTreeMap<Loid, Loid>>,
}

impl LegionClass {
    /// Creates a class with the given name and implementations.
    pub fn new(name: impl Into<String>, implementations: Vec<ObjectImplementation>) -> Self {
        LegionClass {
            loid: Loid::fresh(LoidKind::Class),
            name: name.into(),
            implementations,
            memory_mb: 64,
            cpu_centis: 100,
            comm_bytes_per_cycle: 0,
            default_duration: SimDuration::from_secs(3600),
            instances: RwLock::new(BTreeMap::new()),
        }
    }

    /// Builder: expected per-instance resource demand.
    pub fn with_demand(mut self, cpu_centis: u32, memory_mb: u32) -> Self {
        self.cpu_centis = cpu_centis;
        self.memory_mb = memory_mb;
        self
    }

    /// Builder: expected communication volume per cycle.
    pub fn with_comm(mut self, bytes_per_cycle: u64) -> Self {
        self.comm_bytes_per_cycle = bytes_per_cycle;
        self
    }

    /// Builder: default reservation duration for self-made placements.
    pub fn with_default_duration(mut self, d: SimDuration) -> Self {
        self.default_duration = d;
        self
    }

    /// Whether any implementation runs on a host with these attributes.
    pub fn has_implementation_for(&self, host_attrs: &AttributeDb) -> bool {
        self.implementation_for(host_attrs).is_some()
    }

    /// Selects the implementation to run on a host with these attributes
    /// — "this mapping process may also select from among the available
    /// implementations" (§3.3). First match wins (implementations are in
    /// preference order).
    pub fn implementation_for(&self, host_attrs: &AttributeDb) -> Option<ObjectImplementation> {
        let arch = host_attrs.get_str(crate::host::well_known::ARCH).unwrap_or("");
        let os = host_attrs.get_str(crate::host::well_known::OS_NAME).unwrap_or("");
        self.implementations.iter().find(|i| i.runs_on(arch, os)).cloned()
    }

    /// The quick, "almost certainly non-optimal" default placement: walk
    /// the context's hosts in order, take the first that grants a
    /// reservation for a compatible vault.
    fn quick_placement(&self, ctx: &dyn PlacementContext) -> Result<Placement, LegionError> {
        let now = ctx.now();
        for hloid in ctx.host_loids() {
            let Some(host) = ctx.lookup_host(hloid) else { continue };
            if !self.has_implementation_for(&host.attributes()) {
                continue;
            }
            let Some(vault) = host.get_compatible_vaults().into_iter().next() else {
                continue;
            };
            let req = ReservationRequest::instantaneous(self.loid, vault, self.default_duration)
                .with_demand(self.cpu_centis, self.memory_mb);
            match host.make_reservation(&req, now) {
                Ok(token) => return Ok(Placement { host: hloid, vault, token }),
                Err(e) if e.is_retryable() => continue,
                Err(e) => return Err(e),
            }
        }
        Err(LegionError::NoUsableImplementation { class: self.loid })
    }
}

impl ClassObject for LegionClass {
    fn loid(&self) -> Loid {
        self.loid
    }

    fn report(&self) -> ClassReport {
        ClassReport {
            class: self.loid,
            name: self.name.clone(),
            implementations: self.implementations.clone(),
            memory_mb: self.memory_mb,
            cpu_centis: self.cpu_centis,
            comm_bytes_per_cycle: self.comm_bytes_per_cycle,
        }
    }

    fn create_instance(
        &self,
        placement: Option<Placement>,
        ctx: &dyn PlacementContext,
    ) -> Result<Loid, LegionError> {
        let placement = match placement {
            Some(p) => {
                // Validity check: the token must name this class and the
                // host named in the placement.
                if p.token.class != self.loid {
                    return Err(LegionError::MalformedSchedule(format!(
                        "token is for class {}, not {}",
                        p.token.class, self.loid
                    )));
                }
                if p.token.host != p.host {
                    return Err(LegionError::MalformedSchedule(
                        "token host does not match placement host".into(),
                    ));
                }
                p
            }
            None => self.quick_placement(ctx)?,
        };

        let host =
            ctx.lookup_host(placement.host).ok_or(LegionError::NoSuchHost(placement.host))?;
        // Select the implementation for the target platform (§3.3).
        let implementation = self.implementation_for(&host.attributes());
        if implementation.is_none() && !self.implementations.is_empty() {
            return Err(LegionError::NoUsableImplementation { class: self.loid });
        }
        let spec = ObjectSpec {
            class: self.loid,
            instance: Loid::fresh(LoidKind::Instance),
            initial_state: Vec::new(),
            memory_mb: self.memory_mb,
            implementation,
        };
        let started = host.start_object(&placement.token, std::slice::from_ref(&spec), ctx.now())?;
        let instance = *started.first().ok_or_else(|| {
            LegionError::Other("host reported success but started no objects".into())
        })?;
        self.instances.write().insert(instance, placement.host);
        Ok(instance)
    }

    fn destroy_instance(
        &self,
        instance: Loid,
        ctx: &dyn PlacementContext,
    ) -> Result<(), LegionError> {
        let host_loid = self
            .instances
            .read()
            .get(&instance)
            .copied()
            .ok_or(LegionError::NoSuchObject(instance))?;
        let host = ctx.lookup_host(host_loid).ok_or(LegionError::NoSuchHost(host_loid))?;
        host.kill_object(instance)?;
        self.instances.write().remove(&instance);
        Ok(())
    }

    fn instances(&self) -> Vec<(Loid, Loid)> {
        self.instances.read().iter().map(|(&i, &h)| (i, h)).collect()
    }

    fn note_instance_location(&self, instance: Loid, host: Loid) {
        self.instances.write().insert(instance, host);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_carries_demand() {
        let c = LegionClass::new("stencil", vec![ObjectImplementation::new("mips", "IRIX")])
            .with_demand(200, 256)
            .with_comm(4096);
        let r = c.report();
        assert_eq!(r.name, "stencil");
        assert_eq!(r.cpu_centis, 200);
        assert_eq!(r.memory_mb, 256);
        assert_eq!(r.comm_bytes_per_cycle, 4096);
        assert_eq!(r.implementations.len(), 1);
    }

    #[test]
    fn implementation_match_uses_host_attrs() {
        let c = LegionClass::new("x", vec![ObjectImplementation::new("mips", "IRIX")]);
        let yes = AttributeDb::new()
            .with(crate::host::well_known::ARCH, "mips")
            .with(crate::host::well_known::OS_NAME, "IRIX");
        let no = AttributeDb::new()
            .with(crate::host::well_known::ARCH, "x86")
            .with(crate::host::well_known::OS_NAME, "Linux");
        assert!(c.has_implementation_for(&yes));
        assert!(!c.has_implementation_for(&no));
    }

    #[test]
    fn location_bookkeeping() {
        let c = LegionClass::new("x", vec![]);
        let i = Loid::synthetic(LoidKind::Instance, 1);
        let h1 = Loid::synthetic(LoidKind::Host, 1);
        let h2 = Loid::synthetic(LoidKind::Host, 2);
        c.note_instance_location(i, h1);
        assert_eq!(c.instances(), vec![(i, h1)]);
        c.note_instance_location(i, h2);
        assert_eq!(c.instances(), vec![(i, h2)]);
    }
}
