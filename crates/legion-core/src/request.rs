//! Placement requests — what a Scheduler is asked to place.
//!
//! "At a minimum, the Scheduler knows how many instances of each class
//! must be started" (§3.3). A [`PlacementRequest`] lists the classes and
//! instance counts; richer Schedulers also read per-class resource
//! requirements (memory, communication) from the class's
//! [`ClassReport`](crate::class::ClassReport) and available
//! [`ObjectImplementation`]s.

use crate::loid::Loid;
use serde::{Deserialize, Serialize};

/// One available implementation of a class.
///
/// Classes can have several implementations (binaries); the Scheduler
/// "extracts the list of available implementations from the Class Object"
/// (Fig. 7) and queries the Collection for matching hosts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectImplementation {
    /// Target architecture (e.g. `"sparc"`, `"mips"`, `"x86"`).
    pub arch: String,
    /// Target operating system (e.g. `"IRIX"`, `"Solaris"`, `"Linux"`).
    pub os: String,
}

impl ObjectImplementation {
    /// Creates an implementation descriptor.
    pub fn new(arch: impl Into<String>, os: impl Into<String>) -> Self {
        ObjectImplementation { arch: arch.into(), os: os.into() }
    }

    /// Whether a host with the given architecture/OS can run this
    /// implementation.
    pub fn runs_on(&self, arch: &str, os: &str) -> bool {
        self.arch == arch && self.os == os
    }
}

/// Request to start `count` instances of `class`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassRequest {
    /// The class to instantiate.
    pub class: Loid,
    /// How many instances are desired.
    pub count: u32,
    /// Optional extra Collection-query constraint the Scheduler should
    /// apply when selecting hosts (e.g. `"$host_memory_mb >= 512"`).
    pub constraint: Option<String>,
}

impl ClassRequest {
    /// A request with no extra constraint.
    pub fn new(class: Loid, count: u32) -> Self {
        ClassRequest { class, count, constraint: None }
    }

    /// Builder: attach a query constraint.
    pub fn with_constraint(mut self, q: impl Into<String>) -> Self {
        self.constraint = Some(q.into());
        self
    }
}

/// A whole placement request — the Scheduler's input.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// The classes (with counts) to place.
    pub items: Vec<ClassRequest>,
}

impl PlacementRequest {
    /// An empty request.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: add a class.
    pub fn class(mut self, class: Loid, count: u32) -> Self {
        self.items.push(ClassRequest::new(class, count));
        self
    }

    /// Builder: add a constrained class.
    pub fn class_where(mut self, class: Loid, count: u32, q: impl Into<String>) -> Self {
        self.items.push(ClassRequest::new(class, count).with_constraint(q));
        self
    }

    /// Total number of instances requested across all classes.
    pub fn total_instances(&self) -> u32 {
        self.items.iter().map(|i| i.count).sum()
    }

    /// Whether the request asks for nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty() || self.total_instances() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loid::LoidKind;

    #[test]
    fn implementation_compatibility() {
        let imp = ObjectImplementation::new("mips", "IRIX");
        assert!(imp.runs_on("mips", "IRIX"));
        assert!(!imp.runs_on("mips", "Linux"));
        assert!(!imp.runs_on("x86", "IRIX"));
    }

    #[test]
    fn request_builder_counts() {
        let a = Loid::synthetic(LoidKind::Class, 1);
        let b = Loid::synthetic(LoidKind::Class, 2);
        let req = PlacementRequest::new()
            .class(a, 4)
            .class_where(b, 2, "$host_memory_mb >= 512");
        assert_eq!(req.total_instances(), 6);
        assert!(!req.is_empty());
        assert_eq!(req.items[1].constraint.as_deref(), Some("$host_memory_mb >= 512"));
    }

    #[test]
    fn emptiness() {
        assert!(PlacementRequest::new().is_empty());
        let a = Loid::synthetic(LoidKind::Class, 1);
        assert!(PlacementRequest::new().class(a, 0).is_empty());
    }
}
