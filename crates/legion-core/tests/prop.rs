//! Property-based tests on core data structures.

use legion_core::{
    AttrValue, AttributeDb, Loid, LoidKind, ReservationRequest, ReservationType, SimDuration,
    SimTime, TokenMinter,
};
use proptest::prelude::*;
use std::cmp::Ordering;

fn arb_kind() -> impl Strategy<Value = LoidKind> {
    prop_oneof![
        Just(LoidKind::Class),
        Just(LoidKind::Host),
        Just(LoidKind::Vault),
        Just(LoidKind::Instance),
        Just(LoidKind::Service),
    ]
}

fn arb_loid() -> impl Strategy<Value = Loid> {
    (arb_kind(), 1u64..u64::MAX, any::<u64>())
        .prop_map(|(kind, seq, nonce)| Loid { kind, seq, nonce })
}

fn arb_scalar() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        any::<i64>().prop_map(AttrValue::Int),
        (-1e12f64..1e12).prop_map(AttrValue::Float),
        "[a-zA-Z0-9_.]{0,12}".prop_map(AttrValue::Str),
        any::<bool>().prop_map(AttrValue::Bool),
    ]
}

proptest! {
    /// Display → parse is the identity on LOIDs.
    #[test]
    fn loid_display_parse_roundtrip(l in arb_loid()) {
        let parsed: Loid = l.to_string().parse().unwrap();
        prop_assert_eq!(parsed, l);
    }

    /// Digests are stable and kind-sensitive.
    #[test]
    fn loid_digest_stable(l in arb_loid()) {
        prop_assert_eq!(l.digest(), l.digest());
    }

    /// Semantic comparison is reflexive-equal for every scalar except
    /// non-finite floats (which we never construct).
    #[test]
    fn attr_cmp_reflexive(v in arb_scalar()) {
        prop_assert_eq!(v.semantic_cmp(&v), Some(Ordering::Equal));
    }

    /// Semantic comparison is antisymmetric: cmp(a,b) reverses cmp(b,a).
    #[test]
    fn attr_cmp_antisymmetric(a in arb_scalar(), b in arb_scalar()) {
        match (a.semantic_cmp(&b), b.semantic_cmp(&a)) {
            (Some(x), Some(y)) => prop_assert_eq!(x, y.reverse()),
            (None, None) => {}
            (x, y) => prop_assert!(false, "asymmetric comparability: {:?} vs {:?}", x, y),
        }
    }

    /// Int/Float coercion agrees with direct float comparison.
    #[test]
    fn attr_cmp_numeric_coercion(i in -1_000_000i64..1_000_000, f in -1e6f64..1e6) {
        let got = AttrValue::Int(i).semantic_cmp(&AttrValue::Float(f));
        prop_assert_eq!(got, (i as f64).partial_cmp(&f));
    }

    /// merge_from is idempotent and right-biased.
    #[test]
    fn attrdb_merge_right_biased(
        keys in proptest::collection::vec("[a-c]{1}", 0..6),
        vals in proptest::collection::vec(any::<i64>(), 0..6),
    ) {
        let mut left = AttributeDb::new().with("x", 1i64);
        let mut right = AttributeDb::new();
        for (k, v) in keys.iter().zip(&vals) {
            right.set(k.clone(), *v);
        }
        left.merge_from(&right);
        let once = left.clone();
        left.merge_from(&right);
        prop_assert_eq!(&left, &once, "idempotent");
        for (k, _) in right.iter() {
            prop_assert_eq!(left.get(k), right.get(k), "right side wins");
        }
    }

    /// Any single-field mutation of a reservation token invalidates it.
    #[test]
    fn token_tamper_always_detected(
        secret in any::<u64>(),
        which in 0usize..8,
        delta in 1u64..1000,
    ) {
        let host = Loid::synthetic(LoidKind::Host, 1);
        let vault = Loid::synthetic(LoidKind::Vault, 2);
        let class = Loid::synthetic(LoidKind::Class, 3);
        let mut minter = TokenMinter::new(host, secret);
        let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(60));
        let tok = minter.mint(&req, SimTime::ZERO, Some(SimTime::from_secs(30)));
        prop_assert!(minter.verify(&tok));

        let mut forged = tok.clone();
        match which {
            0 => forged.serial = forged.serial.wrapping_add(delta),
            1 => forged.vault = Loid::synthetic(LoidKind::Vault, 2 + delta),
            2 => forged.class = Loid::synthetic(LoidKind::Class, 3 + delta),
            3 => forged.start += SimDuration::from_micros(delta),
            4 => forged.duration += SimDuration::from_micros(delta),
            5 => forged.cpu_centis = forged.cpu_centis.wrapping_add(delta as u32),
            6 => forged.memory_mb = forged.memory_mb.wrapping_add(delta as u32),
            _ => {
                forged.rtype = ReservationType {
                    share: !forged.rtype.share,
                    reuse: forged.rtype.reuse,
                }
            }
        }
        prop_assert!(!minter.verify(&forged), "mutation {which} must invalidate the tag");
    }

    /// Time arithmetic: (t + d) - t == d and ordering is consistent.
    #[test]
    fn time_arithmetic(t in 0u64..1u64 << 40, d in 0u64..1u64 << 30) {
        let t = SimTime(t);
        let d = SimDuration(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert!(t + d >= t);
        prop_assert_eq!(t.since(t + d), SimDuration::ZERO);
    }

    /// Reservation window cover matches interval semantics.
    #[test]
    fn token_window_cover(start in 0u64..1u64 << 30, dur in 1u64..1u64 << 20, probe in 0u64..1u64 << 31) {
        let host = Loid::synthetic(LoidKind::Host, 1);
        let mut minter = TokenMinter::new(host, 9);
        let req = ReservationRequest::instantaneous(
            Loid::synthetic(LoidKind::Class, 1),
            Loid::synthetic(LoidKind::Vault, 1),
            SimDuration(dur),
        )
        .starting_at(SimTime(start));
        let tok = minter.mint(&req, SimTime(start), None);
        let inside = probe >= start && probe < start + dur;
        prop_assert_eq!(tok.covers(SimTime(probe)), inside);
    }
}
