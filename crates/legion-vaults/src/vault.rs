//! The standard in-memory vault.

use legion_core::{
    AttributeDb, AttrValue, LegionError, Loid, LoidKind, Opr, StorageStats, VaultObject,
};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Static configuration of a [`StandardVault`].
#[derive(Debug, Clone)]
pub struct VaultConfig {
    /// Human-readable name.
    pub name: String,
    /// Administrative domain the vault lives in.
    pub domain: String,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Cost per stored byte, in millicents (a future differentiator the
    /// paper names; zero means free).
    pub cost_per_byte: u64,
    /// Host domains this vault accepts OPRs from; empty = all.
    pub accepted_domains: Vec<String>,
    /// Host architectures whose OPR formats this vault understands;
    /// empty = all.
    pub accepted_arches: Vec<String>,
}

impl Default for VaultConfig {
    fn default() -> Self {
        VaultConfig {
            name: "vault".into(),
            domain: "dom0".into(),
            capacity_bytes: 1 << 30,
            cost_per_byte: 0,
            accepted_domains: Vec::new(),
            accepted_arches: Vec::new(),
        }
    }
}

/// In-memory vault with capacity accounting and admission rules.
#[derive(Debug)]
pub struct StandardVault {
    loid: Loid,
    config: VaultConfig,
    store: RwLock<Store>,
}

#[derive(Debug, Default)]
struct Store {
    oprs: BTreeMap<Loid, Opr>,
    used_bytes: u64,
}

impl StandardVault {
    /// Creates a vault from configuration.
    pub fn new(config: VaultConfig) -> Self {
        StandardVault { loid: Loid::fresh(LoidKind::Vault), config, store: RwLock::new(Store::default()) }
    }

    /// Creates a vault with a deterministic LOID (testbed construction).
    pub fn with_loid(loid: Loid, config: VaultConfig) -> Self {
        assert_eq!(loid.kind, LoidKind::Vault, "vault LOID must have vault kind");
        StandardVault { loid, config, store: RwLock::new(Store::default()) }
    }

    /// The vault's configuration.
    pub fn config(&self) -> &VaultConfig {
        &self.config
    }
}

impl VaultObject for StandardVault {
    fn loid(&self) -> Loid {
        self.loid
    }

    fn attributes(&self) -> AttributeDb {
        let s = self.storage();
        AttributeDb::new()
            .with("vault_name", self.config.name.as_str())
            .with("vault_domain", self.config.domain.as_str())
            .with("vault_capacity_bytes", self.config.capacity_bytes as i64)
            .with("vault_free_bytes", s.free_bytes() as i64)
            .with("vault_cost_per_byte", self.config.cost_per_byte as i64)
            .with("vault_opr_count", s.opr_count as i64)
            .with(
                "vault_accepted_domains",
                AttrValue::List(
                    self.config.accepted_domains.iter().map(|d| d.as_str().into()).collect(),
                ),
            )
    }

    fn store_opr(&self, opr: Opr) -> Result<(), LegionError> {
        let mut s = self.store.write();
        let new_size = opr.size_bytes() as u64;
        let old_size = s.oprs.get(&opr.object).map(|o| o.size_bytes() as u64).unwrap_or(0);
        // Refuse stale writes: a racing migration must not clobber newer
        // state with an older OPR version.
        if let Some(existing) = s.oprs.get(&opr.object) {
            if existing.version > opr.version {
                return Err(LegionError::Serialization(format!(
                    "stale OPR write for {} (have v{}, got v{})",
                    opr.object, existing.version, opr.version
                )));
            }
        }
        let projected = s.used_bytes - old_size + new_size;
        if projected > self.config.capacity_bytes {
            return Err(LegionError::VaultFull(self.loid));
        }
        s.used_bytes = projected;
        s.oprs.insert(opr.object, opr);
        Ok(())
    }

    fn fetch_opr(&self, object: Loid) -> Result<Opr, LegionError> {
        self.store.read().oprs.get(&object).cloned().ok_or(LegionError::NoSuchOpr(object))
    }

    fn delete_opr(&self, object: Loid) -> Result<(), LegionError> {
        let mut s = self.store.write();
        match s.oprs.remove(&object) {
            Some(o) => {
                s.used_bytes -= o.size_bytes() as u64;
                Ok(())
            }
            None => Err(LegionError::NoSuchOpr(object)),
        }
    }

    fn holds(&self, object: Loid) -> bool {
        self.store.read().oprs.contains_key(&object)
    }

    fn compatible_with_host(&self, host_attrs: &AttributeDb) -> bool {
        use legion_core::host::well_known;
        if !self.config.accepted_domains.is_empty() {
            let host_domain = host_attrs.get_str(well_known::DOMAIN).unwrap_or("");
            if !self.config.accepted_domains.iter().any(|d| d == host_domain) {
                return false;
            }
        }
        if !self.config.accepted_arches.is_empty() {
            let host_arch = host_attrs.get_str(well_known::ARCH).unwrap_or("");
            if !self.config.accepted_arches.iter().any(|a| a == host_arch) {
                return false;
            }
        }
        true
    }

    fn storage(&self) -> StorageStats {
        let s = self.store.read();
        StorageStats {
            capacity_bytes: self.config.capacity_bytes,
            used_bytes: s.used_bytes,
            opr_count: s.oprs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::host::well_known;
    use legion_core::SimTime;

    fn opr(seq: u64, size: usize) -> Opr {
        Opr::new(
            Loid::synthetic(LoidKind::Instance, seq),
            Loid::synthetic(LoidKind::Class, 1),
            SimTime::ZERO,
            vec![0u8; size],
        )
    }

    #[test]
    fn store_fetch_delete_roundtrip() {
        let v = StandardVault::new(VaultConfig::default());
        let o = opr(1, 100);
        v.store_opr(o.clone()).unwrap();
        assert!(v.holds(o.object));
        assert_eq!(v.fetch_opr(o.object).unwrap(), o);
        assert_eq!(v.storage().used_bytes, 100);
        v.delete_opr(o.object).unwrap();
        assert!(!v.holds(o.object));
        assert_eq!(v.storage().used_bytes, 0);
        assert!(matches!(v.fetch_opr(o.object), Err(LegionError::NoSuchOpr(_))));
    }

    #[test]
    fn capacity_enforced() {
        let v = StandardVault::new(VaultConfig { capacity_bytes: 150, ..Default::default() });
        v.store_opr(opr(1, 100)).unwrap();
        assert!(matches!(v.store_opr(opr(2, 100)), Err(LegionError::VaultFull(_))));
        // Overwrite of the same object only charges the delta.
        let bigger = opr(1, 140);
        v.store_opr(bigger).unwrap();
        assert_eq!(v.storage().used_bytes, 140);
    }

    #[test]
    fn stale_version_rejected() {
        let v = StandardVault::new(VaultConfig::default());
        let o1 = opr(1, 10);
        let o2 = o1.resaved(SimTime::from_secs(1), vec![0u8; 10]);
        v.store_opr(o2.clone()).unwrap();
        assert!(matches!(v.store_opr(o1), Err(LegionError::Serialization(_))));
        // Same version (idempotent re-store) is fine.
        v.store_opr(o2).unwrap();
    }

    #[test]
    fn domain_compatibility() {
        let v = StandardVault::new(VaultConfig {
            accepted_domains: vec!["uva.edu".into()],
            ..Default::default()
        });
        let uva = AttributeDb::new().with(well_known::DOMAIN, "uva.edu");
        let sdsc = AttributeDb::new().with(well_known::DOMAIN, "sdsc.edu");
        assert!(v.compatible_with_host(&uva));
        assert!(!v.compatible_with_host(&sdsc));
        // Open vault accepts everyone.
        let open = StandardVault::new(VaultConfig::default());
        assert!(open.compatible_with_host(&sdsc));
    }

    #[test]
    fn arch_compatibility() {
        let v = StandardVault::new(VaultConfig {
            accepted_arches: vec!["mips".into(), "sparc".into()],
            ..Default::default()
        });
        let mips = AttributeDb::new().with(well_known::ARCH, "mips");
        let x86 = AttributeDb::new().with(well_known::ARCH, "x86");
        assert!(v.compatible_with_host(&mips));
        assert!(!v.compatible_with_host(&x86));
    }

    #[test]
    fn attributes_reflect_state() {
        let v = StandardVault::new(VaultConfig {
            name: "v0".into(),
            capacity_bytes: 1000,
            ..Default::default()
        });
        v.store_opr(opr(1, 250)).unwrap();
        let a = v.attributes();
        assert_eq!(a.get_str("vault_name"), Some("v0"));
        assert_eq!(a.get_i64("vault_free_bytes"), Some(750));
        assert_eq!(a.get_i64("vault_opr_count"), Some(1));
    }

    #[test]
    #[should_panic(expected = "vault LOID")]
    fn wrong_kind_loid_panics() {
        StandardVault::with_loid(Loid::synthetic(LoidKind::Host, 1), VaultConfig::default());
    }
}
