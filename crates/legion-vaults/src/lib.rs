//! Vault object implementations.
//!
//! "Vaults are the generic storage abstraction in Legion" (§2.1). The
//! [`StandardVault`] stores Object Persistent Representations in memory
//! with capacity accounting, and implements the compatibility check that
//! is the vault's "sole participation in the scheduling process" (§3.1).
//! The paper's anticipated future differentiators — storage available,
//! cost per byte, security policy — are implemented as attributes and
//! admission rules so schedulers can exploit them today.

pub mod vault;

pub use vault::{StandardVault, VaultConfig};
