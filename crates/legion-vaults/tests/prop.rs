//! Property tests: vault storage accounting under random op sequences.

use legion_core::{LegionError, Loid, LoidKind, Opr, SimTime, VaultObject};
use legion_vaults::{StandardVault, VaultConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    /// Store an OPR for object `obj` with `size` bytes and version `v`.
    Store { obj: u64, size: usize, version: u64 },
    Fetch { obj: u64 },
    Delete { obj: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..8, 0usize..200, 1u64..5)
            .prop_map(|(obj, size, version)| Op::Store { obj, size, version }),
        (1u64..8).prop_map(|obj| Op::Fetch { obj }),
        (1u64..8).prop_map(|obj| Op::Delete { obj }),
    ]
}

fn opr(obj: u64, size: usize, version: u64) -> Opr {
    let mut o = Opr::new(
        Loid::synthetic(LoidKind::Instance, obj),
        Loid::synthetic(LoidKind::Class, 1),
        SimTime::ZERO,
        vec![0u8; size],
    );
    o.version = version;
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The vault's used_bytes always equals the sum of the stored OPRs'
    /// sizes; capacity is never exceeded; versions never regress.
    #[test]
    fn accounting_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        const CAP: u64 = 500;
        let v = StandardVault::new(VaultConfig { capacity_bytes: CAP, ..Default::default() });
        let mut model: BTreeMap<u64, (usize, u64)> = BTreeMap::new(); // obj -> (size, version)

        for op in ops {
            match op {
                Op::Store { obj, size, version } => {
                    let res = v.store_opr(opr(obj, size, version));
                    let old = model.get(&obj).copied();
                    let projected: u64 = model
                        .iter()
                        .map(|(&o, &(s, _))| if o == obj { size as u64 } else { s as u64 })
                        .sum::<u64>()
                        + if old.is_none() { size as u64 } else { 0 };
                    let stale = old.is_some_and(|(_, ver)| ver > version);
                    if stale {
                        prop_assert!(matches!(res, Err(LegionError::Serialization(_))));
                    } else if projected > CAP {
                        prop_assert!(matches!(res, Err(LegionError::VaultFull(_))));
                    } else {
                        prop_assert!(res.is_ok());
                        model.insert(obj, (size, version));
                    }
                }
                Op::Fetch { obj } => {
                    let got = v.fetch_opr(Loid::synthetic(LoidKind::Instance, obj));
                    match model.get(&obj) {
                        Some(&(size, version)) => {
                            let o = got.expect("model says present");
                            prop_assert_eq!(o.size_bytes(), size);
                            prop_assert_eq!(o.version, version);
                        }
                        None => prop_assert!(matches!(got, Err(LegionError::NoSuchOpr(_)))),
                    }
                }
                Op::Delete { obj } => {
                    let res = v.delete_opr(Loid::synthetic(LoidKind::Instance, obj));
                    if model.remove(&obj).is_some() {
                        prop_assert!(res.is_ok());
                    } else {
                        prop_assert!(matches!(res, Err(LegionError::NoSuchOpr(_))));
                    }
                }
            }

            // Invariants after every step.
            let stats = v.storage();
            let model_bytes: u64 = model.values().map(|&(s, _)| s as u64).sum();
            prop_assert_eq!(stats.used_bytes, model_bytes, "accounting drift");
            prop_assert_eq!(stats.opr_count, model.len());
            prop_assert!(stats.used_bytes <= CAP);
        }
    }
}
