//! Property tests: link bandwidth is never oversubscribed.

use legion_core::{Loid, LoidKind, SimDuration, SimTime};
use legion_fabric::DomainId;
use legion_network::NetworkObject;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Reserve { mbps: u32 },
    CancelNth(usize),
    ConfirmNth(usize),
    Sweep,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..80).prop_map(|mbps| Op::Reserve { mbps }),
        (0usize..12).prop_map(Op::CancelNth),
        (0usize..12).prop_map(Op::ConfirmNth),
        Just(Op::Sweep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Under arbitrary reserve/cancel/confirm/sweep sequences, held
    /// bandwidth never exceeds capacity, and cancel always frees.
    #[test]
    fn capacity_invariant(ops in proptest::collection::vec(arb_op(), 1..50)) {
        const CAP: u32 = 100;
        let link = NetworkObject::new(DomainId(0), DomainId(1), CAP, 5);
        let class = Loid::synthetic(LoidKind::Class, 1);
        let mut now = SimTime::ZERO;
        let mut tokens = Vec::new();

        for op in ops {
            match op {
                Op::Reserve { mbps } => {
                    if let Ok(tok) =
                        link.reserve_bandwidth(class, mbps, SimDuration::from_secs(300), now)
                    {
                        tokens.push(tok);
                    }
                }
                Op::CancelNth(i) if !tokens.is_empty() => {
                    let tok = tokens[i % tokens.len()].clone();
                    link.cancel(&tok).expect("genuine token");
                }
                Op::ConfirmNth(i) if !tokens.is_empty() => {
                    let tok = tokens[i % tokens.len()].clone();
                    let _ = link.confirm(&tok, now); // may be consumed/cancelled
                }
                Op::CancelNth(_) | Op::ConfirmNth(_) => {}
                Op::Sweep => {
                    now += SimDuration::from_secs(30);
                    link.sweep(now);
                }
            }
            prop_assert!(
                link.held_mbps(now) <= CAP,
                "held {} over capacity {CAP}",
                link.held_mbps(now)
            );
        }
    }

    /// Reserving exactly to capacity always succeeds on an empty link,
    /// and one more Mbps is always refused.
    #[test]
    fn exact_fill(parts in proptest::collection::vec(1u32..40, 1..8)) {
        let total: u32 = parts.iter().sum();
        let link = NetworkObject::new(DomainId(0), DomainId(1), total, 5);
        let class = Loid::synthetic(LoidKind::Class, 1);
        for &mbps in &parts {
            link.reserve_bandwidth(class, mbps, SimDuration::from_secs(60), SimTime::ZERO)
                .expect("fits by construction");
        }
        prop_assert!(link
            .reserve_bandwidth(class, 1, SimDuration::from_secs(60), SimTime::ZERO)
            .is_err());
        prop_assert_eq!(link.held_mbps(SimTime::from_secs(1)), total);
    }
}
