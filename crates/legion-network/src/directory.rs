//! The directory of Network Objects, one per inter-domain link.

use crate::netobj::{canonical, NetworkObject};
use legion_fabric::{DomainId, Fabric};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Resolves domain pairs to their guarding Network Objects.
pub struct NetworkDirectory {
    links: RwLock<BTreeMap<(DomainId, DomainId), Arc<NetworkObject>>>,
}

impl NetworkDirectory {
    /// An empty directory.
    pub fn new() -> Arc<Self> {
        Arc::new(NetworkDirectory { links: RwLock::new(BTreeMap::new()) })
    }

    /// Builds one Network Object per inter-domain pair of `fabric`'s
    /// topology, each with `capacity_mbps`.
    pub fn for_fabric(fabric: &Arc<Fabric>, capacity_mbps: u32, seed: u64) -> Arc<Self> {
        let dir = Self::new();
        let n = fabric.topology(|t| t.len());
        for a in 0..n {
            for b in (a + 1)..n {
                dir.add(NetworkObject::new(
                    DomainId(a as u16),
                    DomainId(b as u16),
                    capacity_mbps,
                    seed ^ ((a as u64) << 32 | b as u64),
                ));
            }
        }
        dir
    }

    /// Registers a link object (replacing any previous guardian).
    pub fn add(&self, obj: NetworkObject) {
        self.links.write().insert(obj.link(), Arc::new(obj));
    }

    /// Looks up the guardian of the (unordered) pair `a`-`b`.
    pub fn lookup(&self, a: DomainId, b: DomainId) -> Option<Arc<NetworkObject>> {
        self.links.read().get(&canonical(a, b)).cloned()
    }

    /// All managed links.
    pub fn links(&self) -> Vec<(DomainId, DomainId)> {
        self.links.read().keys().copied().collect()
    }

    /// Number of managed links.
    pub fn len(&self) -> usize {
        self.links.read().len()
    }

    /// Whether no links are managed.
    pub fn is_empty(&self) -> bool {
        self.links.read().is_empty()
    }
}

impl Default for NetworkDirectory {
    fn default() -> Self {
        NetworkDirectory { links: RwLock::new(BTreeMap::new()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::SimDuration;
    use legion_fabric::DomainTopology;

    #[test]
    fn for_fabric_covers_all_pairs() {
        let fabric = Fabric::new(
            DomainTopology::uniform(4, SimDuration::from_micros(1), SimDuration::from_millis(1)),
            3,
        );
        let dir = NetworkDirectory::for_fabric(&fabric, 100, 9);
        assert_eq!(dir.len(), 6); // C(4,2)
        assert!(dir.lookup(DomainId(2), DomainId(0)).is_some());
        assert!(dir.lookup(DomainId(0), DomainId(2)).is_some());
        // Both orders resolve to the same object.
        let a = dir.lookup(DomainId(1), DomainId(3)).unwrap();
        let b = dir.lookup(DomainId(3), DomainId(1)).unwrap();
        assert_eq!(a.loid(), b.loid());
    }

    #[test]
    fn unknown_links_are_none() {
        let dir = NetworkDirectory::new();
        assert!(dir.lookup(DomainId(0), DomainId(1)).is_none());
        assert!(dir.is_empty());
    }
}
