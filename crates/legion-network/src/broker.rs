//! The Network Broker — Enactor-style co-allocation of link bandwidth.

use crate::directory::NetworkDirectory;
use crate::netobj::canonical;
use legion_core::{LegionError, Loid, ReservationToken, SimDuration, SimTime};
use legion_fabric::{DomainId, Fabric};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-link bandwidth demand, in Mbps.
pub type LinkDemand = BTreeMap<(DomainId, DomainId), u32>;

/// A granted network plan: the link tokens, ready to confirm or cancel.
#[derive(Debug)]
pub struct NetworkPlan {
    /// (link, token) pairs in grant order.
    pub tokens: Vec<((DomainId, DomainId), ReservationToken)>,
}

impl NetworkPlan {
    /// Total Mbps granted across links.
    pub fn total_mbps(&self) -> u64 {
        self.tokens.iter().map(|(_, t)| t.cpu_centis as u64).sum()
    }
}

/// Co-allocates bandwidth reservations across Network Objects.
pub struct NetworkBroker {
    directory: Arc<NetworkDirectory>,
}

impl NetworkBroker {
    /// A broker over `directory`.
    pub fn new(directory: Arc<NetworkDirectory>) -> Self {
        NetworkBroker { directory }
    }

    /// The underlying directory.
    pub fn directory(&self) -> &Arc<NetworkDirectory> {
        &self.directory
    }

    /// Computes per-link demand for an application's communication
    /// edges: `edges` lists (host, host, mbps) flows; intra-domain flows
    /// are free (the fabric's LAN is unmanaged), inter-domain flows
    /// accumulate on their link.
    pub fn demand_for_edges(
        fabric: &Arc<Fabric>,
        edges: &[(Loid, Loid, u32)],
    ) -> LinkDemand {
        let mut demand = LinkDemand::new();
        for &(a, b, mbps) in edges {
            let (da, db) = (fabric.domain_of(a), fabric.domain_of(b));
            if da != db {
                *demand.entry(canonical(da, db)).or_insert(0) += mbps;
            }
        }
        demand
    }

    /// Reserves every link in `demand` for `class`, all-or-nothing: on
    /// any refusal the already-granted links are cancelled and the
    /// refusing error is returned (with the plan untouched, exactly the
    /// Enactor's co-allocation discipline).
    pub fn reserve(
        &self,
        class: Loid,
        demand: &LinkDemand,
        duration: SimDuration,
        now: SimTime,
    ) -> Result<NetworkPlan, LegionError> {
        let mut granted: Vec<((DomainId, DomainId), ReservationToken)> = Vec::new();
        for (&link, &mbps) in demand {
            let obj = match self.directory.lookup(link.0, link.1) {
                Some(o) => o,
                None => {
                    self.rollback(&granted);
                    return Err(LegionError::Other(format!(
                        "no network object manages link {:?}-{:?}",
                        link.0, link.1
                    )));
                }
            };
            match obj.reserve_bandwidth(class, mbps, duration, now) {
                Ok(tok) => granted.push((link, tok)),
                Err(e) => {
                    self.rollback(&granted);
                    return Err(e);
                }
            }
        }
        Ok(NetworkPlan { tokens: granted })
    }

    /// Confirms every token in a plan (the flows start).
    pub fn confirm(&self, plan: &NetworkPlan, now: SimTime) -> Result<(), LegionError> {
        for (link, tok) in &plan.tokens {
            let obj = self
                .directory
                .lookup(link.0, link.1)
                .ok_or_else(|| LegionError::Other("link vanished".into()))?;
            obj.confirm(tok, now)?;
        }
        Ok(())
    }

    /// Cancels every token in a plan.
    pub fn cancel(&self, plan: &NetworkPlan) {
        self.rollback(&plan.tokens);
    }

    fn rollback(&self, granted: &[((DomainId, DomainId), ReservationToken)]) {
        for (link, tok) in granted {
            if let Some(obj) = self.directory.lookup(link.0, link.1) {
                let _ = obj.cancel(tok);
            }
        }
    }
}

/// 4-neighbour communication edges of a rows×cols grid placement:
/// (rank_a_host, rank_b_host, mbps) per adjacent pair, given the
/// mapping of rank index (row-major) to host.
pub fn grid_edges(
    hosts_by_rank: &[Loid],
    rows: usize,
    cols: usize,
    mbps_per_edge: u32,
) -> Vec<(Loid, Loid, u32)> {
    assert_eq!(hosts_by_rank.len(), rows * cols, "rank/host count mismatch");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((hosts_by_rank[idx(r, c)], hosts_by_rank[idx(r, c + 1)], mbps_per_edge));
            }
            if r + 1 < rows {
                edges.push((hosts_by_rank[idx(r, c)], hosts_by_rank[idx(r + 1, c)], mbps_per_edge));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netobj::NetworkObject;
    use legion_core::{Loid, LoidKind};
    use legion_fabric::DomainTopology;

    fn fabric3() -> Arc<Fabric> {
        let f = Fabric::new(
            DomainTopology::uniform(3, SimDuration::from_micros(1), SimDuration::from_millis(1)),
            1,
        );
        // Place synthetic "hosts" in domains 0, 1, 2.
        for d in 0..3u16 {
            f.place(Loid::synthetic(LoidKind::Host, d as u64 + 1), DomainId(d));
        }
        f
    }

    fn h(d: u64) -> Loid {
        Loid::synthetic(LoidKind::Host, d + 1)
    }

    #[test]
    fn demand_ignores_intra_domain_flows() {
        let f = fabric3();
        let edges = vec![(h(0), h(0), 50), (h(0), h(1), 10), (h(1), h(0), 15), (h(1), h(2), 5)];
        let demand = NetworkBroker::demand_for_edges(&f, &edges);
        assert_eq!(demand.len(), 2);
        // Both directions of 0-1 accumulate on the canonical link.
        assert_eq!(demand[&(DomainId(0), DomainId(1))], 25);
        assert_eq!(demand[&(DomainId(1), DomainId(2))], 5);
    }

    #[test]
    fn all_or_nothing_reservation() {
        let f = fabric3();
        let dir = NetworkDirectory::new();
        dir.add(NetworkObject::new(DomainId(0), DomainId(1), 100, 1));
        dir.add(NetworkObject::new(DomainId(1), DomainId(2), 10, 2)); // tiny
        let broker = NetworkBroker::new(Arc::clone(&dir));
        let class = Loid::synthetic(LoidKind::Class, 1);

        // Demand exceeds the tiny link: everything rolls back.
        let edges = vec![(h(0), h(1), 50), (h(1), h(2), 50)];
        let demand = NetworkBroker::demand_for_edges(&f, &edges);
        let err = broker.reserve(class, &demand, SimDuration::from_secs(60), SimTime::ZERO);
        assert!(err.is_err());
        let big = dir.lookup(DomainId(0), DomainId(1)).unwrap();
        assert_eq!(big.held_mbps(SimTime::from_secs(1)), 0, "rollback freed the big link");

        // A feasible demand succeeds and holds both links.
        let edges = vec![(h(0), h(1), 50), (h(1), h(2), 10)];
        let demand = NetworkBroker::demand_for_edges(&f, &edges);
        let plan = broker
            .reserve(class, &demand, SimDuration::from_secs(60), SimTime::ZERO)
            .unwrap();
        assert_eq!(plan.tokens.len(), 2);
        assert_eq!(plan.total_mbps(), 60);
        assert_eq!(big.held_mbps(SimTime::from_secs(1)), 50);

        broker.cancel(&plan);
        assert_eq!(big.held_mbps(SimTime::from_secs(1)), 0);
    }

    #[test]
    fn missing_link_object_is_an_error() {
        let f = fabric3();
        let broker = NetworkBroker::new(NetworkDirectory::new());
        let demand =
            NetworkBroker::demand_for_edges(&f, &[(h(0), h(1), 10)]);
        assert!(broker
            .reserve(
                Loid::synthetic(LoidKind::Class, 1),
                &demand,
                SimDuration::from_secs(60),
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn grid_edges_count() {
        let hosts: Vec<Loid> = (0..6).map(h).collect();
        let edges = grid_edges(&hosts, 2, 3, 7);
        // 2x3 grid: horizontal 2*2=4, vertical 3*1=3 → 7 edges.
        assert_eq!(edges.len(), 7);
        assert!(edges.iter().all(|&(_, _, m)| m == 7));
    }
}
