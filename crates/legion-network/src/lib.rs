//! Network Objects — communication resources under Legion reservations.
//!
//! "We are developing Network Objects to manage communications
//! resources." (§6) The paper never describes them further, so this
//! crate realizes the obvious design implied by the rest of the RMI:
//! a [`NetworkObject`] is the *guardian of a domain-pair link* exactly
//! as a Host object is the guardian of a machine — it grants
//! non-forgeable bandwidth reservations with the same Table 2 semantics
//! (a `share = 0` reservation dedicates the whole link; `share = 1`
//! reservations multiplex it; `reuse` controls one-shot vs reusable
//! confirmation), backed by the same host-side
//! [`ReservationTable`](legion_hosts::ReservationTable) machinery.
//!
//! The [`NetworkBroker`] is the Enactor-side counterpart: given the
//! communication edges of an application placement, it computes
//! per-link bandwidth demand and co-allocates all the needed link
//! reservations all-or-nothing, rolling back on any refusal — the same
//! discipline the Enactor applies to Hosts.

pub mod broker;
pub mod directory;
pub mod netobj;

pub use broker::{grid_edges, LinkDemand, NetworkBroker, NetworkPlan};
pub use directory::NetworkDirectory;
pub use netobj::NetworkObject;
