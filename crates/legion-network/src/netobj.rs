//! The Network Object: guardian of one inter-domain link.

use legion_core::{
    AttributeDb, LegionError, Loid, LoidKind, ReservationRequest, ReservationStatus,
    ReservationToken, ReservationType, SimDuration, SimTime,
};
use legion_fabric::DomainId;
use legion_hosts::{ReservationTable, TableCapacity};
use parking_lot::Mutex;

/// Canonicalizes a domain pair so both directions name the same link.
pub(crate) fn canonical(a: DomainId, b: DomainId) -> (DomainId, DomainId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// A reservation-managed communication link between two domains.
///
/// Bandwidth is accounted in Mbps through the standard reservation
/// table: the link's capacity plays the CPU axis, memory is unbounded.
/// All four Table 2 reservation types are meaningful: a dedicated
/// circuit is `share = 0`; ordinary multiplexed flows are `share = 1`.
///
/// ```
/// use legion_core::{Loid, LoidKind, SimDuration, SimTime};
/// use legion_fabric::DomainId;
/// use legion_network::NetworkObject;
///
/// let link = NetworkObject::new(DomainId(0), DomainId(1), 100, 7);
/// let class = Loid::fresh(LoidKind::Class);
/// let tok = link
///     .reserve_bandwidth(class, 40, SimDuration::from_secs(600), SimTime::ZERO)
///     .unwrap();
/// assert_eq!(link.held_mbps(SimTime::from_secs(1)), 40);
/// link.cancel(&tok).unwrap();
/// assert_eq!(link.held_mbps(SimTime::from_secs(1)), 0);
/// ```
pub struct NetworkObject {
    loid: Loid,
    link: (DomainId, DomainId),
    capacity_mbps: u32,
    table: Mutex<ReservationTable>,
}

impl NetworkObject {
    /// A link between `a` and `b` with the given capacity.
    pub fn new(a: DomainId, b: DomainId, capacity_mbps: u32, seed: u64) -> Self {
        assert!(capacity_mbps > 0, "a link needs capacity");
        let loid = Loid::fresh(LoidKind::Service);
        let secret = legion_core::hash::mix64(seed ^ loid.digest());
        NetworkObject {
            loid,
            link: canonical(a, b),
            capacity_mbps,
            table: Mutex::new(ReservationTable::new(
                loid,
                secret,
                TableCapacity { cpu_centis: capacity_mbps, memory_mb: u32::MAX },
            )),
        }
    }

    /// This object's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }

    /// The (canonical) domain pair this object guards.
    pub fn link(&self) -> (DomainId, DomainId) {
        self.link
    }

    /// Total link capacity in Mbps.
    pub fn capacity_mbps(&self) -> u32 {
        self.capacity_mbps
    }

    /// Requests `mbps` of shared bandwidth for `duration`, on behalf of
    /// `class`'s communication.
    pub fn reserve_bandwidth(
        &self,
        class: Loid,
        mbps: u32,
        duration: SimDuration,
        now: SimTime,
    ) -> Result<ReservationToken, LegionError> {
        self.reserve_with_type(class, mbps, duration, now, ReservationType::ONE_SHOT_TIME)
    }

    /// As [`Self::reserve_bandwidth`] with an explicit reservation type
    /// (`share = 0` dedicates the entire link).
    pub fn reserve_with_type(
        &self,
        class: Loid,
        mbps: u32,
        duration: SimDuration,
        now: SimTime,
        rtype: ReservationType,
    ) -> Result<ReservationToken, LegionError> {
        let req = ReservationRequest {
            class,
            vault: Loid::NIL,
            rtype,
            start: None,
            duration,
            timeout: Some(SimDuration::from_secs(60)),
            cpu_centis: mbps,
            memory_mb: 0,
            requester_domain: None,
        };
        let held = self.held_mbps(now);
        self.table.lock().make(&req, now).map_err(|e| match e {
            // Rephrase the table's host-vocabulary denial in link terms.
            LegionError::ReservationDenied { host, .. } => LegionError::ReservationDenied {
                host,
                reason: format!(
                    "link {:?}-{:?} cannot grant {mbps} Mbps ({held}/{} Mbps held)",
                    self.link.0, self.link.1, self.capacity_mbps
                ),
            },
            other => other,
        })
    }

    /// Confirms a bandwidth reservation (the flow starts).
    pub fn confirm(&self, token: &ReservationToken, now: SimTime) -> Result<(), LegionError> {
        self.table.lock().consume(token, now)
    }

    /// Releases a bandwidth reservation.
    pub fn cancel(&self, token: &ReservationToken) -> Result<(), LegionError> {
        self.table.lock().cancel(token)
    }

    /// Status of a reservation.
    pub fn check(
        &self,
        token: &ReservationToken,
        now: SimTime,
    ) -> Result<ReservationStatus, LegionError> {
        self.table.lock().check(token, now)
    }

    /// Expires lapsed reservations.
    pub fn sweep(&self, now: SimTime) {
        self.table.lock().sweep(now);
    }

    /// Mbps held by live reservations covering `now`.
    pub fn held_mbps(&self, now: SimTime) -> u32 {
        self.table.lock().held_at(now).0
    }

    /// Attribute snapshot (queryable like any Legion object).
    pub fn attributes(&self, now: SimTime) -> AttributeDb {
        AttributeDb::new()
            .with("net_link_a", self.link.0 .0 as i64)
            .with("net_link_b", self.link.1 .0 as i64)
            .with("net_capacity_mbps", self.capacity_mbps as i64)
            .with("net_held_mbps", self.held_mbps(now) as i64)
            .with(
                "net_free_mbps",
                (self.capacity_mbps.saturating_sub(self.held_mbps(now))) as i64,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class() -> Loid {
        Loid::synthetic(LoidKind::Class, 1)
    }

    #[test]
    fn canonicalization() {
        let n = NetworkObject::new(DomainId(3), DomainId(1), 100, 7);
        assert_eq!(n.link(), (DomainId(1), DomainId(3)));
    }

    #[test]
    fn shared_bandwidth_admits_to_capacity() {
        let n = NetworkObject::new(DomainId(0), DomainId(1), 100, 7);
        let d = SimDuration::from_secs(600);
        n.reserve_bandwidth(class(), 40, d, SimTime::ZERO).unwrap();
        n.reserve_bandwidth(class(), 40, d, SimTime::ZERO).unwrap();
        assert!(n.reserve_bandwidth(class(), 40, d, SimTime::ZERO).is_err());
        n.reserve_bandwidth(class(), 20, d, SimTime::ZERO).unwrap();
        assert_eq!(n.held_mbps(SimTime::from_secs(1)), 100);
    }

    #[test]
    fn dedicated_circuit_excludes_flows() {
        let n = NetworkObject::new(DomainId(0), DomainId(1), 100, 7);
        let d = SimDuration::from_secs(600);
        n.reserve_with_type(class(), 10, d, SimTime::ZERO, ReservationType::REUSABLE_SPACE)
            .unwrap();
        // Even a 1 Mbps flow is refused while the circuit holds the link.
        assert!(n.reserve_bandwidth(class(), 1, d, SimTime::ZERO).is_err());
    }

    #[test]
    fn cancellation_frees_bandwidth() {
        let n = NetworkObject::new(DomainId(0), DomainId(1), 50, 7);
        let d = SimDuration::from_secs(600);
        let tok = n.reserve_bandwidth(class(), 50, d, SimTime::ZERO).unwrap();
        assert!(n.reserve_bandwidth(class(), 10, d, SimTime::ZERO).is_err());
        n.cancel(&tok).unwrap();
        n.reserve_bandwidth(class(), 10, d, SimTime::ZERO).unwrap();
    }

    #[test]
    fn confirmation_and_expiry() {
        let n = NetworkObject::new(DomainId(0), DomainId(1), 50, 7);
        let tok = n
            .reserve_bandwidth(class(), 10, SimDuration::from_secs(600), SimTime::ZERO)
            .unwrap();
        n.confirm(&tok, SimTime::from_secs(1)).unwrap();
        assert_eq!(
            n.check(&tok, SimTime::from_secs(2)).unwrap(),
            ReservationStatus::Consumed
        );
        // A second, unconfirmed reservation lapses at its timeout.
        let tok2 = n
            .reserve_bandwidth(class(), 10, SimDuration::from_secs(600), SimTime::ZERO)
            .unwrap();
        n.sweep(SimTime::from_secs(120));
        assert_eq!(
            n.check(&tok2, SimTime::from_secs(120)).unwrap(),
            ReservationStatus::Expired
        );
    }

    #[test]
    fn attributes_report_utilization() {
        let n = NetworkObject::new(DomainId(0), DomainId(2), 100, 7);
        n.reserve_bandwidth(class(), 30, SimDuration::from_secs(600), SimTime::ZERO)
            .unwrap();
        let a = n.attributes(SimTime::from_secs(1));
        assert_eq!(a.get_i64("net_capacity_mbps"), Some(100));
        assert_eq!(a.get_i64("net_held_mbps"), Some(30));
        assert_eq!(a.get_i64("net_free_mbps"), Some(70));
        assert_eq!(a.get_i64("net_link_b"), Some(2));
    }
}
