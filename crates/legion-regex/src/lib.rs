//! A small, dependency-free regular-expression engine.
//!
//! The Legion Collection query grammar exposes a `match(regex, $field)`
//! primitive which the paper implements with the Unix `regexp()` library.
//! This crate is the equivalent substrate, built from scratch: patterns are
//! parsed into an AST, compiled to a non-deterministic finite automaton
//! (NFA) program, and executed with a Pike-style virtual machine.  The VM
//! runs in `O(pattern * text)` time — there is no backtracking, so no
//! pathological blow-up on adversarial patterns, which matters because
//! Collection queries are accepted from arbitrary (authenticated) users.
//!
//! Supported syntax:
//!
//! * literals, `.` (any character)
//! * repetition: `*`, `+`, `?`, and bounded `{m}`, `{m,}`, `{m,n}`
//! * alternation `a|b` and grouping `(ab)+`
//! * character classes `[a-z0-9_]`, negated classes `[^...]`
//! * anchors `^` and `$`
//! * escapes: `\d \D \w \W \s \S` and `\.` `\\` `\n` `\t` `\r` plus any
//!   escaped punctuation
//!
//! Matching is *unanchored search* by default (like `regexp()`): the
//! pattern may match anywhere in the text unless `^`/`$` pin it down.
//!
//! ```
//! use legion_regex::Regex;
//! let re = Regex::new("5\\..*").unwrap();
//! assert!(re.is_match("5.3_IRIX"));
//! assert!(!re.is_match("6.5"));
//! ```

mod ast;
mod compile;
mod error;
pub mod hints;
mod parser;
mod vm;

pub use error::RegexError;
pub use hints::{analyze, MatchHints, PrefixHint};

use compile::Program;

/// A compiled regular expression.
///
/// Construction validates and compiles the pattern once; matching is then
/// allocation-light and linear in the input.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

impl Regex {
    /// Parses and compiles `pattern`.
    ///
    /// Returns a [`RegexError`] describing the first syntax problem found.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let ast = parser::parse(pattern)?;
        let program = compile::compile(&ast);
        Ok(Regex { pattern: pattern.to_string(), program })
    }

    /// Returns the source pattern this regex was compiled from.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Returns `true` if the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        vm::search(&self.program, text).is_some()
    }

    /// Returns the byte range of the leftmost match, if any.
    ///
    /// The end is the *earliest* end among leftmost matches (the VM stops
    /// as soon as a match thread completes), which is sufficient for the
    /// boolean semantics the Collection needs.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        vm::search(&self.program, text)
    }

    /// Returns `true` if the pattern matches the *entire* `text`.
    pub fn is_full_match(&self, text: &str) -> bool {
        vm::search_anchored_full(&self.program, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literal_search_is_unanchored() {
        assert!(m("IRIX", "my IRIX box"));
        assert!(!m("IRIX", "linux"));
    }

    #[test]
    fn dot_matches_any_single_char() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a-c"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn star_matches_zero_or_more() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbbc"));
        assert!(!m("^ab*c$", "adc"));
    }

    #[test]
    fn plus_requires_one() {
        assert!(!m("^ab+c$", "ac"));
        assert!(m("ab+c", "abc"));
    }

    #[test]
    fn question_optional() {
        assert!(m("^colou?r$", "color"));
        assert!(m("^colou?r$", "colour"));
        assert!(!m("^colou?r$", "colouur"));
    }

    #[test]
    fn bounded_repeats() {
        assert!(m("^a{3}$", "aaa"));
        assert!(!m("^a{3}$", "aa"));
        assert!(m("^a{2,}$", "aaaa"));
        assert!(!m("^a{2,}$", "a"));
        assert!(m("^a{1,3}$", "aa"));
        assert!(!m("^a{1,3}$", "aaaa"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(cat|dog)$", "dog"));
        assert!(m("^(ab)+$", "ababab"));
        assert!(!m("^(ab)+$", "aba"));
    }

    #[test]
    fn character_classes() {
        assert!(m("^[a-c]+$", "abcba"));
        assert!(!m("^[a-c]+$", "abd"));
        assert!(m("^[^0-9]+$", "irix"));
        assert!(!m("^[^0-9]+$", "irix5"));
        assert!(m("^[-a]+$", "-a-")); // leading '-' is literal
        assert!(m("^[a-]+$", "a--")); // trailing '-' is literal
    }

    #[test]
    fn escapes() {
        assert!(m(r"^\d+$", "12345"));
        assert!(!m(r"^\d+$", "12a45"));
        assert!(m(r"^\w+$", "host_os9"));
        assert!(m(r"^\s$", " "));
        assert!(m(r"^\D+$", "abc"));
        assert!(m(r"^\W$", "-"));
        assert!(m(r"^\S+$", "xyz"));
        assert!(m(r"^5\.3$", "5.3"));
        assert!(!m(r"^5\.3$", "5x3"));
        assert!(m(r"^a\\b$", "a\\b"));
        assert!(m(r"^a\tb$", "a\tb"));
        assert!(m(r"^a\nb$", "a\nb"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^bcd", "abcdef"));
        assert!(m("def$", "abcdef"));
        assert!(!m("abc$", "abcdef"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }

    #[test]
    fn paper_query_example() {
        // From the paper: find hosts running IRIX 5.x.
        let os = Regex::new("IRIX").unwrap();
        let ver = Regex::new(r"5\..*").unwrap();
        assert!(os.is_match("IRIX"));
        assert!(ver.is_match("5.3"));
        assert!(!ver.is_match("6.5"));
    }

    #[test]
    fn find_reports_leftmost_range() {
        let re = Regex::new("b+").unwrap();
        assert_eq!(re.find("aabbbc"), Some((2, 3)));
        assert_eq!(re.find("nope"), None);
    }

    #[test]
    fn full_match_mode() {
        let re = Regex::new("ab+").unwrap();
        assert!(re.is_full_match("abbb"));
        assert!(!re.is_full_match("abbbc"));
        assert!(!re.is_full_match("xab"));
    }

    #[test]
    fn unicode_chars_are_single_units() {
        assert!(m("^.$", "é"));
        assert!(m("^héllo$", "héllo"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", ""));
        assert!(m("", "anything"));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("a)b").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("a{99999999}").is_err());
    }

    #[test]
    fn no_pathological_blowup() {
        // Classic backtracking killer: (a*)*b against aaaa...a
        let re = Regex::new("^(a*)*b$").unwrap();
        let text = "a".repeat(2000);
        assert!(!re.is_match(&text));
        let re2 = Regex::new("(a|aa)+$").unwrap();
        assert!(re2.is_match(&"a".repeat(500)));
    }

    #[test]
    fn nested_groups() {
        assert!(m("^((ab|cd)e)+$", "abecde"));
        assert!(!m("^((ab|cd)e)+$", "abecd"));
    }

    #[test]
    fn class_with_escape_inside() {
        assert!(m(r"^[\d-]+$", "12-34"));
        assert!(m(r"^[\]]$", "]"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn bounded_repeat_of_groups() {
        assert!(m("^(ab){2,3}$", "abab"));
        assert!(m("^(ab){2,3}$", "ababab"));
        assert!(!m("^(ab){2,3}$", "ab"));
        assert!(!m("^(ab){2,3}$", "abababab"));
    }

    #[test]
    fn alternation_with_empty_branch() {
        // `a|` has an empty right branch: matches everything.
        assert!(m("^(a|)$", ""));
        assert!(m("^(a|)$", "a"));
        assert!(!m("^(a|)$", "b"));
    }

    #[test]
    fn class_mixing_ranges_and_perl() {
        assert!(m(r"^[a-f\d]+$", "a1f9"));
        assert!(!m(r"^[a-f\d]+$", "g1"));
        assert!(m(r"^[\s,;]+$", " ,; "));
    }

    #[test]
    fn anchors_inside_alternation() {
        assert!(m("^foo|bar$", "foox"));
        assert!(m("^foo|bar$", "xbar"));
        assert!(!m("^foo|bar$", "xbarx"));
    }

    #[test]
    fn nested_quantifiers_linear_time() {
        let re = Regex::new("^(a+)+$").unwrap();
        let good = "a".repeat(3000);
        let mut bad = good.clone();
        bad.push('b');
        let t = std::time::Instant::now();
        assert!(re.is_match(&good));
        assert!(!re.is_match(&bad));
        assert!(t.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn leftmost_earliest_end_semantics() {
        // find() stops at the earliest end of the leftmost match.
        let re = Regex::new("ab*").unwrap();
        assert_eq!(re.find("xabbby"), Some((1, 2)));
        let re = Regex::new("a|ab").unwrap();
        assert_eq!(re.find("ab"), Some((0, 1)));
    }

    #[test]
    fn dollar_only_matches_at_end() {
        assert!(m("a$", "bba"));
        assert!(!m("a$", "ab"));
        assert!(m("^$|x", "x"));
    }

    #[test]
    fn escaped_metachars_in_hostnames() {
        // The shape of real Collection queries: version and host fields.
        assert!(m(r"^cypress\.cs\.virginia\.edu$", "cypress.cs.virginia.edu"));
        assert!(!m(r"^cypress\.cs\.virginia\.edu$", "cypressxcsxvirginiaxedu"));
        assert!(m(r"^sp2-node\d{2}$", "sp2-node07"));
        assert!(!m(r"^sp2-node\d{2}$", "sp2-node7"));
    }

    #[test]
    fn repeat_of_alternation_group() {
        assert!(m("^(a|bc){3}$", "abca"));
        assert!(m("^(a|bc){3}$", "bcbcbc"));
        assert!(!m("^(a|bc){3}$", "abcab"));
    }

    #[test]
    fn full_match_with_classes() {
        let re = Regex::new(r"[A-Z][a-z]+").unwrap();
        assert!(re.is_full_match("Legion"));
        assert!(!re.is_full_match("LegionRMS"));
        assert!(!re.is_full_match("legion"));
    }
}
