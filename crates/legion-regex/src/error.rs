//! Error type for pattern compilation.

use std::fmt;

/// A syntax or resource error found while parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset into the pattern where the error was detected.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl RegexError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        RegexError { position, message: message.into() }
    }
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex syntax error at offset {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}
