//! Index hints extracted from a parsed pattern.
//!
//! The Collection planner wants to answer `match(pattern, $attr)`
//! conjuncts from secondary indexes instead of running the VM over
//! every record. This module derives, from the pattern's AST, a set of
//! *necessary conditions* any matching text satisfies:
//!
//! * an **anchored literal prefix** — every match starts with it (and,
//!   when `entire`, equals it exactly),
//! * **required substrings** — literal runs the pattern forces into
//!   every match (the feed for a trigram index),
//! * a **leading character class** — when `^[...]` pins the first
//!   character to a set of ranges.
//!
//! Each hint is *superset-safe* by construction: a text failing the
//! hint can never match, so an index probe built from it may only
//! over-approximate. When the hints are additionally *sufficient* —
//! any text satisfying them matches — [`MatchHints::exact`] is set and
//! the query engine can skip re-running the regex on candidates
//! entirely. Exactness holds for the classic shapes (`^lit$`, `^lit`,
//! `^lit.*`, bare `lit`, `.*lit.*`) under this engine's unanchored
//! search semantics.

use crate::ast::{Ast, ClassItem, PerlClass};
use crate::parser;

/// An anchored literal prefix every matching text starts with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixHint {
    /// The literal.
    pub literal: String,
    /// True when the pattern matches *exactly* the literal (`^lit$`):
    /// the prefix probe degenerates to an equality probe.
    pub entire: bool,
}

/// Index-usable facts about a pattern. See the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchHints {
    /// Anchored literal prefix, if the pattern has one.
    pub prefix: Option<PrefixHint>,
    /// Literal substrings every matching text must contain (maximal
    /// mandatory literal runs, in pattern order; includes the prefix).
    pub required: Vec<String>,
    /// Inclusive character ranges the *first* character of every match
    /// must fall in (`^[A-Za-z]...`), when no literal prefix exists.
    pub first_ranges: Option<Vec<(char, char)>>,
    /// True when the hints are sufficient as well as necessary: a text
    /// satisfying the strongest hint (equality for `entire` prefixes,
    /// `starts_with` for plain prefixes, `contains` for a lone required
    /// substring) is guaranteed to match the pattern.
    pub exact: bool,
}

impl MatchHints {
    /// Whether the hints can narrow anything at all.
    pub fn is_useful(&self) -> bool {
        self.prefix.is_some() || !self.required.is_empty() || self.first_ranges.is_some()
    }
}

/// Analyzes `pattern`, returning its hints. `None` when the pattern
/// does not parse (the evaluator will reject it too) — callers treat
/// that as "no hints".
pub fn analyze(pattern: &str) -> Option<MatchHints> {
    let ast = parser::parse(pattern).ok()?;
    Some(analyze_ast(&ast))
}

/// As [`analyze`], over an already-parsed AST.
pub fn analyze_ast(ast: &Ast) -> MatchHints {
    let items = flatten(ast);
    // Alternation at the top level: a match may come from any arm, so
    // only facts common to every arm survive. Keeping it simple —
    // surrender (no hints) — mirrors the planner's previous behavior.
    if items.iter().any(|i| matches!(i, Ast::Alternate(_))) {
        return MatchHints::default();
    }

    let anchored = matches!(items.first(), Some(Ast::StartAnchor));
    let body = if anchored { &items[1..] } else { &items[..] };

    // A `^` or `$` in the middle of the body makes the remainder's
    // relationship to the text subtle (this engine treats them as real
    // anchors anywhere); required-substring collection stays sound, but
    // prefix/exactness reasoning does not. Detect them up front.
    let interior_anchor = body
        .iter()
        .enumerate()
        .any(|(i, item)| matches!(item, Ast::StartAnchor)
            || (matches!(item, Ast::EndAnchor) && i + 1 != body.len()));
    let end_anchored = matches!(body.last(), Some(Ast::EndAnchor));
    let body = if end_anchored { &body[..body.len() - 1] } else { body };

    // Walk the body collecting maximal mandatory literal runs.
    let mut required: Vec<String> = Vec::new();
    let mut run = String::new();
    for item in body {
        match item {
            Ast::Literal(c) => run.push(*c),
            _ => {
                if !run.is_empty() {
                    required.push(std::mem::take(&mut run));
                }
                match item {
                    // A repeat with min >= 1 forces its node's required
                    // substrings to appear (once); min == 0 forces
                    // nothing.
                    Ast::Repeat { node, min, .. } if *min >= 1 => {
                        required.extend(analyze_ast(node).required);
                    }
                    Ast::Group(inner) => {
                        required.extend(analyze_ast(inner).required);
                    }
                    _ => {}
                }
            }
        }
    }
    let trailing_run = !run.is_empty();
    if trailing_run {
        required.push(run);
    }

    let mut hints = MatchHints::default();

    // Leading literal run → anchored prefix.
    let leading: Option<&String> =
        if anchored && matches!(body.first(), Some(Ast::Literal(_))) { required.first() } else { None };
    if interior_anchor {
        // Keep only the substring facts; they hold regardless.
        hints.required = required;
        return hints;
    }
    if let Some(prefix) = leading {
        let only_item = required.len() == 1 && trailing_run
            // The single run is the whole body exactly when nothing else
            // non-empty follows it.
            && body.len() == prefix.chars().count();
        let entire = end_anchored && only_item;
        // `^lit` / `^lit<nullable...>`: any text starting with `lit`
        // matches. `^lit$`: any text equal to `lit` matches.
        let rest_nullable = rest_after_leading_run_nullable(body, prefix.chars().count());
        hints.exact = entire || (!end_anchored && rest_nullable);
        hints.prefix = Some(PrefixHint { literal: prefix.clone(), entire });
    } else if anchored {
        // `^[...]` — pin the first character's ranges.
        if let Some(Ast::Class { negated: false, items }) = body.first() {
            hints.first_ranges = class_ranges(items);
        }
    } else {
        // Unanchored: a lone mandatory literal run with an otherwise
        // nullable body means `contains` is sufficient (`lit`,
        // `.*lit.*`, `lit.*`, ...).
        hints.exact = !end_anchored && required.len() == 1 && {
            let lit = &required[0];
            body_is_run_plus_nullable(body, lit)
        };
    }
    hints.required = required;
    hints
}

/// Whether everything after the leading literal run of `body` can match
/// the empty string.
fn rest_after_leading_run_nullable(body: &[Ast], run_len: usize) -> bool {
    body[run_len..].iter().all(nullable)
}

/// Whether `body` is exactly one literal run (spelling `lit`) plus
/// nullable items around it.
fn body_is_run_plus_nullable(body: &[Ast], lit: &str) -> bool {
    let mut lit_chars = lit.chars().peekable();
    for item in body {
        match item {
            Ast::Literal(c) => {
                if lit_chars.peek() == Some(c) {
                    lit_chars.next();
                } else {
                    return false; // a second run exists
                }
            }
            other => {
                if !nullable(other) {
                    return false;
                }
            }
        }
    }
    lit_chars.next().is_none()
}

/// Whether `ast` can match the empty string.
fn nullable(ast: &Ast) -> bool {
    match ast {
        Ast::Empty | Ast::StartAnchor | Ast::EndAnchor => true,
        Ast::Literal(_) | Ast::AnyChar | Ast::Class { .. } | Ast::Perl(_) => false,
        Ast::Concat(items) => items.iter().all(nullable),
        Ast::Alternate(arms) => arms.iter().any(nullable),
        Ast::Repeat { node, min, .. } => *min == 0 || nullable(node),
        Ast::Group(inner) => nullable(inner),
    }
}

/// Expands a non-negated class into inclusive char ranges, refusing
/// shapes (negated perl shorthands) that are cheaper to leave to the VM.
fn class_ranges(items: &[ClassItem]) -> Option<Vec<(char, char)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            ClassItem::Char(c) => out.push((*c, *c)),
            ClassItem::Range(lo, hi) => out.push((*lo, *hi)),
            ClassItem::Perl(PerlClass::Digit) => out.push(('0', '9')),
            ClassItem::Perl(_) => return None,
        }
    }
    if out.is_empty() { None } else { Some(out) }
}

/// Flattens `ast` into a top-level concatenation sequence, unwrapping
/// groups of concats.
fn flatten(ast: &Ast) -> Vec<Ast> {
    match ast {
        Ast::Concat(items) => {
            let mut out = Vec::new();
            for item in items {
                match item {
                    Ast::Group(inner) if matches!(**inner, Ast::Concat(_) | Ast::Literal(_)) => {
                        out.extend(flatten(inner))
                    }
                    other => out.push(other.clone()),
                }
            }
            out
        }
        Ast::Group(inner) => flatten(inner),
        other => vec![other.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(pattern: &str) -> MatchHints {
        analyze(pattern).expect("pattern parses")
    }

    #[test]
    fn fully_anchored_literal_is_entire_and_exact() {
        let hints = h("^IRIX$");
        assert_eq!(
            hints.prefix,
            Some(PrefixHint { literal: "IRIX".into(), entire: true })
        );
        assert!(hints.exact);
        assert_eq!(hints.required, vec!["IRIX".to_string()]);
    }

    #[test]
    fn anchored_prefix_shapes_are_exact() {
        for pat in ["^IRIX", r"^5\.", "^IRIX.*", r"^5\..*", "^ab(x|y)?"] {
            let hints = h(pat);
            assert!(hints.prefix.is_some(), "{pat}");
            assert!(!hints.prefix.as_ref().unwrap().entire, "{pat}");
            assert!(hints.exact, "{pat} should be exact");
        }
        assert_eq!(h(r"^5\.").prefix.unwrap().literal, "5.");
    }

    #[test]
    fn anchored_prefix_with_real_tail_is_inexact() {
        for pat in ["^IRIX$x^", "^ab+c", "^ab.c", r"^v\d", "^ab[xy]"] {
            let hints = h(pat);
            assert!(!hints.exact, "{pat} must not be exact");
        }
        // ...but the prefix survives as a superset filter.
        assert_eq!(h("^ab.c").prefix.unwrap().literal, "ab");
        // And the tail's own literal runs are still required.
        assert_eq!(h("^ab.cd").required, vec!["ab".to_string(), "cd".to_string()]);
    }

    #[test]
    fn end_anchor_defeats_prefix_exactness_but_not_the_prefix() {
        let hints = h("^IRIX.*64$");
        assert_eq!(hints.prefix.as_ref().unwrap().literal, "IRIX");
        assert!(!hints.prefix.as_ref().unwrap().entire);
        assert!(!hints.exact);
        assert_eq!(hints.required, vec!["IRIX".to_string(), "64".to_string()]);
    }

    #[test]
    fn bare_literal_is_contains_exact() {
        for pat in ["IRIX", "IRIX.*", ".*IRIX.*", ".*nux"] {
            let hints = h(pat);
            assert!(hints.prefix.is_none(), "{pat}");
            assert_eq!(hints.required.len(), 1, "{pat}");
            assert!(hints.exact, "{pat} should be contains-exact");
        }
        assert_eq!(h(".*nux").required, vec!["nux".to_string()]);
    }

    #[test]
    fn two_runs_are_required_but_inexact() {
        let hints = h("ab.*cd");
        assert_eq!(hints.required, vec!["ab".to_string(), "cd".to_string()]);
        assert!(!hints.exact); // "cdab" contains both yet does not match
    }

    #[test]
    fn end_anchored_literal_is_inexact_contains() {
        let hints = h("nux$");
        assert_eq!(hints.required, vec!["nux".to_string()]);
        assert!(!hints.exact); // "nuxx" contains but does not match
    }

    #[test]
    fn alternation_yields_nothing() {
        assert_eq!(h("^ab|cd"), MatchHints::default());
        assert_eq!(h("cat|dog"), MatchHints::default());
        // Grouped alternation after a prefix keeps the prefix.
        let hints = h("^ab(c|d)");
        assert_eq!(hints.prefix.unwrap().literal, "ab");
        assert!(!hints.exact);
    }

    #[test]
    fn leading_class_pins_first_char() {
        let hints = h("^[A-Z]rix");
        assert_eq!(hints.first_ranges, Some(vec![('A', 'Z')]));
        assert!(!hints.exact);
        assert_eq!(hints.required, vec!["rix".to_string()]);

        let hints = h(r"^[a-c5\d]x");
        assert_eq!(
            hints.first_ranges,
            Some(vec![('a', 'c'), ('5', '5'), ('0', '9')])
        );
        // Negated classes and non-digit shorthands: no ranges.
        assert_eq!(h("^[^a-z]x").first_ranges, None);
        assert_eq!(h(r"^[\w]x").first_ranges, None);
    }

    #[test]
    fn repeats_contribute_required_substrings() {
        // `(ab)+` must contain "ab"; `(ab)*` need not.
        assert_eq!(h("(ab)+").required, vec!["ab".to_string()]);
        assert!(h("(ab)*").required.is_empty());
        assert_eq!(h("x(ab){2,}y").required,
                   vec!["x".to_string(), "ab".to_string(), "y".to_string()]);
    }

    #[test]
    fn optional_leading_literal_is_not_a_prefix() {
        let hints = h("^a?bc");
        assert!(hints.prefix.is_none());
        assert_eq!(hints.required, vec!["bc".to_string()]);
        assert!(!hints.exact);
    }

    #[test]
    fn unparseable_patterns_yield_none() {
        assert!(analyze("a(b").is_none());
        assert!(analyze("[z-a]").is_none() || analyze("[z-a]").is_some()); // parser's call
    }

    #[test]
    fn empty_pattern_has_no_hints() {
        let hints = h("");
        assert!(!hints.is_useful());
        assert!(!hints.exact);
    }

    /// Exhaustive cross-check: for a corpus of patterns and texts, a
    /// text failing the hints must not match (necessity), and when
    /// `exact` a text passing the strongest hint must match
    /// (sufficiency).
    #[test]
    fn hints_agree_with_the_vm() {
        let patterns = [
            "^IRIX$", "^IRIX", "^IRIX.*", r"^5\.", "IRIX", ".*RIX.*", "nux$",
            "^ab+c", "ab.*cd", "^[A-Z]rix", "^a?bc", "(ab)+", r"^v\d+$",
            "^IRIX.*64$", "x(ab){2}y",
        ];
        let texts = [
            "IRIX", "IRIX64", "my IRIX box", "5.3", "65.3", "Linux", "linux",
            "abc", "abbc", "ac", "cdab", "abxcd", "Zrix", "zrix", "bc", "xbc",
            "abab", "ab", "v12", "v", "IRIX_64", "xababy", "xaby", "",
        ];
        for pat in patterns {
            let re = crate::Regex::new(pat).unwrap();
            let hints = h(pat);
            for text in texts {
                let matched = re.is_match(text);
                if matched {
                    // Necessity: every hint holds.
                    if let Some(p) = &hints.prefix {
                        assert!(text.starts_with(&p.literal), "{pat} vs {text}");
                        if p.entire {
                            assert_eq!(text, p.literal, "{pat} vs {text}");
                        }
                    }
                    for req in &hints.required {
                        assert!(text.contains(req.as_str()), "{pat} vs {text}: missing {req}");
                    }
                    if let Some(ranges) = &hints.first_ranges {
                        let first = text.chars().next().expect("non-empty");
                        assert!(
                            ranges.iter().any(|(lo, hi)| (*lo..=*hi).contains(&first)),
                            "{pat} vs {text}"
                        );
                    }
                }
                if hints.exact {
                    // Sufficiency of the strongest hint.
                    let satisfied = match &hints.prefix {
                        Some(p) if p.entire => text == p.literal,
                        Some(p) => text.starts_with(&p.literal),
                        None => text.contains(hints.required[0].as_str()),
                    };
                    assert_eq!(satisfied, matched, "{pat} vs {text}: exactness violated");
                }
            }
        }
    }
}
