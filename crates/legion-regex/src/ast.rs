//! Abstract syntax tree for parsed patterns.

/// A single item a character class can contain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single literal character, e.g. `a` in `[abc]`.
    Char(char),
    /// An inclusive character range, e.g. `a-z`.
    Range(char, char),
    /// A perl-style shorthand (`\d`, `\w`, `\s`) embedded in the class.
    Perl(PerlClass),
}

/// Perl-style shorthand classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerlClass {
    /// `\d` — ASCII digits.
    Digit,
    /// `\D` — anything but ASCII digits.
    NotDigit,
    /// `\w` — word characters: alphanumerics plus `_`.
    Word,
    /// `\W` — non-word characters.
    NotWord,
    /// `\s` — ASCII whitespace.
    Space,
    /// `\S` — non-whitespace.
    NotSpace,
}

impl PerlClass {
    /// Tests whether `c` belongs to the shorthand class.
    pub fn matches(self, c: char) -> bool {
        match self {
            PerlClass::Digit => c.is_ascii_digit(),
            PerlClass::NotDigit => !c.is_ascii_digit(),
            PerlClass::Word => c.is_alphanumeric() || c == '_',
            PerlClass::NotWord => !(c.is_alphanumeric() || c == '_'),
            PerlClass::Space => c.is_whitespace(),
            PerlClass::NotSpace => !c.is_whitespace(),
        }
    }
}

/// A parsed pattern node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any single character.
    AnyChar,
    /// A (possibly negated) character class.
    Class {
        /// True for `[^...]`.
        negated: bool,
        /// The class contents.
        items: Vec<ClassItem>,
    },
    /// A bare perl shorthand outside a class (`\d` etc.).
    Perl(PerlClass),
    /// `^` — start-of-text anchor.
    StartAnchor,
    /// `$` — end-of-text anchor.
    EndAnchor,
    /// Concatenation of subexpressions.
    Concat(Vec<Ast>),
    /// Alternation (`|`) of subexpressions.
    Alternate(Vec<Ast>),
    /// Repetition of a subexpression.
    Repeat {
        /// The repeated node.
        node: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` means unbounded.
        max: Option<u32>,
    },
    /// A parenthesized group (grouping only; no capture semantics).
    Group(Box<Ast>),
}
