//! Recursive-descent parser from pattern text to [`Ast`].

use crate::ast::{Ast, ClassItem, PerlClass};
use crate::error::RegexError;

/// Upper bound on `{m,n}` counts, to keep compiled programs small.
const MAX_REPEAT: u32 = 1000;

/// Parses a whole pattern into an AST.
pub fn parse(pattern: &str) -> Result<Ast, RegexError> {
    let mut p = Parser { chars: pattern.char_indices().collect(), pos: 0 };
    let ast = p.parse_alternation()?;
    if let Some(&(off, c)) = p.peek_raw() {
        return Err(RegexError::new(off, format!("unexpected `{c}`")));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn peek_raw(&self) -> Option<&(usize, char)> {
        self.chars.get(self.pos)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars.get(self.pos).map(|&(o, _)| o).unwrap_or_else(|| {
            self.chars.last().map(|&(o, c)| o + c.len_utf8()).unwrap_or(0)
        })
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternation(&mut self) -> Result<Ast, RegexError> {
        let first = self.parse_concat()?;
        if self.peek() != Some('|') {
            return Ok(first);
        }
        let mut branches = vec![first];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        Ok(Ast::Alternate(branches))
    }

    /// concat := repeat*
    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("len checked"),
            _ => Ast::Concat(items),
        })
    }

    /// repeat := atom ('*' | '+' | '?' | '{m,n}')*
    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let start = self.offset();
        let mut node = self.parse_atom()?;
        loop {
            let (min, max) = match self.peek() {
                Some('*') => (0, None),
                Some('+') => (1, None),
                Some('?') => (0, Some(1)),
                Some('{') => {
                    self.bump();
                    let rep = self.parse_counted_repeat(start)?;
                    node = self.apply_repeat(node, rep.0, rep.1, start)?;
                    continue;
                }
                _ => break,
            };
            self.bump();
            node = self.apply_repeat(node, min, max, start)?;
        }
        Ok(node)
    }

    fn apply_repeat(
        &self,
        node: Ast,
        min: u32,
        max: Option<u32>,
        at: usize,
    ) -> Result<Ast, RegexError> {
        if matches!(node, Ast::StartAnchor | Ast::EndAnchor) {
            return Err(RegexError::new(at, "cannot repeat an anchor"));
        }
        Ok(Ast::Repeat { node: Box::new(node), min, max })
    }

    /// Parses the body of `{m}`, `{m,}` or `{m,n}` (the `{` is consumed).
    fn parse_counted_repeat(&mut self, at: usize) -> Result<(u32, Option<u32>), RegexError> {
        let min = self.parse_number(at)?;
        let max = if self.eat(',') {
            if self.peek() == Some('}') { None } else { Some(self.parse_number(at)?) }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err(RegexError::new(self.offset(), "expected `}` to close repetition"));
        }
        if let Some(max) = max {
            if max < min {
                return Err(RegexError::new(at, format!("invalid repetition {{{min},{max}}}")));
            }
        }
        Ok((min, max))
    }

    fn parse_number(&mut self, at: usize) -> Result<u32, RegexError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(RegexError::new(self.offset(), "expected a number in `{...}`"));
        }
        let n: u32 = digits
            .parse()
            .map_err(|_| RegexError::new(at, "repetition count out of range"))?;
        if n > MAX_REPEAT {
            return Err(RegexError::new(
                at,
                format!("repetition count {n} exceeds the limit of {MAX_REPEAT}"),
            ));
        }
        Ok(n)
    }

    /// atom := literal | '.' | '^' | '$' | escape | class | '(' alternation ')'
    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        let off = self.offset();
        match self.peek() {
            None => Err(RegexError::new(off, "unexpected end of pattern")),
            Some('(') => {
                self.bump();
                let inner = self.parse_alternation()?;
                if !self.eat(')') {
                    return Err(RegexError::new(self.offset(), "unclosed `(`"));
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            Some(')') => Err(RegexError::new(off, "unmatched `)`")),
            Some('[') => {
                self.bump();
                self.parse_class(off)
            }
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('\\') => {
                self.bump();
                self.parse_escape(off).map(|e| match e {
                    Escaped::Char(c) => Ast::Literal(c),
                    Escaped::Perl(p) => Ast::Perl(p),
                })
            }
            Some(c @ ('*' | '+' | '?')) => {
                Err(RegexError::new(off, format!("`{c}` has nothing to repeat")))
            }
            Some('{') => {
                // A `{` that does not open a valid repetition is treated as
                // a literal, matching common regexp() behaviour.
                self.bump();
                Ok(Ast::Literal('{'))
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
        }
    }

    /// Parses `[...]` after the opening bracket.
    fn parse_class(&mut self, open: usize) -> Result<Ast, RegexError> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        // A `]` immediately after `[` or `[^` is a literal.
        if self.peek() == Some(']') {
            self.bump();
            items.push(ClassItem::Char(']'));
        }
        loop {
            match self.peek() {
                None => return Err(RegexError::new(open, "unclosed `[`")),
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    let off = self.offset();
                    match self.parse_escape(off)? {
                        Escaped::Char(c) => self.push_class_char(&mut items, c, open)?,
                        Escaped::Perl(p) => items.push(ClassItem::Perl(p)),
                    }
                }
                Some(c) => {
                    self.bump();
                    self.push_class_char(&mut items, c, open)?;
                }
            }
        }
        Ok(Ast::Class { negated, items })
    }

    /// Adds `c` to the class, forming a range if a `-` follows.
    fn push_class_char(
        &mut self,
        items: &mut Vec<ClassItem>,
        c: char,
        open: usize,
    ) -> Result<(), RegexError> {
        if self.peek() == Some('-') {
            // Look one past the '-': a ']' makes the '-' literal.
            match self.chars.get(self.pos + 1).map(|&(_, c)| c) {
                Some(']') | None => {
                    items.push(ClassItem::Char(c));
                }
                Some('\\') => {
                    self.bump(); // consume '-'
                    self.bump(); // consume '\\'
                    let off = self.offset();
                    match self.parse_escape(off)? {
                        Escaped::Char(hi) => {
                            if hi < c {
                                return Err(RegexError::new(open, "invalid class range"));
                            }
                            items.push(ClassItem::Range(c, hi));
                        }
                        Escaped::Perl(_) => {
                            return Err(RegexError::new(
                                off,
                                "perl class cannot end a range",
                            ));
                        }
                    }
                }
                Some(hi) => {
                    self.bump(); // consume '-'
                    self.bump(); // consume hi
                    if hi < c {
                        return Err(RegexError::new(open, "invalid class range"));
                    }
                    items.push(ClassItem::Range(c, hi));
                }
            }
        } else {
            items.push(ClassItem::Char(c));
        }
        Ok(())
    }

    /// Parses the character after a `\`.
    fn parse_escape(&mut self, at: usize) -> Result<Escaped, RegexError> {
        let c = self
            .bump()
            .ok_or_else(|| RegexError::new(at, "dangling `\\` at end of pattern"))?;
        Ok(match c {
            'd' => Escaped::Perl(PerlClass::Digit),
            'D' => Escaped::Perl(PerlClass::NotDigit),
            'w' => Escaped::Perl(PerlClass::Word),
            'W' => Escaped::Perl(PerlClass::NotWord),
            's' => Escaped::Perl(PerlClass::Space),
            'S' => Escaped::Perl(PerlClass::NotSpace),
            'n' => Escaped::Char('\n'),
            't' => Escaped::Char('\t'),
            'r' => Escaped::Char('\r'),
            '0' => Escaped::Char('\0'),
            c if c.is_ascii_alphanumeric() => {
                return Err(RegexError::new(at, format!("unknown escape `\\{c}`")));
            }
            c => Escaped::Char(c),
        })
    }
}

enum Escaped {
    Char(char),
    Perl(PerlClass),
}
