//! Pike-style NFA virtual machine.
//!
//! Runs a compiled [`Program`] over the input in a single left-to-right
//! pass, maintaining the set of live NFA threads. Time is
//! `O(insts * chars)`; there is no backtracking.

use crate::compile::{Inst, Program};

/// A thread list for one step of the simulation, with O(1) dedup.
struct ThreadList {
    /// Program counters of live threads, in priority order.
    threads: Vec<Thread>,
    /// `seen[pc] == gen` marks pc as already present this step.
    seen: Vec<u64>,
    gen: u64,
}

#[derive(Copy, Clone)]
struct Thread {
    pc: usize,
    /// Char index where this thread's match attempt began.
    start: usize,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList { threads: Vec::with_capacity(n), seen: vec![0; n], gen: 0 }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.gen += 1;
    }

    /// Adds `pc`, following epsilon transitions.
    ///
    /// If a `Match` instruction is reached during closure, records the
    /// thread's start position in `matched` (first writer wins, which is
    /// the highest-priority thread because threads are added in priority
    /// order). Exploration continues so sibling branches are not lost.
    fn add(
        &mut self,
        prog: &Program,
        pc: usize,
        start: usize,
        pos: usize,
        len: usize,
        matched: &mut Option<usize>,
    ) {
        if self.seen[pc] == self.gen {
            return;
        }
        self.seen[pc] = self.gen;
        match prog.insts[pc] {
            Inst::Jmp(t) => self.add(prog, t, start, pos, len, matched),
            Inst::Split(a, b) => {
                self.add(prog, a, start, pos, len, matched);
                self.add(prog, b, start, pos, len, matched);
            }
            Inst::StartAnchor => {
                if pos == 0 {
                    self.add(prog, pc + 1, start, pos, len, matched);
                }
            }
            Inst::EndAnchor => {
                if pos == len {
                    self.add(prog, pc + 1, start, pos, len, matched);
                }
            }
            Inst::Match => {
                if matched.is_none() {
                    *matched = Some(start);
                }
            }
            _ => {
                self.threads.push(Thread { pc, start });
            }
        }
    }
}

/// Unanchored leftmost search. Returns the byte range of the match.
pub fn search(prog: &Program, text: &str) -> Option<(usize, usize)> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let len = chars.len();
    let byte_at = |char_pos: usize| -> usize {
        if char_pos == len {
            text.len()
        } else {
            chars[char_pos].0
        }
    };

    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    clist.clear();

    // Inject the initial thread; a Match during injection means the empty
    // pattern (or pure-anchor pattern) matches at position 0.
    let mut matched = None;
    clist.add(prog, 0, 0, 0, len, &mut matched);
    if let Some(start) = matched {
        return Some((byte_at(start), byte_at(0)));
    }

    #[allow(clippy::needless_range_loop)] // pos is a position, not just an index
    for pos in 0..len {
        let c = chars[pos].1;
        nlist.clear();
        let mut matched = None;
        for i in 0..clist.threads.len() {
            let th = clist.threads[i];
            if prog.insts[th.pc].accepts(c) {
                nlist.add(prog, th.pc + 1, th.start, pos + 1, len, &mut matched);
            }
            if matched.is_some() {
                break; // highest-priority (leftmost) match; earliest end
            }
        }
        if let Some(start) = matched {
            return Some((byte_at(start), byte_at(pos + 1)));
        }
        std::mem::swap(&mut clist, &mut nlist);
        // Unanchored: also try starting a fresh attempt at pos+1, at lower
        // priority than already-running threads (leftmost wins).
        let mut matched = None;
        clist.add(prog, 0, pos + 1, pos + 1, len, &mut matched);
        if let Some(start) = matched {
            return Some((byte_at(start), byte_at(pos + 1)));
        }
    }
    None
}

/// Anchored full match: the program must consume the entire text.
pub fn search_anchored_full(prog: &Program, text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    let len = chars.len();
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    clist.clear();

    let mut matched = None;
    clist.add(prog, 0, 0, 0, len, &mut matched);
    if len == 0 {
        return matched.is_some();
    }

    for (pos, &c) in chars.iter().enumerate() {
        nlist.clear();
        let mut matched = None;
        for i in 0..clist.threads.len() {
            let th = clist.threads[i];
            if prog.insts[th.pc].accepts(c) {
                nlist.add(prog, th.pc + 1, th.start, pos + 1, len, &mut matched);
            }
        }
        if pos + 1 == len {
            return matched.is_some();
        }
        std::mem::swap(&mut clist, &mut nlist);
        if clist.threads.is_empty() {
            return false;
        }
    }
    false
}
