//! AST → NFA program compiler.
//!
//! The program is a flat instruction list in the style of Thompson's
//! construction as used by Pike VMs: `Split` and `Jmp` wire up the control
//! flow, consuming instructions test one input character, and `Match`
//! terminates a successful thread.

use crate::ast::{Ast, ClassItem, PerlClass};

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Consume one character equal to the payload.
    Char(char),
    /// Consume any one character.
    Any,
    /// Consume one character accepted by the class.
    Class {
        /// True for `[^...]`.
        negated: bool,
        /// Class membership items.
        items: Vec<ClassItem>,
    },
    /// Consume one character accepted by a perl shorthand.
    Perl(PerlClass),
    /// Succeed only at the start of the text (consumes nothing).
    StartAnchor,
    /// Succeed only at the end of the text (consumes nothing).
    EndAnchor,
    /// Continue at both targets (preference order: first then second).
    Split(usize, usize),
    /// Continue at the target.
    Jmp(usize),
    /// The whole pattern matched.
    Match,
}

impl Inst {
    /// Whether this instruction accepts input character `c`.
    pub fn accepts(&self, c: char) -> bool {
        match self {
            Inst::Char(want) => *want == c,
            Inst::Any => true,
            Inst::Perl(p) => p.matches(c),
            Inst::Class { negated, items } => {
                let mut hit = false;
                for item in items {
                    let ok = match item {
                        ClassItem::Char(x) => *x == c,
                        ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
                        ClassItem::Perl(p) => p.matches(c),
                    };
                    if ok {
                        hit = true;
                        break;
                    }
                }
                hit != *negated
            }
            _ => false,
        }
    }
}

/// A compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Flat instruction list; entry point is index 0.
    pub insts: Vec<Inst>,
}

/// Compiles a parsed AST into an NFA program ending in [`Inst::Match`].
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler { insts: Vec::new() };
    c.emit_ast(ast);
    c.insts.push(Inst::Match);
    Program { insts: c.insts }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn next(&self) -> usize {
        self.insts.len()
    }

    fn emit(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn emit_ast(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                self.emit(Inst::Char(*c));
            }
            Ast::AnyChar => {
                self.emit(Inst::Any);
            }
            Ast::Perl(p) => {
                self.emit(Inst::Perl(*p));
            }
            Ast::Class { negated, items } => {
                self.emit(Inst::Class { negated: *negated, items: items.clone() });
            }
            Ast::StartAnchor => {
                self.emit(Inst::StartAnchor);
            }
            Ast::EndAnchor => {
                self.emit(Inst::EndAnchor);
            }
            Ast::Group(inner) => self.emit_ast(inner),
            Ast::Concat(items) => {
                for item in items {
                    self.emit_ast(item);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        debug_assert!(!branches.is_empty());
        if branches.len() == 1 {
            self.emit_ast(&branches[0]);
            return;
        }
        // For branches b1..bn emit:
        //   split L1, Lnext ; L1: b1 ; jmp END ; Lnext: ...
        let mut jmp_ends = Vec::with_capacity(branches.len() - 1);
        let mut pending_split: Option<usize> = None;
        for (i, branch) in branches.iter().enumerate() {
            let last = i + 1 == branches.len();
            if let Some(split) = pending_split.take() {
                let here = self.next();
                if let Inst::Split(_, ref mut second) = self.insts[split] {
                    *second = here;
                }
            }
            if !last {
                let split = self.emit(Inst::Split(0, 0));
                let body = self.next();
                if let Inst::Split(ref mut first, _) = self.insts[split] {
                    *first = body;
                }
                pending_split = Some(split);
                self.emit_ast(branch);
                jmp_ends.push(self.emit(Inst::Jmp(0)));
            } else {
                self.emit_ast(branch);
            }
        }
        let end = self.next();
        for j in jmp_ends {
            if let Inst::Jmp(ref mut t) = self.insts[j] {
                *t = end;
            }
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) {
        // Mandatory prefix: `min` copies.
        for _ in 0..min {
            self.emit_ast(node);
        }
        match max {
            None => {
                if min == 0 {
                    // `e*`:  L: split B, END ; B: e ; jmp L ; END:
                    let l = self.emit(Inst::Split(0, 0));
                    let body = self.next();
                    self.emit_ast(node);
                    self.emit(Inst::Jmp(l));
                    let end = self.next();
                    if let Inst::Split(ref mut a, ref mut b) = self.insts[l] {
                        *a = body;
                        *b = end;
                    }
                } else {
                    // `e{min,}`: the last mandatory copy loops:
                    //   split BACK, END — emitted as e ; split RESTART, END
                    // Simpler: emit one `e*` after the prefix.
                    self.emit_repeat(node, 0, None);
                }
            }
            Some(max) => {
                // Optional suffix: (max - min) copies of `e?`.
                let optional = max.saturating_sub(min);
                let mut splits = Vec::with_capacity(optional as usize);
                for _ in 0..optional {
                    let s = self.emit(Inst::Split(0, 0));
                    let body = self.next();
                    if let Inst::Split(ref mut a, _) = self.insts[s] {
                        *a = body;
                    }
                    splits.push(s);
                    self.emit_ast(node);
                }
                let end = self.next();
                for s in splits {
                    if let Inst::Split(_, ref mut b) = self.insts[s] {
                        *b = end;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compiles_literal_chain() {
        let p = compile(&parse("abc").unwrap());
        assert_eq!(
            p.insts,
            vec![Inst::Char('a'), Inst::Char('b'), Inst::Char('c'), Inst::Match]
        );
    }

    #[test]
    fn star_forms_a_loop() {
        let p = compile(&parse("a*").unwrap());
        // split 1,3 ; char a ; jmp 0 ; match
        assert_eq!(p.insts.len(), 4);
        assert!(matches!(p.insts[0], Inst::Split(1, 3)));
        assert!(matches!(p.insts[2], Inst::Jmp(0)));
    }

    #[test]
    fn bounded_repeat_expands() {
        let p = compile(&parse("a{2,4}").unwrap());
        let chars = p.insts.iter().filter(|i| matches!(i, Inst::Char('a'))).count();
        assert_eq!(chars, 4);
        let splits = p.insts.iter().filter(|i| matches!(i, Inst::Split(_, _))).count();
        assert_eq!(splits, 2);
    }
}
