//! Property-based tests for the regex engine.

use legion_regex::Regex;
use proptest::prelude::*;

/// Escapes every metacharacter so `s` is matched literally.
fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\.^$*+?()[]{}|".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    /// A literal pattern matches exactly the strings that contain it.
    #[test]
    fn literal_matches_substring(hay in "[a-zA-Z0-9 .*+?()\\[\\]{}|^$\\\\-]{0,40}",
                                 needle in "[a-zA-Z0-9 .*+?-]{0,8}") {
        let re = Regex::new(&escape_literal(&needle)).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    /// `^lit$` is string equality for literals.
    #[test]
    fn anchored_literal_is_equality(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let re = Regex::new(&format!("^{}$", escape_literal(&a))).unwrap();
        prop_assert_eq!(re.is_match(&b), a == b);
    }

    /// `is_full_match` agrees with an explicitly anchored pattern.
    #[test]
    fn full_match_agrees_with_anchors(pat in "[a-c]{1,4}", text in "[a-c]{0,6}") {
        let plain = Regex::new(&pat).unwrap();
        let anchored = Regex::new(&format!("^({})$", pat)).unwrap();
        prop_assert_eq!(plain.is_full_match(&text), anchored.is_match(&text));
    }

    /// Compiling arbitrary garbage either errors cleanly or produces a
    /// regex whose matcher never panics.
    #[test]
    fn never_panics(pat in "\\PC{0,20}", text in "\\PC{0,40}") {
        if let Ok(re) = Regex::new(&pat) {
            let _ = re.is_match(&text);
            let _ = re.find(&text);
            let _ = re.is_full_match(&text);
        }
    }

    /// `find` returns a range where the needle actually occurs (literals).
    #[test]
    fn find_range_is_correct(hay in "[a-d]{0,30}", needle in "[a-d]{1,4}") {
        let re = Regex::new(&escape_literal(&needle)).unwrap();
        match re.find(&hay) {
            Some((s, e)) => {
                prop_assert_eq!(&hay[s..e], needle.as_str());
                // Leftmost: no earlier occurrence.
                prop_assert_eq!(hay.find(&needle), Some(s));
            }
            None => prop_assert!(!hay.contains(&needle)),
        }
    }

    /// Kleene star on a class matches exactly strings over that class.
    #[test]
    fn star_class_language(text in "[a-f]{0,20}") {
        let re = Regex::new("^[a-c]*$").unwrap();
        let expect = text.chars().all(|c| ('a'..='c').contains(&c));
        prop_assert_eq!(re.is_match(&text), expect);
    }

    /// Bounded repetition counts characters exactly.
    #[test]
    fn bounded_repeat_counts(n in 0usize..12) {
        let re = Regex::new("^a{3,5}$").unwrap();
        let text = "a".repeat(n);
        prop_assert_eq!(re.is_match(&text), (3..=5).contains(&n));
    }
}
