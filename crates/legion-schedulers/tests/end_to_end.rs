//! Scheduler integration tests over the full RMI pipeline:
//! Hosts → Collection (pull daemon) → Scheduler → Enactor → Classes.

use legion_collection::{Collection, DataCollectionDaemon};
use legion_core::host::well_known;
use legion_core::{
    ClassObject, HostObject, LegionClass, Loid, ObjectImplementation, PlacementContext,
    PlacementRequest, SimDuration,
};
use legion_fabric::{DomainId, DomainTopology, Fabric};
use legion_hosts::{BackgroundLoad, HostConfig, StandardHost};
use legion_schedule::Enactor;
use legion_schedulers::{
    place_layered, GridSpec, IrsScheduler, KOfNScheduler, LayeringScheme, LoadAwareScheduler,
    RandomScheduler, RoundRobinScheduler, SchedCtx, ScheduleDriver, Scheduler, StencilScheduler,
};
use legion_vaults::{StandardVault, VaultConfig};
use std::sync::Arc;

struct World {
    fabric: Arc<Fabric>,
    ctx: SchedCtx,
    hosts: Vec<Arc<StandardHost>>,
    class: Loid,
}

/// `per_domain` hosts in each of `domains` domains, one open vault per
/// domain, a populated Collection, and a registered worker class.
fn world(domains: usize, per_domain: usize, seed: u64) -> World {
    let fabric = Fabric::new(
        DomainTopology::uniform(
            domains,
            SimDuration::from_micros(50),
            SimDuration::from_millis(30),
        ),
        seed,
    );
    for d in 0..domains {
        fabric.with_topology(|t| t.set_name(DomainId(d as u16), format!("site{d}.edu")));
    }

    let mut hosts = Vec::new();
    for d in 0..domains {
        let vault = Arc::new(StandardVault::new(VaultConfig {
            name: format!("vault-{d}"),
            domain: format!("site{d}.edu"),
            ..Default::default()
        }));
        fabric.register_vault(vault, DomainId(d as u16));
        for i in 0..per_domain {
            let h = StandardHost::new(
                HostConfig::unix(format!("h{d}-{i}"), format!("site{d}.edu")),
                fabric.clone(),
                seed + (d * per_domain + i) as u64,
            );
            h.set_metrics(Arc::clone(fabric.metrics()));
            fabric.register_host(Arc::clone(&h) as Arc<dyn HostObject>, DomainId(d as u16));
            hosts.push(h);
        }
    }

    // A timeshared worker: a quarter CPU each, so several instances can
    // share a host under shared reservations.
    let class = Arc::new(
        LegionClass::new("worker", vec![ObjectImplementation::new("mips", "IRIX")])
            .with_demand(25, 64),
    );
    let class_loid = class.loid();
    fabric.register_class(class);

    // Populate the Collection via the pull daemon.
    let collection = Collection::new(seed ^ 0xC0FFEE);
    collection.set_metrics(Arc::clone(fabric.metrics()));
    let daemon = DataCollectionDaemon::new(Arc::clone(&collection));
    for h in &hosts {
        daemon.track_host(Arc::clone(h) as Arc<dyn HostObject>);
    }
    daemon.pull_once(fabric.clock().now());

    let ctx = SchedCtx::new(Arc::clone(&fabric), collection);
    World { fabric, ctx, hosts, class: class_loid }
}

#[test]
fn random_scheduler_places_through_pipeline() {
    let w = world(2, 4, 11);
    let scheduler = RandomScheduler::new(1);
    let enactor = Enactor::new(w.fabric.clone());
    let driver = ScheduleDriver::new(Arc::new(scheduler), Arc::new(enactor));
    let report = driver
        .place(&PlacementRequest::new().class(w.class, 6), &w.ctx)
        .unwrap();
    assert_eq!(report.placed.len(), 6);
    // Objects actually run somewhere.
    let running: usize = w.hosts.iter().map(|h| h.running_objects().len()).sum();
    assert_eq!(running, 6);
}

#[test]
fn random_respects_request_constraints() {
    let w = world(1, 6, 13);
    // Constrain to hosts with at least 1 GB — none qualify (unix default
    // is 512 MB), so scheduling must fail cleanly.
    let scheduler = RandomScheduler::new(2);
    let req = PlacementRequest::new().class_where(w.class, 2, "$host_memory_mb >= 1024");
    assert!(scheduler.compute_schedule(&req, &w.ctx).is_err());
    // With a satisfiable constraint it succeeds.
    let req = PlacementRequest::new().class_where(w.class, 2, "$host_memory_mb >= 256");
    let sched = scheduler.compute_schedule(&req, &w.ctx).unwrap();
    assert_eq!(sched.schedules[0].master.len(), 2);
}

#[test]
fn irs_emits_variants_and_survives_contention() {
    let w = world(1, 4, 17);
    // Saturate three of four hosts with exclusive reservations so most
    // random picks fail.
    let enactor = Enactor::new(w.fabric.clone());
    for h in &w.hosts[..3] {
        let vault = h.get_compatible_vaults()[0];
        let req = legion_core::ReservationRequest::instantaneous(
            w.class,
            vault,
            SimDuration::from_secs(10_000),
        )
        .with_type(legion_core::ReservationType::REUSABLE_SPACE);
        h.make_reservation(&req, w.fabric.clock().now()).unwrap();
    }

    let irs = IrsScheduler::new(3, 8);
    let sched = irs
        .compute_schedule(&PlacementRequest::new().class(w.class, 1), &w.ctx)
        .unwrap();
    assert_eq!(sched.schedules.len(), 1, "IRS folds into one master + variants");
    // With NSched = 8 over 4 hosts, variants are near-certain.
    assert!(
        !sched.schedules[0].variants.is_empty(),
        "IRS should generate variant schedules"
    );

    let driver = ScheduleDriver::new(Arc::new(irs), Arc::new(enactor));
    let report = driver
        .place(&PlacementRequest::new().class(w.class, 1), &w.ctx)
        .unwrap();
    assert_eq!(report.placed.len(), 1);
    // The instance landed on the one unsaturated host.
    assert_eq!(w.hosts[3].running_objects().len(), 1);
}

#[test]
fn round_robin_spreads_instances() {
    let w = world(1, 4, 19);
    let rr = RoundRobinScheduler::new();
    let sched = rr
        .compute_schedule(&PlacementRequest::new().class(w.class, 8), &w.ctx)
        .unwrap();
    let mut counts = std::collections::BTreeMap::new();
    for m in &sched.schedules[0].master.mappings {
        *counts.entry(m.host).or_insert(0) += 1;
    }
    assert_eq!(counts.len(), 4, "all hosts used");
    assert!(counts.values().all(|&c| c == 2), "perfectly even spread");
}

#[test]
fn load_aware_prefers_idle_hosts() {
    let w = world(1, 4, 23);
    // Give hosts 0..2 heavy background load; host 3 stays idle.
    for (i, h) in w.hosts.iter().enumerate() {
        let load = if i == 3 { 0.05 } else { 2.0 + i as f64 };
        h.set_background_load(BackgroundLoad::steady(load));
        h.reassess(w.fabric.clock().now());
    }
    // Refresh the Collection so the scheduler sees the new loads.
    let daemon = DataCollectionDaemon::new(Arc::clone(&w.ctx.collection));
    for h in &w.hosts {
        daemon.track_host(Arc::clone(h) as Arc<dyn HostObject>);
    }
    daemon.pull_once(w.fabric.clock().now());

    let la = LoadAwareScheduler::new();
    let sched = la
        .compute_schedule(&PlacementRequest::new().class(w.class, 1), &w.ctx)
        .unwrap();
    assert_eq!(
        sched.schedules[0].master.mappings[0].host,
        w.hosts[3].loid(),
        "least-loaded host must take the instance"
    );
    // Variants point at next-best hosts, not the chosen one.
    assert!(!sched.schedules[0].variants.is_empty());
}

#[test]
fn stencil_keeps_neighbours_in_domain() {
    let w = world(2, 8, 29);
    let grid = GridSpec::new(4, 4);
    let st = StencilScheduler::new(grid);
    let sched = st
        .compute_schedule(&PlacementRequest::new().class(w.class, 16), &w.ctx)
        .unwrap();
    let mappings = &sched.schedules[0].master.mappings;
    assert_eq!(mappings.len(), 16);

    // Compare predicted communication cost against the random scheduler.
    let domain_of = |ms: &[legion_schedule::Mapping]| -> Vec<String> {
        ms.iter()
            .map(|m| {
                let h = w.fabric.lookup_host(m.host).unwrap();
                h.attributes().get_str(well_known::DOMAIN).unwrap().to_string()
            })
            .collect()
    };
    let stencil_cost =
        legion_schedulers::stencil::comm_cost(&domain_of(mappings), grid, 50, 30_000);

    let rnd = RandomScheduler::new(5);
    let rnd_sched = rnd
        .compute_schedule(&PlacementRequest::new().class(w.class, 16), &w.ctx)
        .unwrap();
    let random_cost = legion_schedulers::stencil::comm_cost(
        &domain_of(&rnd_sched.schedules[0].master.mappings),
        grid,
        50,
        30_000,
    );
    assert!(
        stencil_cost < random_cost,
        "stencil placement ({stencil_cost}) must beat random ({random_cost})"
    );
}

#[test]
fn stencil_validates_count() {
    let w = world(1, 4, 31);
    let st = StencilScheduler::new(GridSpec::new(3, 3));
    assert!(st
        .compute_schedule(&PlacementRequest::new().class(w.class, 5), &w.ctx)
        .is_err());
}

#[test]
fn k_of_n_uses_spares_on_failure() {
    let w = world(1, 6, 37);
    // Make two of the six hosts unreservable (full-machine hold).
    for h in &w.hosts[..2] {
        let vault = h.get_compatible_vaults()[0];
        let req = legion_core::ReservationRequest::instantaneous(
            w.class,
            vault,
            SimDuration::from_secs(10_000),
        )
        .with_type(legion_core::ReservationType::REUSABLE_SPACE);
        h.make_reservation(&req, w.fabric.clock().now()).unwrap();
    }
    let kofn = KOfNScheduler::new();
    let sched = kofn
        .compute_schedule(&PlacementRequest::new().class(w.class, 3), &w.ctx)
        .unwrap();
    assert_eq!(sched.schedules[0].master.len(), 3);
    assert_eq!(sched.schedules[0].variants.len(), 3, "n−k = 3 spares");

    let enactor = Enactor::new(w.fabric.clone());
    let fb = enactor.make_reservations(&sched);
    assert!(fb.reserved(), "spares must rescue the blocked positions");
    let placed = enactor.enact_schedule(&fb).unwrap();
    assert_eq!(placed.len(), 3);
    // Neither blocked host runs anything.
    assert_eq!(w.hosts[0].running_objects().len(), 0);
    assert_eq!(w.hosts[1].running_objects().len(), 0);
}

#[test]
fn k_of_n_needs_enough_members() {
    let w = world(1, 2, 41);
    let kofn = KOfNScheduler::new();
    assert!(kofn
        .compute_schedule(&PlacementRequest::new().class(w.class, 3), &w.ctx)
        .is_err());
}

#[test]
fn all_four_layerings_place_objects() {
    for scheme in LayeringScheme::ALL {
        let w = world(1, 4, 43);
        let enactor = Arc::new(Enactor::new(w.fabric.clone()));
        let placed = place_layered(scheme, &w.ctx, &enactor, w.class, 3, 9)
            .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()));
        assert_eq!(placed.len(), 3, "{}", scheme.label());
        let running: usize = w.hosts.iter().map(|h| h.running_objects().len()).sum();
        assert_eq!(running, 3, "{}", scheme.label());
    }
}

#[test]
fn irs_does_fewer_collection_lookups_than_repeated_random() {
    // IRS's stated advantage: one Collection query per class per
    // generation, versus one per schedule for repeated Random calls.
    let w = world(1, 8, 47);
    let n = 8;

    let before = w.fabric.metrics().snapshot();
    let irs = IrsScheduler::new(1, n);
    irs.compute_schedule(&PlacementRequest::new().class(w.class, 4), &w.ctx)
        .unwrap();
    let irs_queries = w.fabric.metrics().snapshot().delta(&before).collection_queries;

    let before = w.fabric.metrics().snapshot();
    let rnd = RandomScheduler::new(1);
    for _ in 0..n {
        rnd.compute_schedule(&PlacementRequest::new().class(w.class, 4), &w.ctx)
            .unwrap();
    }
    let rnd_queries = w.fabric.metrics().snapshot().delta(&before).collection_queries;

    assert_eq!(irs_queries, 1);
    assert_eq!(rnd_queries, n as u64);
}

#[test]
fn price_aware_prefers_cheap_hosts() {
    use legion_schedulers::PriceAwareScheduler;
    let w = world(1, 6, 53);
    // Assign prices by reconfiguring would need new hosts; instead push
    // price attributes straight into the Collection records (the
    // scheduler reads the Collection, not the hosts).
    let prices = [90i64, 10, 50, 70, 30, 60];
    for (h, &p) in w.hosts.iter().zip(&prices) {
        let cred = w.ctx.collection.join_with(
            h.loid(),
            {
                let mut a = h.attributes();
                a.set(well_known::PRICE_PER_CPU_SEC, p);
                a
            },
            w.fabric.clock().now(),
        );
        let _ = cred;
    }
    let s = PriceAwareScheduler::new();
    let sched = s
        .compute_schedule(&PlacementRequest::new().class(w.class, 2), &w.ctx)
        .unwrap();
    let picked: Vec<_> = sched.schedules[0].master.mappings.iter().map(|m| m.host).collect();
    // Cheapest two are hosts[1] (10) and hosts[4] (30).
    assert!(picked.contains(&w.hosts[1].loid()));
    assert!(picked.contains(&w.hosts[4].loid()));
    // Variants offer the next-cheapest spares.
    assert!(!sched.schedules[0].variants.is_empty());
}

#[test]
fn forecasting_scheduler_falls_back_without_injection() {
    // With no forecast attribute injected, the forecasting scheduler
    // behaves exactly like the snapshot scheduler.
    let w = world(1, 4, 59);
    let snapshot = LoadAwareScheduler::new();
    let forecasting = LoadAwareScheduler::forecasting();
    let a = snapshot
        .compute_schedule(&PlacementRequest::new().class(w.class, 2), &w.ctx)
        .unwrap();
    let b = forecasting
        .compute_schedule(&PlacementRequest::new().class(w.class, 2), &w.ctx)
        .unwrap();
    assert_eq!(a.schedules[0].master, b.schedules[0].master);
}
