//! Driver (Fig. 9 wrapper) limit semantics and IRS variant styles.

use legion_collection::{Collection, DataCollectionDaemon};
use legion_core::{
    HostObject, LegionClass, Loid, ObjectImplementation, PlacementRequest, ReservationRequest,
    ReservationType, SimDuration,
};
use legion_fabric::{DomainId, DomainTopology, Fabric};
use legion_hosts::{HostConfig, StandardHost};
use legion_schedule::Enactor;
use legion_schedulers::driver::DriverLimits;
use legion_schedulers::{IrsScheduler, RandomScheduler, SchedCtx, ScheduleDriver, Scheduler};
use std::sync::Arc;

fn bed(n: usize, seed: u64) -> (Arc<Fabric>, SchedCtx, Vec<Arc<StandardHost>>, Loid) {
    let fabric = Fabric::new(
        DomainTopology::uniform(1, SimDuration::from_micros(10), SimDuration::from_micros(10)),
        seed,
    );
    let vault = Arc::new(legion_vaults::StandardVault::new(Default::default()));
    fabric.register_vault(vault, DomainId(0));
    let mut hosts = Vec::new();
    for i in 0..n {
        let h = StandardHost::new(
            HostConfig::unix(format!("h{i}"), "dom0"),
            fabric.clone(),
            seed + i as u64,
        );
        fabric.register_host(Arc::clone(&h) as Arc<dyn HostObject>, DomainId(0));
        hosts.push(h);
    }
    let class = Arc::new(
        LegionClass::new("w", vec![ObjectImplementation::new("mips", "IRIX")])
            .with_demand(100, 64),
    );
    let class_loid = legion_core::ClassObject::loid(&*class);
    fabric.register_class(class);
    let collection = Collection::new(seed);
    let daemon = DataCollectionDaemon::new(Arc::clone(&collection));
    for h in &hosts {
        daemon.track_host(Arc::clone(h) as Arc<dyn HostObject>);
    }
    daemon.pull_once(fabric.clock().now());
    let ctx = SchedCtx::new(Arc::clone(&fabric), collection);
    (fabric, ctx, hosts, class_loid)
}

fn block_all(hosts: &[Arc<StandardHost>], class: Loid, fabric: &Arc<Fabric>) {
    for h in hosts {
        let vault = h.get_compatible_vaults()[0];
        let req = ReservationRequest::instantaneous(class, vault, SimDuration::from_secs(1 << 20))
            .with_type(ReservationType::REUSABLE_SPACE);
        h.make_reservation(&req, fabric.clock().now()).unwrap();
    }
}

#[test]
fn driver_reports_generation_and_round_counts() {
    let (fabric, ctx, _hosts, class) = bed(4, 1);
    // Seed chosen so the first generation maps the two instances to
    // distinct hosts (full-machine demand: a same-host pair can never
    // reserve, and this test wants the happy path).
    let scheduler = RandomScheduler::new(0);
    let enactor = Enactor::new(fabric.clone());
    let driver = ScheduleDriver::new(Arc::new(scheduler), Arc::new(enactor));
    let report = driver.place(&PlacementRequest::new().class(class, 2), &ctx).unwrap();
    assert_eq!(report.generations, 1, "idle bed: first generation lands");
    assert_eq!(report.reservation_rounds, 1);
    assert!(report.feedback.is_some());
    assert!(report.feedback.unwrap().reserved());
}

#[test]
fn driver_exhausts_its_limits_then_fails() {
    let (fabric, ctx, hosts, class) = bed(3, 2);
    block_all(&hosts, class, &fabric);
    // Refresh the Collection view so schedules are still generated.
    let scheduler = RandomScheduler::new(3);
    let enactor = Enactor::new(fabric.clone());
    let limits = DriverLimits { sched_try_limit: 2, enact_try_limit: 3 };
    let driver = ScheduleDriver::with_limits(Arc::new(scheduler), Arc::new(enactor), limits);
    let before = fabric.metrics().snapshot();
    let err = driver.place(&PlacementRequest::new().class(class, 1), &ctx);
    assert!(err.is_err());
    // Exactly sched_try_limit x enact_try_limit reservation rounds ran.
    let d = fabric.metrics().snapshot().delta(&before);
    assert_eq!(d.schedules_attempted, 2 * 3, "2 generations x 3 enact tries");
}

#[test]
fn irs_per_position_emits_one_variant_per_alternative() {
    let (_fabric, ctx, _hosts, class) = bed(8, 3);
    let joint = IrsScheduler::new(5, 4);
    let per_pos = IrsScheduler::new(5, 4).per_position();
    assert_eq!(joint.name(), "irs");
    assert_eq!(per_pos.name(), "irs-per-position");

    let req = PlacementRequest::new().class(class, 3);
    let js = joint.compute_schedule(&req, &ctx).unwrap();
    let ps = per_pos.compute_schedule(&req, &ctx).unwrap();
    // Joint: at most NSched-1 variants regardless of instance count.
    assert!(js.schedules[0].variants.len() <= 3);
    // Per-position: up to (NSched-1) x instances single-position variants.
    assert!(ps.schedules[0].variants.len() <= 9);
    assert!(ps.schedules[0].variants.len() > js.schedules[0].variants.len());
    for v in &ps.schedules[0].variants {
        assert_eq!(v.replaces.count_ones(), 1, "single-position by construction");
    }
    // Both validate structurally.
    assert!(js.validate().is_ok());
    assert!(ps.validate().is_ok());
}
