//! The epoch-validated candidate cache: delta-edge behaviour (touch-only
//! churn, log gaps, deltas never enabled, oversized batches) and the
//! bit-identical cached/patched/uncached equivalence property under
//! arbitrary mutation interleavings and shard counts.

use legion_collection::{Collection, MemberCredential};
use legion_core::host::well_known;
use legion_core::{
    AttrValue, AttributeDb, ClassReport, Loid, LoidKind, ObjectImplementation, SimDuration,
    SimTime,
};
use legion_fabric::{DomainTopology, Fabric};
use legion_schedulers::{Candidate, SchedCtx};
use proptest::prelude::*;
use std::sync::Arc;

/// Constraint used by every serve: memory values are multiples of 128,
/// so upserts can flip records across the predicate boundary.
const MEM_CONSTRAINT: &str = "$host_memory_mb >= 256";

fn vault_loid() -> Loid {
    Loid::synthetic(LoidKind::Vault, 1)
}

fn member_loid(i: usize) -> Loid {
    Loid::synthetic(LoidKind::Host, 100 + i as u64)
}

fn host_attrs(memory_mb: i64) -> AttributeDb {
    AttributeDb::new()
        .with(well_known::ARCH, "mips")
        .with(well_known::OS_NAME, "IRIX")
        .with(well_known::MEMORY_MB, memory_mb)
        .with(
            well_known::COMPATIBLE_VAULTS,
            AttrValue::List(vec![AttrValue::Str(vault_loid().to_string())]),
        )
}

/// Initial memory for member `i`: 128, 256, 384 or 512 MB — half the
/// bed starts inside the `>= 256` predicate, half outside.
fn initial_memory(i: usize) -> i64 {
    128 + (i as i64 % 4) * 128
}

fn report() -> ClassReport {
    ClassReport {
        class: Loid::synthetic(LoidKind::Class, 1),
        name: "w".to_string(),
        implementations: vec![ObjectImplementation::new("mips", "IRIX")],
        memory_mb: 64,
        cpu_centis: 25,
        comm_bytes_per_cycle: 0,
    }
}

struct Bed {
    collection: Arc<Collection>,
    /// Cache-enabled context (the default).
    cached: SchedCtx,
    /// Cache-disabled context over the same Collection — the ground
    /// truth every cached serve must match bit for bit.
    uncached: SchedCtx,
    creds: Vec<MemberCredential>,
    fabric: Arc<Fabric>,
}

fn bed(shards: usize, members: usize, delta_capacity: Option<usize>) -> Bed {
    let fabric = Fabric::new(
        DomainTopology::uniform(1, SimDuration::from_micros(10), SimDuration::from_millis(1)),
        7,
    );
    let collection = Collection::with_shards(0xCACE, shards);
    collection.set_metrics(Arc::clone(fabric.metrics()));
    if let Some(cap) = delta_capacity {
        collection.enable_deltas(cap);
    }
    let creds: Vec<MemberCredential> = (0..members)
        .map(|i| {
            collection.join_with(member_loid(i), host_attrs(initial_memory(i)), SimTime::ZERO)
        })
        .collect();
    let cached = SchedCtx::new(Arc::clone(&fabric), Arc::clone(&collection));
    let uncached = SchedCtx::new(Arc::clone(&fabric), Arc::clone(&collection));
    uncached.set_candidate_cache_enabled(false);
    Bed { collection, cached, uncached, creds, fabric }
}

fn serve(ctx: &SchedCtx) -> Arc<Vec<Candidate>> {
    ctx.shared_candidates_for(&report(), Some(MEM_CONSTRAINT)).expect("query compiles")
}

/// Asserts the cached context serves exactly what a full uncached query
/// computes — same members, same attribute snapshots, same vault lists,
/// same order.
fn assert_serves_match(bed: &Bed) {
    let cached = serve(&bed.cached);
    let uncached = serve(&bed.uncached);
    assert_eq!(*cached, *uncached, "cached serve diverged from ground-truth query");
}

#[test]
fn repeat_serves_hit_and_share_the_set() {
    let bed = bed(4, 32, Some(1024));
    let first = serve(&bed.cached);
    let second = serve(&bed.cached);
    assert!(Arc::ptr_eq(&first, &second), "unchanged epoch must serve the same Arc");
    let stats = bed.cached.candidate_cache_stats();
    assert_eq!((stats.misses, stats.hits, stats.patched), (1, 1, 0));
    assert_serves_match(&bed);
}

#[test]
fn touch_only_churn_patches_without_reevaluation() {
    let bed = bed(4, 48, Some(4096));
    serve(&bed.cached); // prime: one full compute
    let t = SimTime::from_secs(5);
    for cred in &bed.creds {
        bed.collection.touch(cred, t).unwrap();
    }

    let before = bed.fabric.metrics().snapshot();
    let set = serve(&bed.cached);
    let delta = bed.fabric.metrics().snapshot().delta(&before);

    let stats = bed.cached.candidate_cache_stats();
    assert_eq!(stats.patched, 1, "touch-only churn must patch, not recompute");
    assert_eq!(stats.misses, 1, "only the priming serve computed");
    // A touch never re-evaluates the predicate: the ledger's scan
    // counter must not move, while the serve still accounts as a query.
    assert_eq!(delta.collection_records_scanned, 0, "no records re-evaluated");
    assert_eq!(delta.collection_queries, 1, "the patched serve is one query");
    // The freshness bump is visible through the patched set.
    assert!(set.iter().all(|c| c.record.updated_at == t), "touch must move updated_at");
    assert_serves_match(&bed);
}

#[test]
fn upsert_churn_tracks_predicate_flips() {
    let bed = bed(4, 32, Some(4096));
    let primed = serve(&bed.cached);
    // Member 1 starts at 256 MB (inside); drop it below the predicate.
    assert!(primed.iter().any(|c| c.host == member_loid(1)));
    let t = SimTime::from_secs(3);
    bed.collection.replace(&bed.creds[1], host_attrs(64), t).unwrap();
    // Member 0 starts at 128 MB (outside); raise it above.
    assert!(!primed.iter().any(|c| c.host == member_loid(0)));
    bed.collection.replace(&bed.creds[0], host_attrs(1024), t).unwrap();
    // Member 2 leaves outright.
    bed.collection.leave(&bed.creds[2]).unwrap();

    let set = serve(&bed.cached);
    let stats = bed.cached.candidate_cache_stats();
    assert_eq!(stats.patched, 1, "three logged ops patch in one serve");
    assert!(!set.iter().any(|c| c.host == member_loid(1)), "downgraded member left the set");
    assert!(set.iter().any(|c| c.host == member_loid(0)), "upgraded member entered the set");
    assert!(!set.iter().any(|c| c.host == member_loid(2)), "departed member left the set");
    assert_serves_match(&bed);
}

#[test]
fn log_gap_forces_full_recompute() {
    // Capacity 8: churning 24 members overflows the bounded log, so the
    // cache's anchor falls off the front and `deltas_since` reports a
    // gap — the patch path must give up and recompute (the same rule
    // the push federation applies on gap→resync).
    let bed = bed(4, 24, Some(8));
    serve(&bed.cached);
    let t = SimTime::from_secs(9);
    for cred in &bed.creds {
        bed.collection.touch(cred, t).unwrap();
    }
    serve(&bed.cached);
    let stats = bed.cached.candidate_cache_stats();
    assert_eq!(stats.gap_resyncs, 1, "overflowed log must be detected as a gap");
    assert_eq!(stats.misses, 2, "gap serve recomputes in full");
    assert_eq!(stats.patched, 0);
    assert_serves_match(&bed);
}

#[test]
fn correct_when_deltas_were_never_enabled() {
    // No delta log at all: every epoch advance is a full recompute and
    // results stay exact — the cache degrades, never lies.
    let bed = bed(4, 16, None);
    serve(&bed.cached);
    bed.collection.touch(&bed.creds[3], SimTime::from_secs(2)).unwrap();
    serve(&bed.cached);
    let stats = bed.cached.candidate_cache_stats();
    assert_eq!(stats.misses, 2, "no deltas: epoch advance means recompute");
    assert_eq!((stats.patched, stats.hits, stats.gap_resyncs), (0, 0, 0));
    // A quiet epoch still hits.
    serve(&bed.cached);
    assert_eq!(bed.cached.candidate_cache_stats().hits, 1);
    assert_serves_match(&bed);
}

#[test]
fn oversized_batches_recompute_instead_of_patching() {
    // 80 ops against a 100-record collection exceeds the patch budget
    // (max(len/4, 64) = 64), so the serve recomputes through the index.
    let bed = bed(2, 100, Some(4096));
    serve(&bed.cached);
    for cred in bed.creds.iter().take(80) {
        bed.collection.touch(cred, SimTime::from_secs(4)).unwrap();
    }
    serve(&bed.cached);
    let stats = bed.cached.candidate_cache_stats();
    assert_eq!(stats.misses, 2, "oversized batch must recompute");
    assert_eq!(stats.patched, 0);
    // Small follow-up churn patches again.
    bed.collection.touch(&bed.creds[0], SimTime::from_secs(6)).unwrap();
    serve(&bed.cached);
    assert_eq!(bed.cached.candidate_cache_stats().patched, 1);
    assert_serves_match(&bed);
}

#[test]
fn disabling_the_cache_drops_state_and_serves_plain_queries() {
    let bed = bed(4, 16, Some(1024));
    serve(&bed.cached);
    serve(&bed.cached);
    assert_eq!(bed.cached.candidate_cache_stats().hits, 1);
    bed.cached.set_candidate_cache_enabled(false);
    let a = serve(&bed.cached);
    let b = serve(&bed.cached);
    assert!(!Arc::ptr_eq(&a, &b), "disabled cache computes fresh sets");
    let stats = bed.cached.candidate_cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "disabled serves are unaccounted plain queries");
    assert_serves_match(&bed);
}

/// One mutation step of the interleaving property below.
#[derive(Debug, Clone)]
enum Step {
    Touch(usize),
    Upsert(usize, i64),
    Leave(usize),
    Rejoin(usize, i64),
    Serve,
}

fn step_strategy(members: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..members).prop_map(Step::Touch),
        (0..members, 0i64..1024).prop_map(|(i, m)| Step::Upsert(i, m)),
        (0..members).prop_map(Step::Leave),
        (0..members, 0i64..1024).prop_map(|(i, m)| Step::Rejoin(i, m)),
        Just(Step::Serve),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline correctness property: under any interleaving of
    /// upserts, touches, leaves and rejoins — across shard counts and
    /// delta-log capacities (including none, forcing recomputes, and
    /// tiny, forcing gaps) — a cached serve is bit-identical to a full
    /// uncached query at every observation point.
    #[test]
    fn cached_serves_are_bit_identical_to_uncached(
        shards in (0usize..3).prop_map(|i| [1usize, 2, 8][i]),
        capacity in (0usize..3).prop_map(|i| [None, Some(4usize), Some(4096)][i]),
        steps in proptest::collection::vec(step_strategy(12), 1..40),
    ) {
        let mut bed = bed(shards, 12, capacity);
        assert_serves_match(&bed);
        let mut now = 1u64;
        for step in steps {
            now += 1;
            let t = SimTime::from_secs(now);
            match step {
                Step::Touch(i) => { let _ = bed.collection.touch(&bed.creds[i], t); }
                Step::Upsert(i, m) => {
                    let _ = bed.collection.replace(&bed.creds[i], host_attrs(m), t);
                }
                Step::Leave(i) => { let _ = bed.collection.leave(&bed.creds[i]); }
                Step::Rejoin(i, m) => {
                    bed.creds[i] = bed.collection.join_with(member_loid(i), host_attrs(m), t);
                }
                Step::Serve => assert_serves_match(&bed),
            }
        }
        assert_serves_match(&bed);
    }
}
