//! The four resource-management layering schemes of Fig. 2.
//!
//! "(a) the application does it all, negotiating directly with resources
//! and making placement decisions. (b) the application still makes its
//! own placement decision, but uses the provided Resource Management
//! services to negotiate with system resources. (c) an application
//! taking advantage of a combined placement and negotiation module, such
//! as was provided in MESSIAHS. (d) performs each of these functions in
//! a separate module. ... Any of these layerings is possible in Legion;
//! the choice of which to use is up to the individual application
//! writer." (§3, Fig. 2)
//!
//! [`place_layered`] runs the same placement task under each scheme so
//! experiment E-F2 can compare their costs — the paper's claim being
//! that "cost ... scales with capability; the effort required to
//! implement a simple policy is low".

use crate::random::RandomScheduler;
use crate::traits::{SchedCtx, Scheduler};
use legion_core::{
    LegionError, Loid, Placement, PlacementContext, PlacementRequest, ReservationRequest,
};
use legion_schedule::{Enactor, Mapping, ScheduleRequestList};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Which Fig. 2 layering to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayeringScheme {
    /// (a) Application + Scheduler + RM services fused: the application
    /// negotiates directly with resources and places by itself.
    ApplicationDoesItAll,
    /// (b) Application + Scheduler fused, over RM services: the
    /// application picks placements, the Enactor negotiates.
    AppSchedulerOverRm,
    /// (c) A combined Scheduler + RM-services module (MESSIAHS-style).
    CombinedSchedulerRm,
    /// (d) Application / Scheduler / RM services / resources, each in
    /// its own module — the paper's preferred, most flexible layering.
    FullySeparated,
}

impl LayeringScheme {
    /// All four schemes in Fig. 2 order.
    pub const ALL: [LayeringScheme; 4] = [
        LayeringScheme::ApplicationDoesItAll,
        LayeringScheme::AppSchedulerOverRm,
        LayeringScheme::CombinedSchedulerRm,
        LayeringScheme::FullySeparated,
    ];

    /// Fig. 2 panel label.
    pub fn label(self) -> &'static str {
        match self {
            LayeringScheme::ApplicationDoesItAll => "(a) app does it all",
            LayeringScheme::AppSchedulerOverRm => "(b) app+sched over RM",
            LayeringScheme::CombinedSchedulerRm => "(c) combined sched+RM",
            LayeringScheme::FullySeparated => "(d) fully separated",
        }
    }
}

/// Places `count` instances of `class` under the given layering scheme.
///
/// Returns the created instances. All schemes use random placement so
/// the comparison isolates layering overhead, not policy quality.
pub fn place_layered(
    scheme: LayeringScheme,
    ctx: &SchedCtx,
    enactor: &Arc<Enactor>,
    class: Loid,
    count: u32,
    seed: u64,
) -> Result<Vec<Loid>, LegionError> {
    match scheme {
        LayeringScheme::ApplicationDoesItAll => place_direct(ctx, class, count, seed),
        LayeringScheme::AppSchedulerOverRm => {
            // The "application" computes mappings itself (inline random
            // policy)...
            let mappings = inline_random_mappings(ctx, class, count, seed)?;
            // ...then hands them to the RM services (Enactor) to
            // negotiate and instantiate.
            enact(enactor, ScheduleRequestList::single(mappings))
        }
        LayeringScheme::CombinedSchedulerRm => {
            // One module does both: compute then negotiate, no separate
            // application-visible schedule hand-off.
            let scheduler = RandomScheduler::new(seed);
            let request = PlacementRequest::new().class(class, count);
            let sched = scheduler.compute_schedule(&request, ctx)?;
            enact(enactor, sched)
        }
        LayeringScheme::FullySeparated => {
            // Application → Scheduler → Enactor → resources.
            let scheduler = RandomScheduler::new(seed);
            let request = PlacementRequest::new().class(class, count);
            let driver =
                crate::driver::ScheduleDriver::new(Arc::new(scheduler), Arc::clone(enactor));
            let report = driver.place(&request, ctx)?;
            Ok(report.placed.into_iter().map(|(_, i)| i).collect())
        }
    }
}

/// (a): the application negotiates with hosts directly — no Collection,
/// no Enactor. It walks the fabric's hosts, reserves, and asks the class
/// to instantiate with a directed placement.
fn place_direct(
    ctx: &SchedCtx,
    class: Loid,
    count: u32,
    seed: u64,
) -> Result<Vec<Loid>, LegionError> {
    let fabric = &ctx.fabric;
    let class_obj = fabric.lookup_class(class).ok_or(LegionError::NoSuchObject(class))?;
    let report = class_obj.report();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut hosts = fabric.host_loids();
    hosts.shuffle(&mut rng);

    let mut placed = Vec::new();
    'instances: for _ in 0..count {
        for &hl in &hosts {
            let Some(host) = fabric.lookup_host(hl) else { continue };
            let Some(vault) = host.get_compatible_vaults().into_iter().next() else {
                continue;
            };
            let req = ReservationRequest::instantaneous(
                class,
                vault,
                legion_core::SimDuration::from_secs(3600),
            )
            .with_demand(report.cpu_centis, report.memory_mb);
            fabric.link(class, hl)?;
            let Ok(token) = host.make_reservation(&req, fabric.clock().now()) else {
                continue;
            };
            let placement = Placement { host: hl, vault, token };
            match class_obj.create_instance(Some(placement), &**fabric) {
                Ok(instance) => {
                    placed.push(instance);
                    continue 'instances;
                }
                Err(_) => continue,
            }
        }
        return Err(LegionError::AllSchedulesFailed { attempted: count as usize });
    }
    Ok(placed)
}

/// (b)'s inline placement decision: random host/vault pairs read
/// directly from the Collection, without a Scheduler object.
fn inline_random_mappings(
    ctx: &SchedCtx,
    class: Loid,
    count: u32,
    seed: u64,
) -> Result<Vec<Mapping>, LegionError> {
    let report = ctx.class_report(class)?;
    let pool = ctx.shared_candidates_for(&report, None)?;
    let candidates: Vec<_> = pool.iter().filter(|c| c.usable()).collect();
    if candidates.is_empty() {
        return Err(LegionError::NoUsableImplementation { class });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    Ok((0..count)
        .map(|_| {
            let c = candidates.choose(&mut rng).expect("non-empty");
            Mapping::new(class, c.host, c.vaults[0])
        })
        .collect())
}

fn enact(enactor: &Enactor, sched: ScheduleRequestList) -> Result<Vec<Loid>, LegionError> {
    let fb = enactor.make_reservations(&sched);
    if !fb.reserved() {
        return Err(LegionError::AllSchedulesFailed { attempted: sched.schedules.len() });
    }
    Ok(enactor.enact_schedule(&fb)?.into_iter().map(|(_, i)| i).collect())
}
