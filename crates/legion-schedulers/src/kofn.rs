//! "k out of n" scheduling (§3.3, future work — implemented here).
//!
//! "We will also support 'k out of n' scheduling, where the Scheduler
//! specifies an equivalence class of n resources and asks the Enactor to
//! start k instances of the same object on them."
//!
//! The equivalence class is every usable candidate the Collection
//! returns; the master schedule places the k instances on the first k
//! (least-loaded) members, and the remaining `n − k` members become
//! spares expressed as single-position variant schedules — so the
//! Enactor's bitmap walk can slide any failed instance onto a spare
//! without disturbing the others. Experiment E-X3 measures success
//! probability as a function of the spare slack `n − k`.

use crate::traits::{SchedCtx, Scheduler};
use legion_core::host::well_known;
use legion_core::{LegionError, Loid, LoidKind, PlacementRequest};
use legion_schedule::{Mapping, ScheduleRequest, ScheduleRequestList, VariantSchedule};

/// k-of-n placement over an equivalence class of hosts.
pub struct KOfNScheduler {
    loid: Loid,
    /// Cap on the equivalence class size (`n`); `None` = all candidates.
    pub n_limit: Option<usize>,
    /// Cap on generated variants (each consumes Enactor attempts).
    pub max_variants: usize,
}

impl KOfNScheduler {
    /// A k-of-n scheduler over the whole candidate set.
    pub fn new() -> Self {
        KOfNScheduler { loid: Loid::fresh(LoidKind::Service), n_limit: None, max_variants: 16 }
    }

    /// Restricts the equivalence class to `n` members.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n_limit = Some(n);
        self
    }

    /// This scheduler's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }
}

impl Default for KOfNScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for KOfNScheduler {
    fn name(&self) -> &'static str {
        "k-of-n"
    }

    fn compute_schedule(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<ScheduleRequestList, LegionError> {
        let [item] = request.items.as_slice() else {
            return Err(LegionError::MalformedSchedule(
                "k-of-n expects exactly one class (k instances of the same object)".into(),
            ));
        };
        let k = item.count as usize;
        if k == 0 {
            return Err(LegionError::MalformedSchedule("k must be positive".into()));
        }
        let report = ctx.class_report(item.class)?;
        let pool = ctx.shared_candidates_for(&report, item.constraint.as_deref())?;
        let mut candidates: Vec<_> = pool.iter().filter(|c| c.usable()).collect();
        if let Some(n) = self.n_limit {
            candidates.truncate(n);
        }
        if candidates.len() < k {
            return Err(LegionError::MalformedSchedule(format!(
                "equivalence class has {} members, need k = {k}",
                candidates.len()
            )));
        }
        // Least-loaded members take the master slots.
        candidates.sort_by(|a, b| {
            let la = a.attrs().get_f64(well_known::LOAD).unwrap_or(f64::MAX);
            let lb = b.attrs().get_f64(well_known::LOAD).unwrap_or(f64::MAX);
            la.partial_cmp(&lb).unwrap_or(std::cmp::Ordering::Equal)
        });

        let master: Vec<Mapping> = candidates[..k]
            .iter()
            .map(|c| Mapping::new(item.class, c.host, c.vaults[0]))
            .collect();
        let spares = &candidates[k..];

        let mut sched = ScheduleRequest::master_only(master);
        // Spare j covers master position j mod k — between them the
        // spares cover every position as evenly as possible.
        for (j, spare) in spares.iter().enumerate().take(self.max_variants) {
            let pos = j % k;
            let repl = Mapping::new(item.class, spare.host, spare.vaults[0]);
            sched = sched.with_variant(VariantSchedule::replacing(k, &[(pos, repl)]));
        }
        Ok(ScheduleRequestList { schedules: vec![sched] })
    }
}
