//! A load-aware scheduler, optionally forecast-driven.
//!
//! The paper's hosts export "a rich set of information, well beyond the
//! minimal 'architecture, OS, and load average'" (§3.1); this scheduler
//! is the canonical consumer: it sorts candidates by observed load and
//! spreads instances to the least-loaded hosts. With `use_forecast` it
//! prefers the injected `host_load_forecast` attribute (the NWS-style
//! function-injection extension of §3.2) over the instantaneous load —
//! experiment E-X4 measures the difference.

use crate::traits::{SchedCtx, Scheduler};
use legion_core::host::well_known;
use legion_core::{LegionError, Loid, LoidKind, PlacementRequest};
use legion_schedule::{Mapping, ScheduleRequest, ScheduleRequestList, VariantSchedule};

/// Least-loaded-first placement.
pub struct LoadAwareScheduler {
    loid: Loid,
    /// Prefer `host_load_forecast` (injected) over `host_load`.
    pub use_forecast: bool,
    /// Number of variant schedules to emit (next-best hosts as spares).
    pub variants: usize,
}

impl LoadAwareScheduler {
    /// A load-aware scheduler on instantaneous load.
    pub fn new() -> Self {
        LoadAwareScheduler { loid: Loid::fresh(LoidKind::Service), use_forecast: false, variants: 2 }
    }

    /// A load-aware scheduler preferring injected forecasts.
    pub fn forecasting() -> Self {
        LoadAwareScheduler { use_forecast: true, ..Self::new() }
    }

    /// This scheduler's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }

    fn load_of(&self, c: &crate::traits::Candidate) -> f64 {
        if self.use_forecast {
            if let Some(f) = c.attrs().get_f64("host_load_forecast") {
                return f;
            }
        }
        c.attrs().get_f64(well_known::LOAD).unwrap_or(f64::MAX)
    }
}

impl Default for LoadAwareScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for LoadAwareScheduler {
    fn name(&self) -> &'static str {
        if self.use_forecast {
            "load-aware-forecast"
        } else {
            "load-aware"
        }
    }

    fn compute_schedule(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<ScheduleRequestList, LegionError> {
        if request.is_empty() {
            return Err(LegionError::MalformedSchedule("empty placement request".into()));
        }
        let mut master = Vec::new();
        // Per-position spare lists for variants.
        let mut spares: Vec<Vec<Mapping>> = Vec::new();

        for item in &request.items {
            let report = ctx.class_report(item.class)?;
            let pool = ctx.shared_candidates_for(&report, item.constraint.as_deref())?;
            let mut candidates: Vec<_> = pool.iter().filter(|c| c.usable()).collect();
            if candidates.is_empty() {
                return Err(LegionError::NoUsableImplementation { class: item.class });
            }
            candidates.sort_by(|a, b| {
                self.load_of(a).partial_cmp(&self.load_of(b)).unwrap_or(std::cmp::Ordering::Equal)
            });
            // Spread the k instances over the k least-loaded hosts
            // (wrapping if k exceeds the candidate pool).
            for i in 0..item.count as usize {
                let pick = &candidates[i % candidates.len()];
                master.push(Mapping::new(item.class, pick.host, pick.vaults[0]));
                // Next-best hosts become spares for this position.
                let mut alt = Vec::new();
                for j in 1..=self.variants {
                    let c = &candidates[(i + j) % candidates.len()];
                    if c.host != pick.host {
                        alt.push(Mapping::new(item.class, c.host, c.vaults[0]));
                    }
                }
                spares.push(alt);
            }
        }

        let n = master.len();
        let mut sched = ScheduleRequest::master_only(master);
        // Variant v swaps each position to its v-th spare (if any).
        for v in 0..self.variants {
            let replacements: Vec<(usize, Mapping)> = (0..n)
                .filter_map(|i| spares[i].get(v).map(|m| (i, m.clone())))
                .collect();
            if !replacements.is_empty() {
                sched = sched.with_variant(VariantSchedule::replacing(n, &replacements));
            }
        }
        Ok(ScheduleRequestList { schedules: vec![sched] })
    }
}
