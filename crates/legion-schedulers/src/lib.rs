//! Schedulers for the Legion RMI.
//!
//! "Legion provides simple, generic default Schedulers that offer the
//! classic '90%' solution — they do an adequate job, but can easily be
//! outperformed by Schedulers with specialized algorithms or knowledge
//! of the application." (§3)
//!
//! This crate provides:
//!
//! * [`Scheduler`] — the trait every placement policy implements, plus
//!   the [`SchedCtx`] giving access to the Collection and class reports;
//! * [`RandomScheduler`] — the paper's Fig. 7 pseudocode, faithfully:
//!   query implementations, query the Collection, random host, random
//!   compatible vault, single master schedule;
//! * [`IrsScheduler`] — the Improved Random Scheduler of Figs. 8–9:
//!   `n` random mappings per instance folded into one master plus
//!   `n − 1` variant schedules, with the retry wrapper
//!   (`SchedTryLimit` × `EnactTryLimit`) in [`ScheduleDriver`];
//! * [`RoundRobinScheduler`] and [`LoadAwareScheduler`] — simple
//!   improved policies (load-aware optionally consults the injected
//!   `host_load_forecast` attribute, §3.2's NWS extension);
//! * [`StencilScheduler`] — the §4.3 specialized policy for 2-D
//!   nearest-neighbour MPI applications (the DoD MSRC ocean simulation):
//!   minimizes inter-domain edges in the process grid;
//! * [`PriceAwareScheduler`] — cheapest-first placement over the
//!   exported `host_price_per_cpu_sec` attribute (§3.1's economics);
//! * [`KOfNScheduler`] — the §3.3 "k out of n" future-work feature:
//!   k instances over an equivalence class of n resources, with spares
//!   expressed as variant schedules;
//! * [`layering`] — the four resource-management layering schemes of
//!   Fig. 2, for the E-F2 experiment.

pub mod cache;
pub mod driver;
pub mod irs;
pub mod kofn;
pub mod layering;
pub mod load_aware;
pub mod price_aware;
pub mod random;
pub mod round_robin;
pub mod stencil;
pub mod traits;

pub use cache::CandidateCacheStats;
pub use driver::{DriverLimits, DriverReport, PlacementSpec, ScheduleDriver};
pub use irs::{IrsScheduler, VariantStyle};
pub use kofn::KOfNScheduler;
pub use layering::{place_layered, LayeringScheme};
pub use load_aware::LoadAwareScheduler;
pub use price_aware::PriceAwareScheduler;
pub use random::RandomScheduler;
pub use round_robin::RoundRobinScheduler;
pub use stencil::{GridSpec, StencilScheduler};
pub use traits::{Candidate, SchedCtx, Scheduler};
