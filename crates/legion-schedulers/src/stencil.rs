//! Specialized placement for 2-D stencil applications (§4.3).
//!
//! "we are working with the DoD MSRC in Stennis, Mississippi to develop
//! a Scheduler for an MPI-based ocean simulation which uses
//! nearest-neighbor communication within a 2-D grid." Applications like
//! this "exhibit predictable communication patterns, both in terms of
//! the compute/communication cycle and in the source and destination of
//! the communication" — so a Scheduler that keeps neighbouring ranks in
//! the same administrative domain avoids paying WAN latency on every
//! halo exchange.
//!
//! [`StencilScheduler`] partitions the process grid into contiguous
//! horizontal bands, one per domain, sized proportionally to the number
//! of candidate hosts each domain offers; cells within a band cycle over
//! that domain's hosts. [`comm_cost`] computes the predicted per-cycle
//! communication cost of any assignment, the quantity experiment E-X1
//! compares across schedulers.

use crate::traits::{Candidate, SchedCtx, Scheduler};
use legion_core::host::well_known;
use legion_core::{LegionError, Loid, LoidKind, PlacementRequest};
use legion_schedule::{Mapping, ScheduleRequestList};
use std::collections::BTreeMap;

/// The process-grid shape of the stencil application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
}

impl GridSpec {
    /// A rows × cols grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        GridSpec { rows, cols }
    }

    /// Total ranks.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the grid is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Domain-banded placement for nearest-neighbour grids.
pub struct StencilScheduler {
    loid: Loid,
    /// The application's process grid.
    pub grid: GridSpec,
}

impl StencilScheduler {
    /// A stencil scheduler for the given grid.
    pub fn new(grid: GridSpec) -> Self {
        StencilScheduler { loid: Loid::fresh(LoidKind::Service), grid }
    }

    /// This scheduler's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }
}

impl Scheduler for StencilScheduler {
    fn name(&self) -> &'static str {
        "stencil-2d"
    }

    fn compute_schedule(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<ScheduleRequestList, LegionError> {
        let [item] = request.items.as_slice() else {
            return Err(LegionError::MalformedSchedule(
                "stencil scheduler expects exactly one class".into(),
            ));
        };
        if item.count as usize != self.grid.len() {
            return Err(LegionError::MalformedSchedule(format!(
                "grid {}x{} needs {} instances, request asks for {}",
                self.grid.rows,
                self.grid.cols,
                self.grid.len(),
                item.count
            )));
        }
        let report = ctx.class_report(item.class)?;
        let pool = ctx.shared_candidates_for(&report, item.constraint.as_deref())?;
        let candidates: Vec<&Candidate> = pool.iter().filter(|c| c.usable()).collect();
        if candidates.is_empty() {
            return Err(LegionError::NoUsableImplementation { class: item.class });
        }

        // Group candidates by domain, largest domains first so wide bands
        // go where the hosts are.
        let mut by_domain: BTreeMap<String, Vec<&Candidate>> = BTreeMap::new();
        for c in &candidates {
            let dom = c.attrs().get_str(well_known::DOMAIN).unwrap_or("?").to_string();
            by_domain.entry(dom).or_default().push(c);
        }
        let mut domains: Vec<(String, Vec<&Candidate>)> = by_domain.into_iter().collect();
        domains.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));

        // Allocate contiguous row-bands proportional to domain size.
        let total_hosts: usize = domains.iter().map(|(_, h)| h.len()).sum();
        let mut band_rows: Vec<usize> = domains
            .iter()
            .map(|(_, h)| (self.grid.rows * h.len()) / total_hosts)
            .collect();
        // Distribute leftover rows to the largest domains.
        let mut assigned: usize = band_rows.iter().sum();
        let mut di = 0;
        let nbands = band_rows.len();
        while assigned < self.grid.rows {
            band_rows[di % nbands] += 1;
            assigned += 1;
            di += 1;
        }

        // Fill the grid row-major; cells in a band round-robin over the
        // band's hosts.
        let mut master = Vec::with_capacity(self.grid.len());
        let mut row = 0usize;
        for ((_, hosts), rows_here) in domains.iter().zip(&band_rows) {
            for _ in 0..*rows_here {
                for col in 0..self.grid.cols {
                    let pick = hosts[(row * self.grid.cols + col) % hosts.len()];
                    master.push(Mapping::new(item.class, pick.host, pick.vaults[0]));
                }
                row += 1;
            }
        }
        // Rounding can strand rows when some band got zero hosts' worth;
        // backfill from the largest domain.
        while row < self.grid.rows {
            let hosts = &domains[0].1;
            for col in 0..self.grid.cols {
                let pick = hosts[(row * self.grid.cols + col) % hosts.len()];
                master.push(Mapping::new(item.class, pick.host, pick.vaults[0]));
            }
            row += 1;
        }

        Ok(ScheduleRequestList::single(master))
    }
}

/// Predicted per-cycle communication cost of a grid assignment.
///
/// `domain_of[i]` is the domain label of the host running rank `i`
/// (row-major). Each nearest-neighbour edge costs `intra_us` inside a
/// domain and `inter_us` across domains; the result is the sum over all
/// horizontal and vertical edges — proportional to one halo exchange.
pub fn comm_cost(
    domain_of: &[String],
    grid: GridSpec,
    intra_us: u64,
    inter_us: u64,
) -> u64 {
    assert_eq!(domain_of.len(), grid.len(), "assignment/grid size mismatch");
    let idx = |r: usize, c: usize| r * grid.cols + c;
    let mut cost = 0u64;
    for r in 0..grid.rows {
        for c in 0..grid.cols {
            if c + 1 < grid.cols {
                cost += if domain_of[idx(r, c)] == domain_of[idx(r, c + 1)] {
                    intra_us
                } else {
                    inter_us
                };
            }
            if r + 1 < grid.rows {
                cost += if domain_of[idx(r, c)] == domain_of[idx(r + 1, c)] {
                    intra_us
                } else {
                    inter_us
                };
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doms(labels: &[&str]) -> Vec<String> {
        labels.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn comm_cost_counts_edges() {
        // 2x2 grid, all same domain: 4 edges, all intra.
        let g = GridSpec::new(2, 2);
        assert_eq!(comm_cost(&doms(&["a", "a", "a", "a"]), g, 1, 100), 4);
        // Split by rows: horizontal edges intra (2), vertical inter (2).
        assert_eq!(comm_cost(&doms(&["a", "a", "b", "b"]), g, 1, 100), 2 + 200);
        // Split by columns: vertical intra (2), horizontal inter (2).
        assert_eq!(comm_cost(&doms(&["a", "b", "a", "b"]), g, 1, 100), 2 + 200);
    }

    #[test]
    fn banded_beats_striped() {
        // 4x4 grid over two domains: row bands cross the domain boundary
        // on only one row of vertical edges (4 inter edges); column
        // stripes alternating a/b cross on 12 horizontal edges.
        let g = GridSpec::new(4, 4);
        let banded: Vec<String> = (0..16)
            .map(|i| if i < 8 { "a".to_string() } else { "b".to_string() })
            .collect();
        let striped: Vec<String> = (0..16)
            .map(|i| if i % 2 == 0 { "a".to_string() } else { "b".to_string() })
            .collect();
        assert!(
            comm_cost(&banded, g, 1, 1000) < comm_cost(&striped, g, 1, 1000),
            "contiguous bands must beat stripes"
        );
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_mismatch_panics() {
        comm_cost(&doms(&["a"]), GridSpec::new(2, 2), 1, 2);
    }
}
