//! A cost-minimizing scheduler — the economics the paper gestures at.
//!
//! "the Host could export information such as the amount charged per
//! CPU cycle consumed" (§3.1), and users may "optimize factors such as
//! application throughput, turnaround time, or cost" (§1). This
//! scheduler reads `host_price_per_cpu_sec` from the Collection and
//! places instances on the cheapest hosts whose load stays under a
//! ceiling — the classic budget/turnaround trade experiment E-X7
//! quantifies against the load-aware policy.

use crate::traits::{Candidate, SchedCtx, Scheduler};
use legion_core::host::well_known;
use legion_core::{LegionError, Loid, LoidKind, PlacementRequest};
use legion_schedule::{Mapping, ScheduleRequest, ScheduleRequestList, VariantSchedule};

/// Cheapest-first placement with a load guard.
pub struct PriceAwareScheduler {
    loid: Loid,
    /// Hosts above this load are excluded no matter how cheap.
    pub max_load: f64,
    /// Variant schedules to emit (next-cheapest spares).
    pub variants: usize,
}

impl PriceAwareScheduler {
    /// A price-aware scheduler excluding hosts loaded above 2.0.
    pub fn new() -> Self {
        PriceAwareScheduler { loid: Loid::fresh(LoidKind::Service), max_load: 2.0, variants: 2 }
    }

    /// Builder: set the load ceiling.
    pub fn with_max_load(mut self, max_load: f64) -> Self {
        self.max_load = max_load;
        self
    }

    /// This scheduler's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }

    fn price_of(c: &Candidate) -> i64 {
        c.attrs().get_i64(well_known::PRICE_PER_CPU_SEC).unwrap_or(i64::MAX)
    }

    fn load_of(c: &Candidate) -> f64 {
        c.attrs().get_f64(well_known::LOAD).unwrap_or(f64::MAX)
    }

    /// Estimated spend for a placement: Σ price(host) per instance
    /// (per CPU-second; callers scale by expected runtime).
    pub fn spend_estimate(ctx: &SchedCtx, mappings: &[Mapping]) -> i64 {
        mappings
            .iter()
            .map(|m| {
                ctx.collection
                    .member_attr(m.host, well_known::PRICE_PER_CPU_SEC)
                    .and_then(|v| v.as_i64())
                    .unwrap_or(0)
            })
            .sum()
    }
}

impl Default for PriceAwareScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for PriceAwareScheduler {
    fn name(&self) -> &'static str {
        "price-aware"
    }

    fn compute_schedule(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<ScheduleRequestList, LegionError> {
        if request.is_empty() {
            return Err(LegionError::MalformedSchedule("empty placement request".into()));
        }
        let mut master = Vec::new();
        let mut spares: Vec<Vec<Mapping>> = Vec::new();
        for item in &request.items {
            let report = ctx.class_report(item.class)?;
            let pool = ctx.shared_candidates_for(&report, item.constraint.as_deref())?;
            let mut candidates: Vec<_> =
                pool.iter().filter(|c| c.usable() && Self::load_of(c) <= self.max_load).collect();
            if candidates.is_empty() {
                return Err(LegionError::NoUsableImplementation { class: item.class });
            }
            // Cheapest first; ties broken by load so we don't pile onto
            // one free host.
            candidates.sort_by(|a, b| {
                Self::price_of(a).cmp(&Self::price_of(b)).then(
                    Self::load_of(a)
                        .partial_cmp(&Self::load_of(b))
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            });
            for i in 0..item.count as usize {
                let pick = &candidates[i % candidates.len()];
                master.push(Mapping::new(item.class, pick.host, pick.vaults[0]));
                let mut alt = Vec::new();
                for j in 1..=self.variants {
                    let c = &candidates[(i + j) % candidates.len()];
                    if c.host != pick.host {
                        alt.push(Mapping::new(item.class, c.host, c.vaults[0]));
                    }
                }
                spares.push(alt);
            }
        }
        let n = master.len();
        let mut sched = ScheduleRequest::master_only(master);
        for v in 0..self.variants {
            let repl: Vec<(usize, Mapping)> =
                (0..n).filter_map(|i| spares[i].get(v).map(|m| (i, m.clone()))).collect();
            if !repl.is_empty() {
                sched = sched.with_variant(VariantSchedule::replacing(n, &repl));
            }
        }
        Ok(ScheduleRequestList { schedules: vec![sched] })
    }
}
