//! The Scheduler interface and shared candidate discovery.

use crate::cache::{self, CandidateCache, CandidateCacheStats};
use legion_core::{ClassReport, LegionError, Loid, PlacementRequest};
use legion_collection::{parse_query, Collection, CollectionRecord, Query};
use legion_fabric::Fabric;
use legion_schedule::ScheduleRequestList;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Arc;

/// What a Scheduler sees: the Collection to query, the fabric for class
/// reports, and a deterministic seed.
pub struct SchedCtx {
    /// The fabric (class lookups, clock, metrics).
    pub fabric: Arc<Fabric>,
    /// The Collection to query for resource descriptions.
    pub collection: Arc<Collection>,
    /// Compiled-query cache: schedulers rebuild the same candidate
    /// query text on every placement attempt; parsing and regex
    /// compilation happen once per distinct text, not per attempt.
    compiled: RwLock<HashMap<String, Arc<Query>>>,
    /// Epoch-validated candidate-set cache keyed by compiled-query
    /// text (see [`crate::cache`]); shared by every scheduler and
    /// `place_many` worker holding this context.
    candidates: CandidateCache,
}

impl SchedCtx {
    /// Creates a context (candidate caching on by default).
    pub fn new(fabric: Arc<Fabric>, collection: Arc<Collection>) -> Self {
        SchedCtx {
            fabric,
            collection,
            compiled: RwLock::new(HashMap::new()),
            candidates: CandidateCache::new(),
        }
    }

    /// Turns the candidate-set cache on or off (on by default).
    /// Disabling also drops every cached set; schedulers then pay a
    /// full Collection query per placement, which is the uncached
    /// baseline the steady-state bench compares against.
    pub fn set_candidate_cache_enabled(&self, on: bool) {
        self.candidates.set_enabled(on);
    }

    /// How the candidate cache has been serving (hits / patched /
    /// misses / gap resyncs).
    pub fn candidate_cache_stats(&self) -> CandidateCacheStats {
        self.candidates.stats()
    }

    /// Compiles `text` once and caches it for the context's lifetime;
    /// repeated placement attempts reuse the compiled [`Query`] via
    /// [`Collection::query_parsed`].
    pub fn compiled_query(&self, text: &str) -> Result<Arc<Query>, LegionError> {
        if let Some(q) = self.compiled.read().get(text) {
            return Ok(Arc::clone(q));
        }
        let q = Arc::new(parse_query(text)?);
        self.compiled.write().insert(text.to_string(), Arc::clone(&q));
        Ok(q)
    }

    /// Reads a class's report ("any Scheduler may query the object
    /// classes", §3.3).
    pub fn class_report(&self, class: Loid) -> Result<ClassReport, LegionError> {
        self.fabric
            .lookup_class(class)
            .map(|c| c.report())
            .ok_or(LegionError::NoSuchObject(class))
    }

    /// Fig. 7's first two steps: "query the class for available
    /// implementations; query Collection for Hosts matching available
    /// implementations" — plus an optional extra constraint from the
    /// placement request.
    pub fn candidates_for(
        &self,
        report: &ClassReport,
        extra_constraint: Option<&str>,
    ) -> Result<Vec<Candidate>, LegionError> {
        Ok((*self.shared_candidates_for(report, extra_constraint)?).clone())
    }

    /// [`Self::candidates_for`] through the epoch-validated candidate
    /// cache: the returned set is shared (an `Arc` clone on a hit, no
    /// per-record work at all), exact at the Collection epoch it was
    /// validated against, and sorted by member like every Collection
    /// query result. Schedulers filter/borrow from it rather than
    /// cloning. Falls back to a plain query when the cache is disabled
    /// or derived attributes are installed (materialized views cannot
    /// be patched from the delta log).
    pub fn shared_candidates_for(
        &self,
        report: &ClassReport,
        extra_constraint: Option<&str>,
    ) -> Result<Arc<Vec<Candidate>>, LegionError> {
        let mut q = String::new();
        if report.implementations.is_empty() {
            return Err(LegionError::NoUsableImplementation { class: report.class });
        }
        q.push('(');
        for (i, imp) in report.implementations.iter().enumerate() {
            if i > 0 {
                q.push_str(" or ");
            }
            q.push_str(&format!(
                r#"($host_arch == "{}" and $host_os_name == "{}")"#,
                imp.arch, imp.os
            ));
        }
        q.push(')');
        if let Some(extra) = extra_constraint {
            q.push_str(" and (");
            q.push_str(extra);
            q.push(')');
        }

        let compiled = self.compiled_query(&q)?;
        if !self.candidates.enabled() || self.collection.has_derived() {
            return Ok(Arc::new(cache::compute(&self.collection, &compiled, false)));
        }
        Ok(self.candidates.serve(&self.collection, &compiled, &q))
    }
}

/// A host candidate extracted from a Collection record.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The host.
    pub host: Loid,
    /// Vaults the host reported compatible.
    pub vaults: Vec<Loid>,
    /// The Collection record snapshot (shared, not deep-copied).
    pub record: Arc<CollectionRecord>,
}

impl Candidate {
    /// Materializes a candidate from its Collection record — "extract
    /// list of compatible vaults from H" (Fig. 7): the vault list
    /// travels inside the record. The query path and the cache's
    /// delta-patch path both build candidates through here, which is
    /// what keeps cached and uncached sets bit-identical.
    pub fn from_record(rec: Arc<CollectionRecord>) -> Self {
        let vaults = rec
            .attrs
            .get(legion_core::host::well_known::COMPATIBLE_VAULTS)
            .and_then(|v| v.as_list())
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str())
                    .filter_map(|s| Loid::from_str(s).ok())
                    .collect()
            })
            .unwrap_or_default();
        Candidate { host: rec.member, vaults, record: rec }
    }

    /// Whether the candidate can actually hold an OPR somewhere.
    pub fn usable(&self) -> bool {
        !self.vaults.is_empty()
    }

    /// The full record attributes (load, domain, price...).
    pub fn attrs(&self) -> &legion_core::AttributeDb {
        &self.record.attrs
    }
}

/// A placement policy: computes schedules, never enacts them.
///
/// "It is not our intent to directly develop more than a few
/// widely-applicable Schedulers; we leave that task to experts in the
/// field" (§3.3) — hence a trait with pluggable implementations.
pub trait Scheduler: Send + Sync {
    /// Policy name (experiment tables key on it).
    fn name(&self) -> &'static str;

    /// Computes a schedule request list for `request`.
    fn compute_schedule(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<ScheduleRequestList, LegionError>;
}
