//! The Improved Random Scheduler (IRS) — Figs. 8 and 9.
//!
//! "The improvement we focus on is not in the basic algorithm; the IRS
//! still selects a random Host and Vault pair. Rather, we will compute
//! multiple schedules and accommodate negative feedback from the
//! Enactor. ... The improved version generates n random mappings for
//! each object class, and then constructs n schedules out of them. The
//! Scheduler could just as easily build n schedules through calls to the
//! original generator function, but IRS does fewer lookups in the
//! Collection." (§4.2)
//!
//! Fig. 8's schedule construction: the master takes the first mapping of
//! each instance's list; variant `l` (for `l` in `2..=n`) takes the
//! `l`-th component for each instance, keeping only entries "that do not
//! appear in the master list". The retry wrapper of Fig. 9
//! (`SchedTryLimit`, `EnactTryLimit`) lives in
//! [`ScheduleDriver`](crate::driver::ScheduleDriver).

use crate::traits::{SchedCtx, Scheduler};
use legion_core::{LegionError, Loid, LoidKind, PlacementRequest};
use legion_schedule::{Mapping, ScheduleRequest, ScheduleRequestList, VariantSchedule};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How IRS structures its variant schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantStyle {
    /// Fig. 8 verbatim: variant `l` re-picks **every** instance's
    /// mapping jointly. Simple, but a variant can discard positions that
    /// already held — the thrash the paper's Enactor cannot remove.
    Joint,
    /// The "more sophisticated Scheduler" of §4.2: one variant per
    /// (instance, alternative) pair, each replacing a single position.
    /// The Enactor's bitmap walk can then fix exactly the failed
    /// positions while keeping every good reservation.
    PerPosition,
}

/// The Figs. 8–9 improved random scheduler.
pub struct IrsScheduler {
    loid: Loid,
    /// `NSched`: mappings generated per instance (master + n−1 variants).
    pub nsched: usize,
    /// Variant structuring (Fig. 8 joint redraw by default).
    pub style: VariantStyle,
    rng: Mutex<SmallRng>,
}

impl IrsScheduler {
    /// An IRS generating `nsched` mappings per instance, with the
    /// paper's joint variant structure.
    pub fn new(seed: u64, nsched: usize) -> Self {
        assert!(nsched >= 1, "NSched must be at least 1");
        IrsScheduler {
            loid: Loid::fresh(LoidKind::Service),
            nsched,
            style: VariantStyle::Joint,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Builder: switch to per-position variant structuring.
    pub fn per_position(mut self) -> Self {
        self.style = VariantStyle::PerPosition;
        self
    }

    /// This scheduler's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }
}

impl Scheduler for IrsScheduler {
    fn name(&self) -> &'static str {
        match self.style {
            VariantStyle::Joint => "irs",
            VariantStyle::PerPosition => "irs-per-position",
        }
    }

    fn compute_schedule(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<ScheduleRequestList, LegionError> {
        if request.is_empty() {
            return Err(LegionError::MalformedSchedule("empty placement request".into()));
        }
        let mut rng = self.rng.lock();
        // lists[instance][l] = l-th random mapping for that instance.
        let mut lists: Vec<Vec<Mapping>> = Vec::new();
        for item in &request.items {
            // One Collection lookup per class — the "fewer lookups"
            // advantage over calling the Fig. 7 generator n times.
            let report = ctx.class_report(item.class)?;
            let pool = ctx.shared_candidates_for(&report, item.constraint.as_deref())?;
            let candidates: Vec<_> = pool.iter().filter(|c| c.usable()).collect();
            if candidates.is_empty() {
                return Err(LegionError::NoUsableImplementation { class: item.class });
            }
            for _ in 0..item.count {
                let mut per_instance = Vec::with_capacity(self.nsched);
                for _ in 0..self.nsched {
                    let host = candidates.choose(&mut *rng).expect("non-empty");
                    let vault = *host.vaults.choose(&mut *rng).expect("usable");
                    per_instance.push(Mapping::new(item.class, host.host, vault));
                }
                lists.push(per_instance);
            }
        }

        // "master sched. = first item from each object inst. list"
        let master: Vec<Mapping> = lists.iter().map(|l| l[0].clone()).collect();
        let n_instances = master.len();

        let mut schedule = ScheduleRequest::master_only(master.clone());
        match self.style {
            // "for l := 2 to n: select the l-th component of the list
            // for each object instance; construct a list of all that do
            // not appear in the master list; append to list of variant
            // schedules"
            VariantStyle::Joint => {
                #[allow(clippy::needless_range_loop)] // l walks parallel per-instance lists
                for l in 1..self.nsched {
                    let replacements: Vec<(usize, Mapping)> = (0..n_instances)
                        .filter_map(|i| {
                            let m = &lists[i][l];
                            if *m == master[i] {
                                None // identical to master: thrash bait
                            } else {
                                Some((i, m.clone()))
                            }
                        })
                        .collect();
                    if !replacements.is_empty() {
                        schedule = schedule.with_variant(VariantSchedule::replacing(
                            n_instances,
                            &replacements,
                        ));
                    }
                }
            }
            // One single-position variant per (instance, alternative):
            // the Enactor can fix any failed position independently.
            VariantStyle::PerPosition => {
                #[allow(clippy::needless_range_loop)] // i pairs master with lists
                for i in 0..n_instances {
                    for l in 1..self.nsched {
                        let m = &lists[i][l];
                        if *m != master[i] {
                            schedule = schedule.with_variant(VariantSchedule::replacing(
                                n_instances,
                                &[(i, m.clone())],
                            ));
                        }
                    }
                }
            }
        }
        Ok(ScheduleRequestList { schedules: vec![schedule] })
    }
}
