//! The retry wrapper of Fig. 9, generalized over any Scheduler.
//!
//! ```text
//! IRS_Wrapper(ObjectClass list) {
//!   for i in 1 to SchedTryLimit, do {
//!     sched = IRS_Gen_Placement(ObjectClass List, NSched);
//!     for j in 1 to EnactTryLimit, do {
//!       if (make_reservations(sched) succeeded) {
//!         if (enact_placement(sched) succeeded) { return success; }
//!       }
//!     }
//!   }
//!   return failure;
//! }
//! ```
//!
//! "The Wrapper function has three global variables that limit the
//! number of times it will try to generate schedules, the number of
//! times it will attempt to enact each schedule, and the number of
//! variant schedules generated per call" (§4.2). The third (NSched) is
//! the scheduler's own; the driver carries the first two.

use crate::traits::{SchedCtx, Scheduler};
use legion_core::{EpisodeId, LegionError, Loid, PlacementRequest, SpanKind, SpanOutcome};
use legion_schedule::{Enactor, Mapping, ScheduleFeedback};
use std::sync::Arc;

/// Retry limits for the wrapper loop.
#[derive(Debug, Clone, Copy)]
pub struct DriverLimits {
    /// `SchedTryLimit`: schedule generations attempted.
    pub sched_try_limit: usize,
    /// `EnactTryLimit`: reservation+enactment attempts per schedule.
    pub enact_try_limit: usize,
}

impl Default for DriverLimits {
    fn default() -> Self {
        DriverLimits { sched_try_limit: 3, enact_try_limit: 2 }
    }
}

/// What happened during a driven placement.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Instances created (mapping → instance), in mapping order.
    pub placed: Vec<(Mapping, Loid)>,
    /// Schedule generations used.
    pub generations: usize,
    /// Reservation attempts used (across generations).
    pub reservation_rounds: usize,
    /// The final feedback (for inspection).
    pub feedback: Option<ScheduleFeedback>,
    /// The trace episode this placement ran under (`None` when the
    /// fabric's tracer is disabled). Feed it to
    /// `TraceSink::episode_spans` / `rollup_for` to replay the
    /// placement as a span tree.
    pub episode: Option<EpisodeId>,
}

/// Drives a Scheduler against an Enactor with Fig. 9's retry loops.
///
/// The driver *owns* shared handles to its scheduler and Enactor, so a
/// long-lived service (the ingress [`FrontDoor`] most of all) builds
/// one driver at construction and reuses it across every placement
/// instead of wiring borrows per call.
pub struct ScheduleDriver {
    scheduler: Arc<dyn Scheduler>,
    enactor: Arc<Enactor>,
    limits: DriverLimits,
}

impl ScheduleDriver {
    /// A driver with default limits.
    pub fn new(scheduler: Arc<dyn Scheduler>, enactor: Arc<Enactor>) -> Self {
        Self::with_limits(scheduler, enactor, DriverLimits::default())
    }

    /// A driver with explicit limits.
    pub fn with_limits(
        scheduler: Arc<dyn Scheduler>,
        enactor: Arc<Enactor>,
        limits: DriverLimits,
    ) -> Self {
        ScheduleDriver { scheduler, enactor, limits }
    }

    /// The scheduler this driver runs.
    pub fn scheduler(&self) -> &Arc<dyn Scheduler> {
        &self.scheduler
    }

    /// The Enactor this driver negotiates through.
    pub fn enactor(&self) -> &Arc<Enactor> {
        &self.enactor
    }

    /// Runs the wrapper loop to place `request`.
    ///
    /// One `place` call is one trace *episode*: the episode root span
    /// covers the whole wrapper loop, each `compute_schedule` call gets
    /// a `schedule` span (the Collection queries it issues nest inside),
    /// and the Enactor's reservation/enactment spans follow.
    pub fn place(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<DriverReport, LegionError> {
        let root = request.items.first().map(|i| i.class).unwrap_or(Loid::NIL);
        let episode = ctx.fabric.tracer().begin_episode("place", root);
        episode.attr("scheduler", self.scheduler.name());
        episode.attr("classes", request.items.len() as i64);
        let episode_id = episode.id();
        let mut generations = 0usize;
        let mut reservation_rounds = 0;
        let mut last_err = LegionError::AllSchedulesFailed { attempted: 0 };

        #[allow(clippy::explicit_counter_loop)] // generations outlives the loop for the report
        for _ in 0..self.limits.sched_try_limit {
            generations += 1;
            let sched_span = ctx.fabric.tracer().span(SpanKind::Schedule);
            sched_span.attr("scheduler", self.scheduler.name());
            sched_span.attr("generation", generations as i64);
            let sched = match self.scheduler.compute_schedule(request, ctx) {
                Ok(s) => {
                    sched_span.attr("schedules", s.schedules.len() as i64);
                    sched_span.end_ok();
                    s
                }
                Err(e) => {
                    sched_span.end_with(SpanOutcome::from_error(&e));
                    last_err = e;
                    continue;
                }
            };
            for _ in 0..self.limits.enact_try_limit {
                reservation_rounds += 1;
                let feedback = self.enactor.make_reservations(&sched);
                if !feedback.reserved() {
                    continue;
                }
                match self.enactor.enact_schedule(&feedback) {
                    Ok(placed) => {
                        episode.attr("generations", generations as i64);
                        episode.attr("placed", placed.len() as i64);
                        episode.end_with(SpanOutcome::Ok);
                        return Ok(DriverReport {
                            placed,
                            generations,
                            reservation_rounds,
                            feedback: Some(feedback),
                            episode: episode_id,
                        });
                    }
                    Err(e) => {
                        // Enactment failed after reservation; reservations
                        // were rolled back by the atomic enactor. Retry.
                        last_err = e;
                    }
                }
            }
        }
        episode.attr("generations", generations as i64);
        episode.end_with(SpanOutcome::from_error(&last_err));
        Err(last_err)
    }

    /// Runs the wrapper loop for every spec, pipelining up to `workers`
    /// placements concurrently, and returns one result per spec **in
    /// spec order**.
    ///
    /// All workers share the one [`SchedCtx`] — and with it the
    /// compiled-query cache and the Collection's snapshot storage, so N
    /// placements of the same shape compile their Collection queries
    /// once, not N times. Each placement still runs as its own trace
    /// episode: episode context lives in a per-thread stack, so
    /// concurrent episodes never interleave their span trees (the
    /// property `tests/trace_pipeline.rs` pins).
    ///
    /// `workers <= 1` degenerates to a serial loop over
    /// [`ScheduleDriver::place`]. Worker threads pull specs from a
    /// shared cursor, so a slow co-allocation on one thread never
    /// blocks the remaining specs behind it.
    pub fn place_many(
        &self,
        specs: &[PlacementSpec],
        ctx: &SchedCtx,
        workers: usize,
    ) -> Vec<Result<DriverReport, LegionError>> {
        let workers = workers.max(1).min(specs.len().max(1));
        if workers <= 1 {
            return specs.iter().map(|s| self.place(&s.request, ctx)).collect();
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        // Disjoint per-index result slots: the cursor hands each index
        // to exactly one worker, so result writes never contend on a
        // shared lock — `OnceLock` just proves the single-writer claim
        // to the borrow checker (and `set` would tell us if it broke).
        let slots: Vec<std::sync::OnceLock<Result<DriverReport, LegionError>>> =
            (0..specs.len()).map(|_| std::sync::OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let res = self.place(&spec.request, ctx);
                    slots[i].set(res).unwrap_or_else(|_| panic!("slot {i} written twice"));
                });
            }
        });
        slots.into_iter().map(|s| s.into_inner().expect("every spec placed")).collect()
    }
}

/// One entry in a [`ScheduleDriver::place_many`] batch.
#[derive(Debug, Clone, Default)]
pub struct PlacementSpec {
    /// The placement to run.
    pub request: PlacementRequest,
}

impl PlacementSpec {
    /// Wraps a placement request.
    pub fn new(request: PlacementRequest) -> Self {
        PlacementSpec { request }
    }

    /// Convenience: a spec asking for `count` instances of `class`.
    pub fn of(class: Loid, count: u32) -> Self {
        PlacementSpec { request: PlacementRequest::new().class(class, count) }
    }
}

impl From<PlacementRequest> for PlacementSpec {
    fn from(request: PlacementRequest) -> Self {
        PlacementSpec { request }
    }
}
