//! The Random Scheduling Policy — Fig. 7, faithfully.
//!
//! ```text
//! Generate_Random_Placement(ObjectClass list) {
//!   for each ObjectClass O in the list, do {
//!     query the class for available implementations
//!     query Collection for Hosts matching available implementations
//!     k = the number of instances of this class desired
//!     for i := 1 to k, do {
//!       pick a Host H at random
//!       extract list of compatible vaults from H
//!       randomly pick a compatible vault V
//!       append the target (H, V) to the master schedule
//!     }
//!   }
//!   return the master schedule
//! }
//! ```
//!
//! "There is no consideration of load, speed, memory contention,
//! communication patterns, or other factors ... The goal here is
//! simplicity, not performance." It "only builds one master schedule,
//! and does not take advantage of the variant schedule feature" — this
//! is "the equivalent of the default schedule generator for Legion
//! Classes in releases prior to 1.5".

use crate::traits::{SchedCtx, Scheduler};
use legion_core::{LegionError, Loid, LoidKind, PlacementRequest};
use legion_schedule::{Mapping, ScheduleRequestList};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The Fig. 7 random scheduler.
pub struct RandomScheduler {
    loid: Loid,
    rng: Mutex<SmallRng>,
}

impl RandomScheduler {
    /// A random scheduler with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            loid: Loid::fresh(LoidKind::Service),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// This scheduler's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn compute_schedule(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<ScheduleRequestList, LegionError> {
        if request.is_empty() {
            return Err(LegionError::MalformedSchedule("empty placement request".into()));
        }
        let mut master = Vec::with_capacity(request.total_instances() as usize);
        let mut rng = self.rng.lock();
        for item in &request.items {
            let report = ctx.class_report(item.class)?;
            let pool = ctx.shared_candidates_for(&report, item.constraint.as_deref())?;
            let candidates: Vec<_> = pool.iter().filter(|c| c.usable()).collect();
            if candidates.is_empty() {
                return Err(LegionError::NoUsableImplementation { class: item.class });
            }
            for _ in 0..item.count {
                let host = candidates.choose(&mut *rng).expect("non-empty candidates");
                let vault =
                    *host.vaults.choose(&mut *rng).expect("usable candidates have vaults");
                master.push(Mapping::new(item.class, host.host, vault));
            }
        }
        Ok(ScheduleRequestList::single(master))
    }
}
