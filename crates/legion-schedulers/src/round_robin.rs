//! A deterministic round-robin scheduler.
//!
//! Not in the paper's pseudocode, but the simplest possible "drop-in
//! module" demonstrating that third parties can substitute their own
//! Schedulers (§1, §3). Also the natural baseline between Random and
//! Load-aware in the experiments.

use crate::traits::{SchedCtx, Scheduler};
use legion_core::{LegionError, Loid, LoidKind, PlacementRequest};
use legion_schedule::{Mapping, ScheduleRequestList};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cycles instances across candidates in Collection order.
pub struct RoundRobinScheduler {
    loid: Loid,
    cursor: AtomicUsize,
}

impl RoundRobinScheduler {
    /// A fresh round-robin scheduler.
    pub fn new() -> Self {
        RoundRobinScheduler { loid: Loid::fresh(LoidKind::Service), cursor: AtomicUsize::new(0) }
    }

    /// This scheduler's identifier.
    pub fn loid(&self) -> Loid {
        self.loid
    }
}

impl Default for RoundRobinScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn compute_schedule(
        &self,
        request: &PlacementRequest,
        ctx: &SchedCtx,
    ) -> Result<ScheduleRequestList, LegionError> {
        if request.is_empty() {
            return Err(LegionError::MalformedSchedule("empty placement request".into()));
        }
        let mut master = Vec::with_capacity(request.total_instances() as usize);
        for item in &request.items {
            let report = ctx.class_report(item.class)?;
            let pool = ctx.shared_candidates_for(&report, item.constraint.as_deref())?;
            let candidates: Vec<_> = pool.iter().filter(|c| c.usable()).collect();
            if candidates.is_empty() {
                return Err(LegionError::NoUsableImplementation { class: item.class });
            }
            for _ in 0..item.count {
                let i = self.cursor.fetch_add(1, Ordering::Relaxed) % candidates.len();
                let host = &candidates[i];
                master.push(Mapping::new(item.class, host.host, host.vaults[0]));
            }
        }
        Ok(ScheduleRequestList::single(master))
    }
}
