//! Epoch-validated candidate-set cache.
//!
//! Schedulers rebuild the same candidate query on every placement, so
//! at steady state the dominant cost of a placement episode is a full
//! Collection query — linear in Collection size — even when nothing
//! relevant changed between episodes. This module caches the
//! *materialized* candidate set per compiled query text and validates
//! it with [`Collection::epoch`]: a hit costs two atomic loads and a
//! comparison instead of a sharded index probe, merge, and per-record
//! vault extraction.
//!
//! On epoch advance the cache consumes the Collection's bounded delta
//! log ([`Collection::deltas_since`]) and patches the cached set
//! incrementally — the query predicate is re-evaluated only against
//! the records that actually changed. Three situations fall back to a
//! full recompute, mirroring the push federation's gap→resync rule:
//!
//! * the log reports a [`DeltaBatch::Gap`] (the bounded log already
//!   dropped changes the cache needs),
//! * deltas are off (or the epoch moved without new deltas, e.g. a
//!   derived-attribute function was installed mid-flight),
//! * the batch is large enough that patching would cost more than the
//!   indexed recompute (see [`patch_budget`]; threshold measured in
//!   EXPERIMENTS.md E-C10).
//!
//! Correctness leans on two properties. First, every mutator bumps the
//! generation *while still holding the written shard's guard*, so a
//! reader that observes an unchanged generation cannot have missed a
//! completed mutation. Second, deltas are idempotent re-statements of
//! post-change record state (`Upsert` carries the full attribute
//! snapshot and both timestamps), so patching from a conservatively
//! old anchor — the epoch is always read *before* the query or the
//! delta pull — at worst re-applies an op the snapshot already
//! reflects, never corrupts it.
//!
//! Concurrency: lookups share a read lock; a stale entry is refreshed
//! by whichever worker reaches the entry's write lock first while the
//! rest wait and then serve the refreshed set. Under `place_many` the
//! workers therefore share one cache generation per churn event
//! instead of racing N identical full queries.

use crate::traits::Candidate;
use legion_collection::{Collection, CollectionEpoch, DeltaBatch, DeltaOp, Query};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Patch only when the delta batch is smaller than this budget;
/// otherwise recompute through the indexed query path. The churn sweep
/// in EXPERIMENTS.md E-C10 puts the patch/recompute crossover between
/// 25% and 50% churn per serve at 10k records, so the budget is a
/// quarter of the collection — with a floor so small collections
/// (where recompute is cheap but patching is cheaper still) always
/// patch.
fn patch_budget(collection_len: usize) -> usize {
    (collection_len / 4).max(64)
}

/// Monotonic counters describing how the cache has been serving.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CandidateCacheStats {
    /// Serves where the epoch matched: no evaluation work at all.
    pub hits: u64,
    /// Serves that replayed a delta batch over the cached set.
    pub patched: u64,
    /// Full computes: first touch, gap, oversized batch, deltas off.
    pub misses: u64,
    /// The subset of `misses` forced by a delta-log gap.
    pub gap_resyncs: u64,
}

struct CachedSet {
    /// The epoch the set is exact at (read *before* the compute, so
    /// validation errs toward revalidating, never toward staleness).
    epoch: CollectionEpoch,
    candidates: Arc<Vec<Candidate>>,
}

#[derive(Default)]
struct CacheEntry {
    state: RwLock<Option<CachedSet>>,
}

/// The per-[`SchedCtx`](crate::SchedCtx) candidate cache; see the
/// module docs for the validation and patching protocol.
pub struct CandidateCache {
    entries: RwLock<HashMap<String, Arc<CacheEntry>>>,
    enabled: AtomicBool,
    hits: AtomicU64,
    patched: AtomicU64,
    misses: AtomicU64,
    gap_resyncs: AtomicU64,
}

impl CandidateCache {
    pub(crate) fn new() -> Self {
        CandidateCache {
            entries: RwLock::new(HashMap::new()),
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            patched: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            gap_resyncs: AtomicU64::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        if !on {
            self.entries.write().clear();
        }
    }

    pub(crate) fn stats(&self) -> CandidateCacheStats {
        CandidateCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            patched: self.patched.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            gap_resyncs: self.gap_resyncs.load(Ordering::Relaxed),
        }
    }

    fn entry(&self, key: &str) -> Arc<CacheEntry> {
        if let Some(e) = self.entries.read().get(key) {
            return Arc::clone(e);
        }
        Arc::clone(self.entries.write().entry(key.to_string()).or_default())
    }

    /// Serves the candidate set for `query`, keyed by its source
    /// `text` (the [`SchedCtx`](crate::SchedCtx) compiled-query key).
    /// Every serve is accounted on the Collection as one query — hit
    /// and patched serves via [`Collection::note_cache_serve`], full
    /// recomputes via the query path itself with a `cache: miss` span
    /// attribute — so ledger↔trace reconciliation stays exact.
    pub(crate) fn serve(
        &self,
        collection: &Collection,
        query: &Query,
        text: &str,
    ) -> Arc<Vec<Candidate>> {
        let entry = self.entry(text);
        let epoch = collection.epoch();
        {
            let state = entry.state.read();
            if let Some(set) = state.as_ref() {
                if set.epoch == epoch {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    collection.note_cache_serve("hit", set.candidates.len(), 0);
                    return Arc::clone(&set.candidates);
                }
            }
        }

        let mut state = entry.state.write();
        // Another worker may have refreshed while we waited for the
        // write lock; revalidate before doing any work.
        let epoch = collection.epoch();
        if let Some(set) = state.as_ref() {
            if set.epoch == epoch {
                self.hits.fetch_add(1, Ordering::Relaxed);
                collection.note_cache_serve("hit", set.candidates.len(), 0);
                return Arc::clone(&set.candidates);
            }
            match collection.deltas_since(set.epoch.delta_seq) {
                DeltaBatch::Ops(ops) if ops.len() <= patch_budget(collection.len()) => {
                    let newest = ops.last().map_or(set.epoch.delta_seq, |d| d.seq);
                    let mut list: Vec<Candidate> = (*set.candidates).clone();
                    let mut reevaluated = 0u64;
                    for delta in ops {
                        apply_delta(&mut list, query, delta.op, &mut reevaluated);
                    }
                    let candidates = Arc::new(list);
                    self.patched.fetch_add(1, Ordering::Relaxed);
                    collection.note_cache_serve("patched", candidates.len(), reevaluated);
                    *state = Some(CachedSet {
                        epoch: CollectionEpoch { generation: epoch.generation, delta_seq: newest },
                        candidates: Arc::clone(&candidates),
                    });
                    return candidates;
                }
                DeltaBatch::Gap { .. } => {
                    self.gap_resyncs.fetch_add(1, Ordering::Relaxed);
                }
                // UpToDate despite an epoch mismatch (deltas off, log
                // enabled after we cached, or a derived function was
                // installed) and oversized batches both fall through to
                // the full recompute below.
                _ => {}
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let candidates = Arc::new(compute(collection, query, true));
        *state = Some(CachedSet { epoch, candidates: Arc::clone(&candidates) });
        candidates
    }
}

/// Runs the query and materializes candidates — the shared recompute
/// path (`as_miss` labels the trace span when the cache fell through).
pub(crate) fn compute(collection: &Collection, query: &Query, as_miss: bool) -> Vec<Candidate> {
    let records = if as_miss {
        collection.query_parsed_cache_miss(query)
    } else {
        collection.query_parsed(query)
    };
    records.into_iter().map(Candidate::from_record).collect()
}

/// Applies one logged change to a member-sorted candidate list.
///
/// `Upsert` re-evaluates the predicate against the full post-change
/// attribute snapshot it carries; `Touch` moves only the freshness
/// timestamp — by the delta-log contract the attributes are unchanged,
/// so the cached predicate verdict (and vault list) still stands and
/// no re-evaluation happens; `Remove` is a plain delete. All three are
/// idempotent, which is what makes replaying from a conservative
/// anchor safe.
fn apply_delta(list: &mut Vec<Candidate>, query: &Query, op: DeltaOp, reevaluated: &mut u64) {
    match op {
        DeltaOp::Upsert { member, attrs, joined_at, updated_at } => {
            *reevaluated += 1;
            let pos = list.binary_search_by_key(&member, |c| c.record.member);
            if query.matches(&attrs) {
                let rec = Arc::new(legion_collection::CollectionRecord {
                    member,
                    attrs,
                    joined_at,
                    updated_at,
                });
                let cand = Candidate::from_record(rec);
                match pos {
                    Ok(i) => list[i] = cand,
                    Err(i) => list.insert(i, cand),
                }
            } else if let Ok(i) = pos {
                list.remove(i);
            }
        }
        DeltaOp::Touch { member, updated_at } => {
            if let Ok(i) = list.binary_search_by_key(&member, |c| c.record.member) {
                let mut rec = (*list[i].record).clone();
                rec.updated_at = updated_at;
                list[i].record = Arc::new(rec);
            }
        }
        DeltaOp::Remove { member } => {
            if let Ok(i) = list.binary_search_by_key(&member, |c| c.record.member) {
                list.remove(i);
            }
        }
    }
}
