//! # legion-rms — a reproduction of *The Legion Resource Management System*
//!
//! This facade re-exports the whole workspace under one roof, mirroring
//! the architecture of the paper (Chapin, Katramatos, Karpovich,
//! Grimshaw — IPPS '99):
//!
//! | Paper component | Here |
//! |---|---|
//! | Core objects: LOIDs, attributes, reservations, Host/Vault/Class | [`core`] |
//! | The metacomputing substrate (domains, latency, failures, clock) | [`fabric`] |
//! | The Collection + query language + function injection | [`collection`] |
//! | Host objects (Unix, SMP, Batch Queue + 3 queue sims) | [`hosts`] |
//! | Vault objects and OPR storage | [`vaults`] |
//! | Schedules (master/variant + bitmaps) and the Enactor | [`schedule`] |
//! | Schedulers: Random, IRS, round-robin, load-aware, stencil, k-of-n | [`schedulers`] |
//! | The Monitor, triggers and migration | [`monitor`] |
//! | Network Objects (§6 future work, implemented) | [`network`] |
//! | Multi-tenant front door: admission, backpressure, grants | [`ingress`] |
//! | Testbeds, workloads, experiment harness | [`apps`] |
//! | The regex engine behind Collection `match()` | [`regex`] |
//! | Pipeline tracing + latency histograms (observability) | [`trace`] |
//!
//! ## Quickstart
//!
//! ```
//! use legion::apps::{Testbed, TestbedConfig};
//! use legion::core::PlacementRequest;
//! use legion::schedule::Enactor;
//! use legion::schedulers::{RandomScheduler, ScheduleDriver};
//!
//! // A 2-domain metacomputing testbed with 4 hosts per domain.
//! let tb = Testbed::build(TestbedConfig::wide(2, 4, 42));
//! let class = tb.register_class("my-app", 50, 64);
//!
//! // Fig. 3: Scheduler computes, Enactor reserves and instantiates.
//! let scheduler = std::sync::Arc::new(RandomScheduler::new(7));
//! let enactor = std::sync::Arc::new(Enactor::new(tb.fabric.clone()));
//! let driver = ScheduleDriver::new(scheduler, enactor);
//! let report = driver
//!     .place(&PlacementRequest::new().class(class, 4), &tb.ctx())
//!     .expect("placement succeeds on an idle testbed");
//! assert_eq!(report.placed.len(), 4);
//! ```

/// Core object model (re-export of `legion-core`).
pub mod core {
    pub use legion_core::*;
}

/// Simulated metacomputing fabric (re-export of `legion-fabric`).
pub mod fabric {
    pub use legion_fabric::*;
}

/// The Collection service (re-export of `legion-collection`).
pub mod collection {
    pub use legion_collection::*;
}

/// Vault objects (re-export of `legion-vaults`).
pub mod vaults {
    pub use legion_vaults::*;
}

/// Host objects (re-export of `legion-hosts`).
pub mod hosts {
    pub use legion_hosts::*;
}

/// Schedules and the Enactor (re-export of `legion-schedule`).
pub mod schedule {
    pub use legion_schedule::*;
}

/// Schedulers (re-export of `legion-schedulers`).
pub mod schedulers {
    pub use legion_schedulers::*;
}

/// The multi-tenant front door (re-export of `legion-ingress`).
pub mod ingress {
    pub use legion_ingress::*;
}

/// The Monitor and migration (re-export of `legion-monitor`).
pub mod monitor {
    pub use legion_monitor::*;
}

/// Network Objects (re-export of `legion-network`).
pub mod network {
    pub use legion_network::*;
}

/// Testbeds, workloads and experiments (re-export of `legion-apps`).
pub mod apps {
    pub use legion_apps::*;
}

/// The regex engine (re-export of `legion-regex`).
pub mod regex {
    pub use legion_regex::*;
}

/// Pipeline tracing and latency histograms (re-export of `legion-trace`).
pub mod trace {
    pub use legion_trace::*;
}

/// Commonly used items in one import.
pub mod prelude {
    pub use legion_apps::{
        run_chaos_soak, run_ingress_sim, run_rebalance_sim, seed_sweep, IngressSimConfig,
        IngressSimReport, SimRebalanceReport, SimSoakConfig, SimSoakReport, TenantSpec, Testbed,
        TestbedConfig,
    };
    pub use legion_collection::{Collection, DataCollectionDaemon, FederatedCollection};
    pub use legion_core::{
        AttrValue, AttributeDb, ClassObject, HostObject, LegionClass, LegionError, Loid,
        ObjectImplementation, PlacementContext, PlacementRequest, ReservationRequest,
        ReservationType, SimDuration, SimTime, VaultObject,
    };
    pub use legion_fabric::{
        DomainId, DomainTopology, Fabric, FaultAction, FaultCounts, FaultPlan, SimError,
        SimHandle, SimRunStats,
    };
    pub use legion_hosts::{BatchQueueHost, HostConfig, StandardHost};
    pub use legion_ingress::{
        FrontDoor, IngressConfig, IngressError, PriorityClass, Rejected, TenantId,
    };
    pub use legion_monitor::{
        migrate_object, migrate_object_with, MigrateError, MigrateFailure, Monitor,
        RebalanceConfig, Rebalancer, SweepReport, Watchdog,
    };
    pub use legion_schedule::{Enactor, EnactorConfig, Mapping, ScheduleRequestList};
    pub use legion_network::{NetworkBroker, NetworkDirectory, NetworkObject};
    pub use legion_schedulers::{
        IrsScheduler, KOfNScheduler, LoadAwareScheduler, PriceAwareScheduler, RandomScheduler,
        PlacementSpec, RoundRobinScheduler, SchedCtx, ScheduleDriver, Scheduler,
        StencilScheduler,
    };
    pub use legion_trace::{
        episode_report, latency_report, trace_json, SpanKind, SpanOutcome, TraceRollup, TraceSink,
    };
    pub use legion_vaults::{StandardVault, VaultConfig};
}
