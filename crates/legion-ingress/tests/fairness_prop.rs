//! The fair-use laws of the front door, property-tested end to end
//! through the discrete-event simulator.
//!
//! For *any* seed, *any* heavy-tailed tenant population, and *any*
//! overdrive factor (how far past its token rate each tenant pushes):
//!
//! * **Allotment** — no tenant's admitted count ever exceeds its
//!   token-bucket allotment (`burst + rate × horizon`), no matter how
//!   bursty its arrival process is.
//! * **Fairness** — two equal-class tenants, both driven well past
//!   their shared bucket rate, finish with goodput (completed
//!   placements) within a configured ratio of each other: the buckets,
//!   not arrival luck, decide who gets through.
//! * **Replay** — the whole multi-tenant run is byte-identical from one
//!   seed: same trace JSON, same ledger, same event schedule (with the
//!   LOID allocator rebased through `Loid::replay_guard`).

use legion_apps::{run_ingress_sim, IngressSimConfig, IngressSimReport, TenantSpec};
use legion_core::{Loid, SimDuration};
use legion_ingress::{ClassPolicy, IngressConfig, PriorityClass, TokenBucket};
use proptest::prelude::*;

fn horizon() -> SimDuration {
    SimDuration::from_secs(600)
}

/// Tight policies so allotments stay small enough for a fast sim: an
/// Interactive token every 12.5s, a Production token every 20s.
fn tight_ingress() -> IngressConfig {
    IngressConfig {
        policies: [
            ClassPolicy { rate_per_sec: 0.08, burst: 3, queue_capacity: 4 },
            ClassPolicy { rate_per_sec: 0.05, burst: 4, queue_capacity: 8 },
            ClassPolicy { rate_per_sec: 0.04, burst: 6, queue_capacity: 8 },
        ],
        ..IngressConfig::default()
    }
}

/// A random multi-tenant scenario: one equal-class Poisson pair driven
/// `overdrive`× past its bucket rate, plus 1–3 heavy-tailed tenants.
fn scenario(
    seed: u64,
    overdrive: f64,
    pareto: &[(u8, f64)],
) -> IngressSimConfig {
    let cfg = tight_ingress();
    let pair_rate = cfg.policy(PriorityClass::Interactive).rate_per_sec;
    let mean_gap = SimDuration::from_micros((1e6 / (pair_rate * overdrive)) as u64);
    let mut tenants = vec![
        TenantSpec::poisson("pair-a", PriorityClass::Interactive, mean_gap),
        TenantSpec::poisson("pair-b", PriorityClass::Interactive, mean_gap),
    ];
    for (i, &(class_pick, alpha)) in pareto.iter().enumerate() {
        let class = if class_pick % 2 == 0 {
            PriorityClass::Production
        } else {
            PriorityClass::BestEffort
        };
        let min_rate = cfg.policy(class).rate_per_sec;
        // Heavy-tailed bursts arriving (on average) well past the rate.
        let min_gap = SimDuration::from_micros((1e6 / (min_rate * 8.0)) as u64);
        tenants.push(TenantSpec::pareto(format!("burst-{i}"), class, min_gap, alpha));
    }
    IngressSimConfig {
        seed,
        domains: 2,
        hosts_per_domain: 3,
        tenants,
        horizon: horizon(),
        tick: SimDuration::from_secs(30),
        dwell: SimDuration::from_secs(30),
        ingress: cfg,
        trace: true,
        ..IngressSimConfig::default()
    }
}

fn run_guarded(cfg: &IngressSimConfig) -> IngressSimReport {
    let guard = Loid::replay_guard();
    guard.rebase(1 << 40);
    run_ingress_sim(cfg).unwrap_or_else(|e| panic!("{e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The three fair-use laws, from random seeds and populations.
    #[test]
    fn admission_respects_allotment_fairness_and_replay(
        seed in any::<u64>(),
        overdrive in 2.0f64..4.0,
        pareto in proptest::collection::vec((any::<u8>(), 1.1f64..2.5), 1..4),
    ) {
        let cfg = scenario(seed, overdrive, &pareto);
        let a = run_guarded(&cfg);
        let b = run_guarded(&cfg);

        // Replay: one seed fully determines the run.
        prop_assert_eq!(a.stats, b.stats, "event schedules diverged (seed={:#x})", seed);
        prop_assert_eq!(a.metrics, b.metrics, "ledger snapshots diverged (seed={:#x})", seed);
        prop_assert!(
            a.trace_json == b.trace_json,
            "trace JSON diverged between same-seed runs (seed={:#x})", seed
        );

        // Allotment: no tenant out-admits its bucket, however bursty.
        for t in &a.tenants {
            let policy = cfg.ingress.policy(t.class);
            let cap = TokenBucket::allotment(policy.rate_per_sec, policy.burst, horizon());
            prop_assert!(
                t.stats.admitted <= cap,
                "{} ({:?}) admitted {} > allotment {} (seed={:#x})",
                t.name, t.class, t.stats.admitted, cap, seed
            );
            prop_assert_eq!(
                t.stats.submitted,
                t.stats.admitted + t.stats.rejected(),
                "admission accounting leaked for {} (seed={:#x})", t.name.clone(), seed
            );
        }

        // The load was not degenerate: the overdriven pair actually hit
        // the fair-use machinery.
        let pair: Vec<_> =
            a.tenants.iter().filter(|t| t.class == PriorityClass::Interactive).collect();
        prop_assert_eq!(pair.len(), 2);
        prop_assert!(
            pair.iter().all(|t| t.stats.rejected() > 0),
            "overdrive never tripped the bucket (seed={:#x})", seed
        );
        prop_assert!(
            pair.iter().all(|t| t.stats.completed > 0),
            "a pair tenant was starved outright (seed={:#x})", seed
        );

        // Fairness: the buckets cap both tenants at the same sustained
        // rate, so goodput lands within the configured bound even though
        // their Poisson streams differ.
        let (hi, lo) = (
            pair.iter().map(|t| t.stats.completed).max().unwrap(),
            pair.iter().map(|t| t.stats.completed).min().unwrap(),
        );
        let ratio = hi as f64 / lo as f64;
        prop_assert!(
            ratio <= 1.5,
            "equal-class goodput ratio {ratio:.3} ({hi} vs {lo}) exceeds 1.5 (seed={:#x})",
            seed
        );
        let reported = a
            .fairness
            .iter()
            .find(|(c, _)| *c == PriorityClass::Interactive)
            .and_then(|(_, r)| *r)
            .expect("two interactive tenants registered");
        prop_assert!(
            (reported - ratio).abs() < 1e-9,
            "door-reported fairness {reported} disagrees with stats {ratio} (seed={:#x})",
            seed
        );
    }
}
