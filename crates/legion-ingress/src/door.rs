//! The front door itself: admission, backpressure, placement, grants.

use crate::bucket::TokenBucket;
use crate::grants::{GrantId, GrantRecord, GrantState};
use crate::tenant::{PriorityClass, TenantId, TenantStats};
use legion_core::{
    EpisodeId, LegionError, Loid, LoidKind, Opr, PlacementRequest, ReservationRequest,
    PlacementContext, ReservationToken, SimDuration, SimTime, SpanKind, SpanOutcome,
    VaultDirectory,
};
use legion_fabric::MetricsLedger;
use legion_schedule::Enactor;
use legion_schedulers::{DriverLimits, ScheduleDriver, SchedCtx, Scheduler};
use legion_trace::TraceRollup;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The fair-use envelope of one [`PriorityClass`].
#[derive(Debug, Clone, Copy)]
pub struct ClassPolicy {
    /// Sustained admissions per virtual second per tenant.
    pub rate_per_sec: f64,
    /// Token-bucket burst per tenant.
    pub burst: u32,
    /// Bounded in-flight queue per tenant (admitted, not yet concluded).
    pub queue_capacity: usize,
}

/// Front-door configuration.
#[derive(Debug, Clone, Copy)]
pub struct IngressConfig {
    /// Per-class fair-use policies, indexed by [`PriorityClass::index`].
    pub policies: [ClassPolicy; PriorityClass::COUNT],
    /// Enactor in-flight ceiling: at or above this, new admissions are
    /// shed with [`Rejected::Saturated`].
    pub saturation_limit: u64,
    /// How long a pending grant may sit unapproved, and an approved
    /// grant unconfirmed, before it expires.
    pub confirm_window: SimDuration,
    /// Retry limits handed to the [`ScheduleDriver`].
    pub limits: DriverLimits,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            policies: [
                // Interactive: fast sustained rate, fail-fast queues.
                ClassPolicy { rate_per_sec: 2.0, burst: 4, queue_capacity: 4 },
                // Production: steady rate, moderate queues.
                ClassPolicy { rate_per_sec: 1.0, burst: 4, queue_capacity: 8 },
                // Best-effort: slow sustained rate, bursty, deep queues.
                ClassPolicy { rate_per_sec: 0.25, burst: 8, queue_capacity: 16 },
            ],
            saturation_limit: 64,
            confirm_window: SimDuration::from_secs(30),
            limits: DriverLimits::default(),
        }
    }
}

impl IngressConfig {
    /// The policy for `class`.
    pub fn policy(&self, class: PriorityClass) -> ClassPolicy {
        self.policies[class.index()]
    }
}

/// Typed backpressure: why an admission was refused. Callers are
/// expected to back off (the variants say how), not retry hot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The tenant's token bucket is empty; a token accrues in
    /// `retry_in` of virtual time.
    RateLimited {
        /// Wait until the next token accrues.
        retry_in: SimDuration,
    },
    /// The tenant's bounded queue is full (admitted work not yet
    /// concluded occupies all `capacity` slots).
    QueueFull {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The Enactor tier is saturated: `in_flight >= limit` reservation
    /// negotiations are already running.
    Saturated {
        /// Negotiations in flight when the request arrived.
        in_flight: u64,
        /// The configured ceiling.
        limit: u64,
    },
}

impl Rejected {
    /// Stable label for trace attributes and metric names.
    pub fn as_str(&self) -> &'static str {
        match self {
            Rejected::RateLimited { .. } => "rate_limited",
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::Saturated { .. } => "saturated",
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::RateLimited { retry_in } => {
                write!(f, "rate limited; retry in {}us", retry_in.as_micros())
            }
            Rejected::QueueFull { capacity } => write!(f, "queue full ({capacity} slots)"),
            Rejected::Saturated { in_flight, limit } => {
                write!(f, "enactor saturated ({in_flight} >= {limit} in flight)")
            }
        }
    }
}

/// What can go wrong at the front door.
#[derive(Debug)]
pub enum IngressError {
    /// Admission refused with typed backpressure.
    Rejected(Rejected),
    /// Admitted, but the placement itself failed.
    Placement(LegionError),
    /// Unknown tenant handle.
    NoSuchTenant(TenantId),
    /// Unknown grant handle.
    NoSuchGrant(GrantId),
    /// A grant transition was attempted out of order (e.g. confirming
    /// a grant that was never approved). Carries the state it was in.
    GrantNotPending(GrantId, GrantState),
    /// The grant's confirm window lapsed before the transition.
    GrantExpired(GrantId),
}

impl std::fmt::Display for IngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngressError::Rejected(r) => write!(f, "admission rejected: {r}"),
            IngressError::Placement(e) => write!(f, "placement failed: {e}"),
            IngressError::NoSuchTenant(t) => write!(f, "no such tenant {t}"),
            IngressError::NoSuchGrant(g) => write!(f, "no such grant {g}"),
            IngressError::GrantNotPending(g, s) => {
                write!(f, "grant {g} is {s}, not pending")
            }
            IngressError::GrantExpired(g) => write!(f, "grant {g} expired unconfirmed"),
        }
    }
}

impl std::error::Error for IngressError {}

impl From<Rejected> for IngressError {
    fn from(r: Rejected) -> Self {
        IngressError::Rejected(r)
    }
}

/// Proof of admission: one occupied slot in the tenant's bounded
/// queue. Consumed by [`FrontDoor::place`] (which concludes it) or
/// released explicitly with [`FrontDoor::conclude`]. Dropping a permit
/// without concluding leaks its queue slot — the compiler's
/// `must_use` is the guard rail.
#[derive(Debug)]
#[must_use = "a permit occupies a queue slot until placed or concluded"]
pub struct Permit {
    tenant: TenantId,
}

impl Permit {
    /// The admitted tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }
}

struct TenantEntry {
    name: String,
    class: PriorityClass,
    bucket: TokenBucket,
    queue_used: usize,
    stats: TenantStats,
}

struct DoorState {
    tenants: Vec<TenantEntry>,
    /// Placement episode → admitting tenant, for per-tenant rollups.
    episodes: BTreeMap<EpisodeId, TenantId>,
    grants: BTreeMap<GrantId, GrantRecord>,
    next_grant: u64,
}

/// The multi-tenant front door in front of the [`ScheduleDriver`].
///
/// One instance per deployment; owns the scheduler, the Enactor handle
/// and a [`SchedCtx`], so tenants interact purely through
/// [`TenantId`]s and [`PlacementRequest`]s. All decisions read the
/// fabric's virtual clock — under the discrete-event scheduler the
/// door is fully deterministic.
pub struct FrontDoor {
    ctx: SchedCtx,
    enactor: Arc<Enactor>,
    /// The one driver every placement goes through, built at
    /// construction — `place`/`submit`/`submit_many` share it (and
    /// through the shared [`SchedCtx`], the compiled-query and
    /// candidate caches).
    driver: ScheduleDriver,
    /// Vault holding pending-grant ledger records.
    ledger_vault: Loid,
    config: IngressConfig,
    state: Mutex<DoorState>,
}

impl FrontDoor {
    /// Builds a door over an already-wired deployment.
    pub fn new(
        ctx: SchedCtx,
        scheduler: Arc<dyn Scheduler>,
        enactor: Arc<Enactor>,
        ledger_vault: Loid,
        config: IngressConfig,
    ) -> Self {
        let driver = ScheduleDriver::with_limits(scheduler, Arc::clone(&enactor), config.limits);
        FrontDoor {
            ctx,
            enactor,
            driver,
            ledger_vault,
            config,
            state: Mutex::new(DoorState {
                tenants: Vec::new(),
                episodes: BTreeMap::new(),
                grants: BTreeMap::new(),
                next_grant: 1,
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &IngressConfig {
        &self.config
    }

    /// The scheduler context (for callers composing extra queries).
    pub fn ctx(&self) -> &SchedCtx {
        &self.ctx
    }

    fn now(&self) -> SimTime {
        self.ctx.fabric.clock().now()
    }

    fn metrics(&self) -> &MetricsLedger {
        self.ctx.fabric.metrics()
    }

    // --- tenants ----------------------------------------------------------

    /// Registers a tenant under `class`; its token bucket starts full
    /// at the current virtual time.
    pub fn register_tenant(&self, name: impl Into<String>, class: PriorityClass) -> TenantId {
        let now = self.now();
        let policy = self.config.policy(class);
        let mut st = self.state.lock();
        let id = TenantId(st.tenants.len() as u32);
        st.tenants.push(TenantEntry {
            name: name.into(),
            class,
            bucket: TokenBucket::new(policy.rate_per_sec, policy.burst, now),
            queue_used: 0,
            stats: TenantStats::default(),
        });
        id
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.state.lock().tenants.len()
    }

    /// A tenant's priority class.
    pub fn tenant_class(&self, tenant: TenantId) -> Option<PriorityClass> {
        self.state.lock().tenants.get(tenant.index()).map(|t| t.class)
    }

    /// A tenant's registered name.
    pub fn tenant_name(&self, tenant: TenantId) -> Option<String> {
        self.state.lock().tenants.get(tenant.index()).map(|t| t.name.clone())
    }

    /// A tenant's admission accounting so far.
    pub fn stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.state.lock().tenants.get(tenant.index()).map(|t| t.stats)
    }

    /// Every tenant's `(class, stats)`, in registration order.
    pub fn all_stats(&self) -> Vec<(PriorityClass, TenantStats)> {
        self.state.lock().tenants.iter().map(|t| (t.class, t.stats)).collect()
    }

    // --- admission --------------------------------------------------------

    /// Runs the admission checks for `tenant`: Enactor saturation, the
    /// tenant's token bucket, then its bounded queue — cheapest-shed
    /// first, and the bucket is only debited if the queue has room to
    /// take the admission. Every decision is an [`SpanKind::Admission`]
    /// span and a ledger counter.
    pub fn admit(&self, tenant: TenantId) -> Result<Permit, Rejected> {
        let now = self.now();
        let m = self.metrics();
        MetricsLedger::bump(&m.ingress_submitted);
        let span = self.ctx.fabric.tracer().span(SpanKind::Admission);
        span.attr("tenant", tenant.index() as i64);

        let mut st = self.state.lock();
        let entry = &mut st.tenants[tenant.index()];
        span.attr("class", entry.class.as_str());
        entry.stats.submitted += 1;

        let in_flight = self.enactor.in_flight();
        if in_flight >= self.config.saturation_limit {
            entry.stats.rejected_saturated += 1;
            MetricsLedger::bump(&m.ingress_rejected_saturated);
            span.attr("outcome", "saturated");
            span.end_with(SpanOutcome::ResourceUnavailable);
            return Err(Rejected::Saturated {
                in_flight,
                limit: self.config.saturation_limit,
            });
        }

        let policy = self.config.policy(entry.class);
        if entry.queue_used >= policy.queue_capacity {
            entry.stats.rejected_queue += 1;
            MetricsLedger::bump(&m.ingress_rejected_queue);
            span.attr("outcome", "queue_full");
            span.end_with(SpanOutcome::ResourceUnavailable);
            return Err(Rejected::QueueFull { capacity: policy.queue_capacity });
        }

        if let Err(retry_in) = entry.bucket.try_take(now) {
            entry.stats.rejected_rate += 1;
            MetricsLedger::bump(&m.ingress_rejected_rate);
            span.attr("outcome", "rate_limited");
            span.attr("retry_in_us", retry_in.as_micros() as i64);
            span.end_with(SpanOutcome::ResourceUnavailable);
            return Err(Rejected::RateLimited { retry_in });
        }

        entry.queue_used += 1;
        entry.stats.admitted += 1;
        MetricsLedger::bump(&m.ingress_admitted);
        span.attr("outcome", "admitted");
        span.end_ok();
        Ok(Permit { tenant })
    }

    /// Releases an admitted permit without placing: frees the queue
    /// slot and records the conclusion (`success` feeds the tenant's
    /// goodput count).
    pub fn conclude(&self, permit: Permit, success: bool) {
        let m = self.metrics();
        let mut st = self.state.lock();
        let entry = &mut st.tenants[permit.tenant.index()];
        entry.queue_used = entry.queue_used.saturating_sub(1);
        if success {
            entry.stats.completed += 1;
            MetricsLedger::bump(&m.ingress_completed);
        } else {
            entry.stats.failed += 1;
            MetricsLedger::bump(&m.ingress_failed);
        }
    }

    /// Runs an admitted placement through the [`ScheduleDriver`] and
    /// concludes the permit from the result. The placement's trace
    /// episode is recorded against the tenant, which is what powers
    /// [`FrontDoor::tenant_rollups`] / [`FrontDoor::class_rollups`].
    pub fn place(
        &self,
        permit: Permit,
        request: &PlacementRequest,
    ) -> Result<legion_schedulers::DriverReport, LegionError> {
        let tenant = permit.tenant;
        let result = self.driver.place(request, &self.ctx);
        if let Ok(report) = &result {
            if let Some(ep) = report.episode {
                self.state.lock().episodes.insert(ep, tenant);
            }
        }
        self.conclude(permit, result.is_ok());
        result
    }

    /// One-shot: admit then place. The common path for open-loop
    /// clients; rejections and placement failures both surface typed.
    pub fn submit(
        &self,
        tenant: TenantId,
        request: &PlacementRequest,
    ) -> Result<legion_schedulers::DriverReport, IngressError> {
        let permit = self.admit(tenant)?;
        self.place(permit, request).map_err(IngressError::Placement)
    }

    /// The coalescing batcher: admits every submission in order, then
    /// drains the admitted permits through one
    /// [`ScheduleDriver::place_many`] batch over `workers` threads.
    /// Results come back in submission order — rejections keep their
    /// slot as typed [`IngressError::Rejected`] values, and every
    /// admitted permit is concluded from its placement outcome exactly
    /// as [`FrontDoor::submit`] would.
    ///
    /// Batching is what makes concurrent tenants *share* the candidate
    /// cache instead of racing it: the batch's placements validate
    /// against one Collection epoch, so N same-class requests cost one
    /// query (or one delta patch) plus N−1 cache hits rather than N
    /// full queries.
    pub fn submit_many(
        &self,
        submissions: &[(TenantId, PlacementRequest)],
        workers: usize,
    ) -> Vec<Result<legion_schedulers::DriverReport, IngressError>> {
        let mut out: Vec<Option<Result<legion_schedulers::DriverReport, IngressError>>> =
            (0..submissions.len()).map(|_| None).collect();
        let mut permits: Vec<(usize, Permit)> = Vec::new();
        let mut specs: Vec<legion_schedulers::PlacementSpec> = Vec::new();
        for (i, (tenant, request)) in submissions.iter().enumerate() {
            match self.admit(*tenant) {
                Ok(permit) => {
                    permits.push((i, permit));
                    specs.push(legion_schedulers::PlacementSpec::new(request.clone()));
                }
                Err(rejected) => out[i] = Some(Err(rejected.into())),
            }
        }
        let results = self.driver.place_many(&specs, &self.ctx, workers);
        for ((i, permit), result) in permits.into_iter().zip(results) {
            if let Ok(report) = &result {
                if let Some(ep) = report.episode {
                    self.state.lock().episodes.insert(ep, permit.tenant);
                }
            }
            self.conclude(permit, result.is_ok());
            out[i] = Some(result.map_err(IngressError::Placement));
        }
        out.into_iter().map(|slot| slot.expect("every submission answered")).collect()
    }

    // --- grants -----------------------------------------------------------

    /// Requests a long-lived reservation grant: consumes one admission
    /// token from the tenant's bucket and writes the pending record
    /// into the vault-backed ledger. The grant must be approved and
    /// confirmed within the configured window or it expires (releasing
    /// the token).
    pub fn request_grant(
        &self,
        tenant: TenantId,
        class_loid: Loid,
        exec_vault: Loid,
        duration: SimDuration,
    ) -> Result<GrantId, IngressError> {
        let now = self.now();
        let m = self.metrics();
        let span = self.ctx.fabric.tracer().span(SpanKind::ReservationGrant);
        span.attr("op", "request");
        span.attr("tenant", tenant.index() as i64);
        let mut st = self.state.lock();
        let Some(entry) = st.tenants.get_mut(tenant.index()) else {
            span.end_with(SpanOutcome::Malformed);
            return Err(IngressError::NoSuchTenant(tenant));
        };
        let class = entry.class;
        if let Err(retry_in) = entry.bucket.try_take(now) {
            MetricsLedger::bump(&m.ingress_rejected_rate);
            span.attr("outcome", "rate_limited");
            span.end_with(SpanOutcome::ResourceUnavailable);
            return Err(IngressError::Rejected(Rejected::RateLimited { retry_in }));
        }
        let id = GrantId(st.next_grant);
        st.next_grant += 1;
        let record = GrantRecord {
            id,
            tenant,
            class,
            class_loid,
            vault: exec_vault,
            host: None,
            duration,
            state: GrantState::Requested,
            token: None,
            requested_at: now,
            deadline: now + self.config.confirm_window,
            record: Loid::fresh(LoidKind::Instance),
        };
        // Persist the pending record before exposing the id: the ledger
        // is the recovery source of truth for in-flight grants.
        if let Some(vault) = self.ctx.fabric.lookup_vault(self.ledger_vault) {
            let opr = Opr::new(record.record, class_loid, now, record.encode())
                .with_memory_mb(0)
                .with_cpu_centis(0);
            if let Err(e) = vault.store_opr(opr) {
                // Ledger write failed: undo the admission and refuse.
                st.tenants[tenant.index()].bucket.refund();
                span.end_with(SpanOutcome::from_error(&e));
                return Err(IngressError::Placement(e));
            }
        }
        MetricsLedger::bump(&m.grants_requested);
        st.grants.insert(id, record);
        span.attr("grant", id.0 as i64);
        span.end_ok();
        Ok(id)
    }

    /// Approves a requested grant against `host`: makes the host-side
    /// reservation (confirm window as its timeout) and re-saves the
    /// ledger record. If the host is gone or refuses, the grant is
    /// *reconciled*: ledger record deleted, admission token refunded,
    /// state `Denied` — and the underlying typed [`LegionError`] is
    /// returned so the caller sees exactly what the host said.
    pub fn approve_grant(&self, id: GrantId, host: Loid) -> Result<(), IngressError> {
        let now = self.now();
        let span = self.ctx.fabric.tracer().span(SpanKind::ReservationGrant);
        span.attr("op", "approve");
        span.attr("grant", id.0 as i64);

        // Snapshot what we need, then release the lock across the host
        // call (hosts charge simulated latency and may call back into
        // the fabric).
        let (class_loid, vault, duration, deadline) = {
            let st = self.state.lock();
            let Some(g) = st.grants.get(&id) else {
                span.end_with(SpanOutcome::Malformed);
                return Err(IngressError::NoSuchGrant(id));
            };
            if g.state != GrantState::Requested {
                span.end_with(SpanOutcome::Malformed);
                return Err(IngressError::GrantNotPending(id, g.state));
            }
            (g.class_loid, g.vault, g.duration, g.deadline)
        };
        if now > deadline {
            self.expire_grant(id, &span);
            return Err(IngressError::GrantExpired(id));
        }

        let reservation = self.ctx.fabric.lookup_host(host).map_or(
            Err(LegionError::NoSuchHost(host)),
            |h| {
                let req = ReservationRequest::instantaneous(class_loid, vault, duration);
                let req = ReservationRequest {
                    timeout: Some(self.config.confirm_window),
                    ..req
                };
                h.make_reservation(&req, now)
            },
        );

        let m = self.metrics();
        let mut st = self.state.lock();
        match reservation {
            Ok(token) => {
                let confirm_by = now + self.config.confirm_window;
                let g = st.grants.get_mut(&id).expect("grant present");
                g.state = GrantState::Approved;
                g.host = Some(host);
                g.token = Some(token);
                g.deadline = confirm_by;
                let (record_loid, encoded) = (g.record, g.encode());
                Self::resave_ledger(&self.ctx, self.ledger_vault, record_loid, now, encoded);
                MetricsLedger::bump(&m.grants_approved);
                span.attr("outcome", "approved");
                span.end_ok();
                Ok(())
            }
            Err(e) => {
                // Reconcile: the pending record leaves the ledger, the
                // tenant gets its admission token back.
                let g = st.grants.get_mut(&id).expect("grant present");
                g.state = GrantState::Denied;
                let (tenant, record_loid) = (g.tenant, g.record);
                if let Some(v) = self.ctx.fabric.lookup_vault(self.ledger_vault) {
                    let _ = v.delete_opr(record_loid);
                }
                st.tenants[tenant.index()].bucket.refund();
                MetricsLedger::bump(&m.grants_denied);
                span.attr("outcome", "denied");
                span.end_with(SpanOutcome::from_error(&e));
                Err(IngressError::Placement(e))
            }
        }
    }

    /// Confirms an approved grant, surrendering its
    /// [`ReservationToken`] to the tenant. Confirming after the window
    /// expires the grant instead (token refunded, reservation
    /// cancelled) and returns [`IngressError::GrantExpired`].
    pub fn confirm_grant(&self, id: GrantId) -> Result<ReservationToken, IngressError> {
        let now = self.now();
        let span = self.ctx.fabric.tracer().span(SpanKind::ReservationGrant);
        span.attr("op", "confirm");
        span.attr("grant", id.0 as i64);
        {
            let st = self.state.lock();
            let Some(g) = st.grants.get(&id) else {
                span.end_with(SpanOutcome::Malformed);
                return Err(IngressError::NoSuchGrant(id));
            };
            if g.state != GrantState::Approved {
                span.end_with(SpanOutcome::Malformed);
                return Err(IngressError::GrantNotPending(id, g.state));
            }
            if now > g.deadline {
                drop(st);
                self.expire_grant(id, &span);
                return Err(IngressError::GrantExpired(id));
            }
        }
        let m = self.metrics();
        let mut st = self.state.lock();
        let g = st.grants.get_mut(&id).expect("grant present");
        g.state = GrantState::Confirmed;
        let token = g.token.clone().expect("approved grant has a token");
        let record_loid = g.record;
        // Confirmed grants leave the pending ledger: the token is now
        // the tenant's to present, nothing is left to reconcile.
        if let Some(v) = self.ctx.fabric.lookup_vault(self.ledger_vault) {
            let _ = v.delete_opr(record_loid);
        }
        MetricsLedger::bump(&m.grants_confirmed);
        span.attr("outcome", "confirmed");
        span.end_ok();
        Ok(token)
    }

    /// Expires every pending grant whose deadline passed: cancels the
    /// host reservation (if approved), deletes the ledger record, and
    /// refunds the tenant's admission token. Returns how many expired.
    /// Deployments call this from a periodic sim task.
    pub fn expire_due_grants(&self) -> usize {
        let now = self.now();
        let due: Vec<GrantId> = self
            .state
            .lock()
            .grants
            .values()
            .filter(|g| g.state.is_pending() && now > g.deadline)
            .map(|g| g.id)
            .collect();
        for &id in &due {
            let span = self.ctx.fabric.tracer().span(SpanKind::ReservationGrant);
            span.attr("op", "expire");
            span.attr("grant", id.0 as i64);
            self.expire_grant(id, &span);
            span.end_ok();
        }
        due.len()
    }

    /// A grant's current record.
    pub fn grant(&self, id: GrantId) -> Option<GrantRecord> {
        self.state.lock().grants.get(&id).cloned()
    }

    /// Whether the ledger vault currently holds a pending record for
    /// `id` (reconciliation checks in tests).
    pub fn ledger_holds(&self, id: GrantId) -> bool {
        let Some(record) = self.state.lock().grants.get(&id).map(|g| g.record) else {
            return false;
        };
        self.ctx
            .fabric
            .lookup_vault(self.ledger_vault)
            .is_some_and(|v| v.holds(record))
    }

    fn expire_grant(&self, id: GrantId, span: &legion_trace::SpanGuard) {
        let m = self.metrics();
        let mut st = self.state.lock();
        let Some(g) = st.grants.get_mut(&id) else { return };
        if !g.state.is_pending() {
            return;
        }
        let host_token = match (&g.host, &g.token) {
            (Some(h), Some(t)) => Some((*h, t.clone())),
            _ => None,
        };
        g.state = GrantState::Expired;
        let (tenant, record_loid) = (g.tenant, g.record);
        if let Some(v) = self.ctx.fabric.lookup_vault(self.ledger_vault) {
            let _ = v.delete_opr(record_loid);
        }
        st.tenants[tenant.index()].bucket.refund();
        drop(st);
        // Cancel outside the door lock; a dead host just means there is
        // nothing left to cancel.
        if let Some((host, token)) = host_token {
            if let Some(h) = self.ctx.fabric.lookup_host(host) {
                let _ = h.cancel_reservation(&token);
            }
        }
        MetricsLedger::bump(&m.grants_expired);
        span.attr("outcome", "expired");
    }

    fn resave_ledger(ctx: &SchedCtx, ledger: Loid, record: Loid, now: SimTime, bytes: Vec<u8>) {
        if let Some(v) = ctx.fabric.lookup_vault(ledger) {
            if let Ok(prev) = v.fetch_opr(record) {
                let _ = v.store_opr(prev.resaved(now, bytes));
            }
        }
    }

    // --- rollups and fairness ---------------------------------------------

    /// The tenant a placement episode was admitted for, if any.
    pub fn episode_tenant(&self, episode: EpisodeId) -> Option<TenantId> {
        self.state.lock().episodes.get(&episode).copied()
    }

    /// Per-tenant trace rollups (index = tenant index): each tenant's
    /// placement episodes folded into its own latency histograms, in
    /// one pass over the sink.
    pub fn tenant_rollups(&self) -> Vec<TraceRollup> {
        let st = self.state.lock();
        let episodes = st.episodes.clone();
        let groups = st.tenants.len();
        drop(st);
        self.ctx
            .fabric
            .tracer()
            .rollup_grouped(groups, |ep| episodes.get(&ep).map(|t| t.index()))
    }

    /// Per-priority-class trace rollups (index =
    /// [`PriorityClass::index`]) — the source of the per-class p50/p95/
    /// p99 placement latency the admission bench publishes.
    pub fn class_rollups(&self) -> Vec<TraceRollup> {
        let st = self.state.lock();
        let episodes = st.episodes.clone();
        let class_of: Vec<PriorityClass> = st.tenants.iter().map(|t| t.class).collect();
        drop(st);
        self.ctx.fabric.tracer().rollup_grouped(PriorityClass::COUNT, |ep| {
            episodes.get(&ep).map(|t| class_of[t.index()].index())
        })
    }

    /// Max/min goodput (completed placements) across `class`'s tenants:
    /// `1.0` is perfectly fair, `None` when the class has fewer than
    /// two tenants, `f64::INFINITY` when a tenant was starved to zero.
    pub fn fairness_ratio(&self, class: PriorityClass) -> Option<f64> {
        let st = self.state.lock();
        let completed: Vec<u64> = st
            .tenants
            .iter()
            .filter(|t| t.class == class)
            .map(|t| t.stats.completed)
            .collect();
        if completed.len() < 2 {
            return None;
        }
        let max = *completed.iter().max().expect("nonempty");
        let min = *completed.iter().min().expect("nonempty");
        if min == 0 {
            return Some(if max == 0 { 1.0 } else { f64::INFINITY });
        }
        Some(max as f64 / min as f64)
    }
}

impl std::fmt::Debug for FrontDoor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FrontDoor")
            .field("tenants", &st.tenants.len())
            .field("grants", &st.grants.len())
            .field("saturation_limit", &self.config.saturation_limit)
            .finish()
    }
}
