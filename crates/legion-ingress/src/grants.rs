//! Reservation-grant records: the request → approve → confirm workflow.
//!
//! A grant is the front door's long-lived cousin of an instantaneous
//! reservation. A tenant *requests* capacity (consuming one admission
//! token), an operator or policy *approves* it (making the host-side
//! reservation), and the tenant *confirms* within a window to take the
//! [`ReservationToken`]. While pending, the grant is held in a
//! vault-backed ledger — an [`Opr`](legion_core::Opr) per grant — so a
//! restarted front door can reconcile what was in flight. Grants that
//! are never confirmed expire: the host reservation is cancelled, the
//! admission token refunded, and the ledger record deleted.

use crate::tenant::{PriorityClass, TenantId};
use legion_core::{Loid, ReservationToken, SimDuration, SimTime};

/// Handle for one grant, unique per [`FrontDoor`](crate::FrontDoor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GrantId(pub(crate) u64);

impl std::fmt::Display for GrantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grant-{}", self.0)
    }
}

/// Where a grant is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantState {
    /// Requested by the tenant; not yet approved. Expires if not
    /// approved within the confirm window.
    Requested,
    /// Approved: a host reservation is held. Expires (cancelling the
    /// reservation) if the tenant does not confirm in time.
    Approved,
    /// Confirmed: the tenant holds the reservation token. Terminal.
    Confirmed,
    /// Expired unconfirmed; token refunded, reservation cancelled.
    /// Terminal.
    Expired,
    /// Approval failed (host down / refused) and the ledger was
    /// reconciled; token refunded. Terminal.
    Denied,
}

impl GrantState {
    /// Stable lowercase name (trace attribute / ledger encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            GrantState::Requested => "requested",
            GrantState::Approved => "approved",
            GrantState::Confirmed => "confirmed",
            GrantState::Expired => "expired",
            GrantState::Denied => "denied",
        }
    }

    /// Whether the grant can still move (pending states keep a ledger
    /// record and an admission token; terminal states hold neither
    /// except `Confirmed`, whose token went to the tenant).
    pub fn is_pending(self) -> bool {
        matches!(self, GrantState::Requested | GrantState::Approved)
    }
}

impl std::fmt::Display for GrantState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One grant's full record, as kept by the door (and mirrored, while
/// pending, into the vault-backed ledger).
#[derive(Debug, Clone)]
pub struct GrantRecord {
    /// This grant.
    pub id: GrantId,
    /// The requesting tenant.
    pub tenant: TenantId,
    /// The tenant's priority class at request time.
    pub class: PriorityClass,
    /// The object class capacity is granted for.
    pub class_loid: Loid,
    /// The execution vault the reservation will encode.
    pub vault: Loid,
    /// The host holding the reservation (set at approval).
    pub host: Option<Loid>,
    /// Reserved service duration.
    pub duration: SimDuration,
    /// Lifecycle state.
    pub state: GrantState,
    /// The host's token (set at approval, surrendered at confirm).
    pub token: Option<ReservationToken>,
    /// When the grant was requested.
    pub requested_at: SimTime,
    /// Deadline: a `Requested` grant must be approved and a `Approved`
    /// grant confirmed by this instant, or it expires.
    pub deadline: SimTime,
    /// LOID of the ledger record (the OPR's object id).
    pub record: Loid,
}

impl GrantRecord {
    /// Serializes the record for its ledger OPR. Human-readable on
    /// purpose — the ledger is an audit trail, and nothing ever parses
    /// it back except tests.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "grant={} tenant={} class={} duration_us={} state={} host={} deadline_us={}",
            self.id.0,
            self.tenant.index(),
            self.class.as_str(),
            self.duration.as_micros(),
            self.state.as_str(),
            self.host.map(|h| h.to_string()).unwrap_or_else(|| "-".into()),
            self.deadline.as_micros(),
        )
        .into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::LoidKind;

    #[test]
    fn state_names_and_pendingness() {
        assert!(GrantState::Requested.is_pending());
        assert!(GrantState::Approved.is_pending());
        assert!(!GrantState::Confirmed.is_pending());
        assert!(!GrantState::Expired.is_pending());
        assert!(!GrantState::Denied.is_pending());
        assert_eq!(GrantState::Approved.as_str(), "approved");
    }

    #[test]
    fn encode_mentions_state_and_ids() {
        let r = GrantRecord {
            id: GrantId(7),
            tenant: TenantId(2),
            class: PriorityClass::Production,
            class_loid: Loid::synthetic(LoidKind::Class, 1),
            vault: Loid::synthetic(LoidKind::Vault, 2),
            host: None,
            duration: SimDuration::from_secs(60),
            state: GrantState::Requested,
            token: None,
            requested_at: SimTime::ZERO,
            deadline: SimTime::from_secs(30),
            record: Loid::synthetic(LoidKind::Instance, 3),
        };
        let s = String::from_utf8(r.encode()).unwrap();
        assert!(s.contains("grant=7"));
        assert!(s.contains("state=requested"));
        assert!(s.contains("host=-"));
    }
}
