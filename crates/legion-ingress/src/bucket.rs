//! Deterministic token buckets over the virtual clock.

use legion_core::{SimDuration, SimTime};

/// One token = one admission. Stored in millionths ("micro-tokens") so
/// fractional sustained rates refill exactly under integer arithmetic —
/// the bucket's state after any event sequence is a pure function of
/// (rate, burst, take/refund sequence, virtual timestamps), which is
/// what makes admission decisions byte-identical across replays.
const MICRO: u64 = 1_000_000;

/// A token bucket metering one tenant's admissions.
///
/// Refill happens lazily on access: `level += rate * elapsed`, capped at
/// `burst`. Taking requires one whole token; on refusal the caller gets
/// the exact virtual-time wait until the next token accrues, so typed
/// `RateLimited` rejections can tell open-loop clients when to retry.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Sustained refill rate, micro-tokens per virtual second.
    rate_micro_per_sec: u64,
    /// Capacity, micro-tokens.
    burst_micro: u64,
    /// Current level, micro-tokens.
    level_micro: u64,
    /// Virtual time of the last refill.
    refilled_at: SimTime,
}

impl TokenBucket {
    /// A bucket sustaining `rate_per_sec` admissions per virtual second
    /// with capacity `burst`, starting full at `now`.
    pub fn new(rate_per_sec: f64, burst: u32, now: SimTime) -> Self {
        let rate = (rate_per_sec.max(0.0) * MICRO as f64) as u64;
        let burst_micro = u64::from(burst.max(1)) * MICRO;
        TokenBucket {
            rate_micro_per_sec: rate,
            burst_micro,
            level_micro: burst_micro,
            refilled_at: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.refilled_at {
            return;
        }
        let dt_us = now.since(self.refilled_at).as_micros();
        let gained = (u128::from(dt_us) * u128::from(self.rate_micro_per_sec)
            / u128::from(MICRO)) as u64;
        self.level_micro = (self.level_micro + gained).min(self.burst_micro);
        self.refilled_at = now;
    }

    /// Takes one token, or reports how long until one accrues.
    pub fn try_take(&mut self, now: SimTime) -> Result<(), SimDuration> {
        self.refill(now);
        if self.level_micro >= MICRO {
            self.level_micro -= MICRO;
            return Ok(());
        }
        if self.rate_micro_per_sec == 0 {
            // Never refills: effectively a hard cap at the burst.
            return Err(SimDuration::from_secs(u64::MAX / 2_000_000));
        }
        let deficit = MICRO - self.level_micro;
        let wait_us = (u128::from(deficit) * u128::from(MICRO))
            .div_ceil(u128::from(self.rate_micro_per_sec)) as u64;
        Err(SimDuration::from_micros(wait_us.max(1)))
    }

    /// Returns one token to the bucket (capped at the burst) — the
    /// release path for admissions that were undone, e.g. a pending
    /// reservation grant that expired unconfirmed.
    pub fn refund(&mut self) {
        self.level_micro = (self.level_micro + MICRO).min(self.burst_micro);
    }

    /// Whole tokens currently available at `now` (diagnostics).
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.level_micro / MICRO
    }

    /// The maximum number of admissions this bucket can have granted by
    /// `elapsed` after its creation: the initial burst plus sustained
    /// accrual, plus any refunds the caller performed. The fairness
    /// property tests pin admitted counts against exactly this bound.
    pub fn allotment(rate_per_sec: f64, burst: u32, elapsed: SimDuration) -> u64 {
        let rate = (rate_per_sec.max(0.0) * MICRO as f64) as u64;
        let accrued =
            (u128::from(elapsed.as_micros()) * u128::from(rate) / u128::from(MICRO)) as u64;
        u64::from(burst.max(1)) + accrued / MICRO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_rate_limits() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(1.0, 3, t0);
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0).is_ok());
        let wait = b.try_take(t0).unwrap_err();
        assert_eq!(wait, SimDuration::from_secs(1), "one token per second");
        // After the advertised wait, exactly one token is available.
        let t1 = t0 + wait;
        assert!(b.try_take(t1).is_ok());
        assert!(b.try_take(t1).is_err());
    }

    #[test]
    fn fractional_rates_accrue_exactly() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(0.5, 1, t0);
        assert!(b.try_take(t0).is_ok());
        assert_eq!(b.try_take(t0).unwrap_err(), SimDuration::from_secs(2));
        assert!(b.try_take(t0 + SimDuration::from_secs(2)).is_ok());
    }

    #[test]
    fn refund_caps_at_burst() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(1.0, 2, t0);
        b.refund();
        b.refund();
        assert_eq!(b.available(t0), 2, "refunds never exceed the burst");
        assert!(b.try_take(t0).is_ok());
        b.refund();
        assert_eq!(b.available(t0), 2);
    }

    #[test]
    fn allotment_bounds_any_take_sequence() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(2.0, 4, t0);
        let horizon = SimDuration::from_secs(10);
        let mut taken = 0u64;
        // Greedy taker: drain at every microsecond-granularity step.
        for step in 0..10_000u64 {
            let now = t0 + SimDuration::from_micros(step * horizon.as_micros() / 10_000);
            while b.try_take(now).is_ok() {
                taken += 1;
            }
        }
        assert!(taken <= TokenBucket::allotment(2.0, 4, horizon), "taken {taken}");
        assert!(taken >= 20, "greedy taker should get close to the allotment: {taken}");
    }

    #[test]
    fn zero_rate_is_a_hard_cap() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(0.0, 2, t0);
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0 + SimDuration::from_secs(1 << 30)).is_err());
    }
}
