//! The multi-tenant service front door.
//!
//! Legion's hosts are autonomous arbiters of their own resources
//! (paper §2.1) — but the *system* needs one too: without a front door,
//! any caller can drive [`ScheduleDriver::place`] directly and
//! monopolise the Enactor tier. This crate is the in-process ingress
//! layer of ROADMAP item 3, the broker shape Nimrod/G puts one level up
//! from this paper's world:
//!
//! * **Identity** — callers are registered [`TenantId`]s, each in a
//!   [`PriorityClass`] that sets its fair-use envelope.
//! * **Fair-use admission** — per-tenant [`TokenBucket`]s (configurable
//!   sustained rate and burst per priority class) meter how fast each
//!   tenant may start placements; no tenant can starve another however
//!   hard it hammers the door.
//! * **Backpressure** — bounded per-tenant queues and an Enactor
//!   saturation signal turn overload into *typed* [`Rejected`] outcomes
//!   (`RateLimited`, `QueueFull`, `Saturated`) instead of unbounded
//!   queueing, so open-loop clients learn to back off.
//! * **Reservation workflows** — long-lived reservations go through a
//!   request → approve → confirm lifecycle ([`FrontDoor::request_grant`]
//!   and friends): pending grants are held in a vault-backed ledger and
//!   expire (releasing their admission token *and* the host-side
//!   reservation) if the tenant never confirms.
//!
//! Everything is deterministic under the discrete-event scheduler: the
//! buckets read the fabric's virtual clock, admission decisions are
//! pure functions of (config, clock, counters), and the whole door is
//! soak-tested by `legion_apps::sim::run_ingress_sim`'s open-loop
//! tenant arrival processes.
//!
//! [`ScheduleDriver::place`]: legion_schedulers::ScheduleDriver::place

mod bucket;
mod door;
mod grants;
mod tenant;

pub use bucket::TokenBucket;
pub use door::{ClassPolicy, FrontDoor, IngressConfig, IngressError, Permit, Rejected};
pub use grants::{GrantId, GrantRecord, GrantState};
pub use tenant::{PriorityClass, TenantId, TenantStats};
