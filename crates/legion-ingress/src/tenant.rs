//! Tenant identity, priority classes and per-tenant accounting.

/// Handle for a registered tenant — an index into the door's
/// registration-ordered tenant table. Stable for the life of the
/// [`FrontDoor`](crate::FrontDoor) that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub(crate) u32);

impl TenantId {
    /// The tenant's position in registration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// The service class a tenant is admitted under. Each class carries its
/// own fair-use envelope ([`ClassPolicy`](crate::ClassPolicy)): rate,
/// burst and queue depth. Mirrors the paper's workload split — Legion
/// serves both long-lived services and batch work from one pool, and
/// the front door is where that split becomes an admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Latency-sensitive interactive services: highest sustained rate,
    /// small bursts, shallow queues (fail fast rather than queue).
    Interactive,
    /// Steady production services: moderate rate, moderate queues.
    Production,
    /// Batch / best-effort work: lowest rate, big bursts tolerated,
    /// deepest queues.
    BestEffort,
}

impl PriorityClass {
    /// Number of classes (array-table dimension).
    pub const COUNT: usize = 3;

    /// All classes, in priority order.
    pub const ALL: [PriorityClass; Self::COUNT] = [
        PriorityClass::Interactive,
        PriorityClass::Production,
        PriorityClass::BestEffort,
    ];

    /// Dense index for per-class tables.
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Production => 1,
            PriorityClass::BestEffort => 2,
        }
    }

    /// Stable lowercase name (used as a trace attribute and in bench
    /// metric names, so changing these changes `BENCH_admission.json`).
    pub fn as_str(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Production => "production",
            PriorityClass::BestEffort => "besteffort",
        }
    }
}

impl std::fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-tenant admission accounting, kept by the door and snapshotted
/// into sim reports. `admitted == completed + failed + in-queue`, and
/// `submitted == admitted + the three rejection counts`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests presented at the door.
    pub submitted: u64,
    /// Requests past the bucket, queue and saturation checks.
    pub admitted: u64,
    /// Rejected: token bucket empty.
    pub rejected_rate: u64,
    /// Rejected: bounded queue full.
    pub rejected_queue: u64,
    /// Rejected: Enactor tier saturated.
    pub rejected_saturated: u64,
    /// Admitted requests whose placement succeeded — the tenant's
    /// goodput numerator for fairness ratios.
    pub completed: u64,
    /// Admitted requests whose placement failed.
    pub failed: u64,
}

impl TenantStats {
    /// Requests admitted but not yet concluded (queue occupancy).
    pub fn in_queue(&self) -> u64 {
        self.admitted
            .saturating_sub(self.completed)
            .saturating_sub(self.failed)
    }

    /// Total typed rejections.
    pub fn rejected(&self) -> u64 {
        self.rejected_rate + self.rejected_queue + self.rejected_saturated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_roundtrips() {
        for (i, c) in PriorityClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.as_str().is_empty());
        }
    }

    #[test]
    fn stats_accounting_identities() {
        let s = TenantStats {
            submitted: 10,
            admitted: 6,
            rejected_rate: 2,
            rejected_queue: 1,
            rejected_saturated: 1,
            completed: 4,
            failed: 1,
        };
        assert_eq!(s.rejected(), 4);
        assert_eq!(s.submitted, s.admitted + s.rejected());
        assert_eq!(s.in_queue(), 1);
    }
}
