//! Trace-vs-ledger reconciliation.
//!
//! The [`MetricsLedger`](crate::MetricsLedger) and the trace sink count
//! the same pipeline independently: counters bump at each operation,
//! spans open and close around it. When tracing is enabled over a whole
//! run, the two views must agree exactly — each mismatch means an
//! instrumentation point drifted from its counter. [`reconcile_trace`]
//! checks every counter that has a span-level equivalent and reports
//! the disagreements, so tests can assert a trace export is a faithful
//! account of a run (the acceptance bar for the observability layer).

use crate::metrics::MetricsSnapshot;
use legion_core::SpanKind;
use legion_trace::TraceRollup;

/// One counter↔span correspondence that failed to reconcile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The ledger counter name.
    pub counter: &'static str,
    /// The ledger's count over the reconciled window.
    pub ledger: u64,
    /// What the trace rollup says.
    pub trace: u64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ledger={} trace={}", self.counter, self.ledger, self.trace)
    }
}

/// The counter↔span mapping: which rollup quantity must equal which
/// ledger counter. Every pair is exact — the instrumentation opens one
/// span per counter bump (or, for `objects_started`, sums the spans'
/// `started` attributes).
fn expectations(rollup: &TraceRollup, delta: &MetricsSnapshot) -> Vec<Mismatch> {
    let pairs: [(&'static str, u64, u64); 8] = [
        ("collection_queries", delta.collection_queries, rollup.count(SpanKind::CollectionQuery)),
        ("schedules_attempted", delta.schedules_attempted, rollup.count(SpanKind::ReserveAttempt)),
        ("enactor_backoffs", delta.enactor_backoffs, rollup.count(SpanKind::Backoff)),
        (
            "enact_instantiations",
            delta.enact_instantiations,
            rollup.count(SpanKind::EnactInstantiation),
        ),
        ("objects_started", delta.objects_started, rollup.objects_started),
        ("monitor_restarts", delta.monitor_restarts, rollup.ok_count(SpanKind::RestartFromOpr)),
        (
            "reservations_cancelled",
            delta.reservations_cancelled,
            rollup.ok_count(SpanKind::CancelReservation),
        ),
        ("schedules_reserved", delta.schedules_reserved, rollup.ok_count(SpanKind::MakeReservations)),
    ];
    pairs
        .into_iter()
        .map(|(counter, ledger, trace)| Mismatch { counter, ledger, trace })
        .collect()
}

/// Checks every counter↔span correspondence between a trace rollup and
/// a ledger delta covering the same window. Returns the mismatches
/// (empty = the trace exactly accounts for the ledger).
pub fn reconcile_trace(rollup: &TraceRollup, delta: &MetricsSnapshot) -> Vec<Mismatch> {
    expectations(rollup, delta)
        .into_iter()
        .filter(|m| m.ledger != m.trace)
        .collect()
}

/// Renders the full reconciliation table (matching rows included) — the
/// human-readable companion to [`reconcile_trace`].
pub fn reconciliation_report(rollup: &TraceRollup, delta: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<24} {:>10} {:>10}  status", "counter", "ledger", "trace");
    for m in expectations(rollup, delta) {
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10}  {}",
            m.counter,
            m.ledger,
            m.trace,
            if m.ledger == m.trace { "ok" } else { "MISMATCH" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::{Span, SpanId, SpanOutcome};
    use legion_core::{AttrValue, EpisodeId, SimDuration, SimTime};

    fn span(kind: SpanKind, outcome: SpanOutcome, attrs: Vec<(&'static str, AttrValue)>) -> Span {
        Span {
            id: SpanId(1),
            parent: SpanId::NONE,
            episode: EpisodeId::AMBIENT,
            kind,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            charged: SimDuration::ZERO,
            outcome,
            attrs,
        }
    }

    #[test]
    fn empty_trace_reconciles_with_empty_delta() {
        let rollup = TraceRollup::from_spans(std::iter::empty());
        assert!(reconcile_trace(&rollup, &MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn matching_counts_reconcile() {
        let spans = [
            span(SpanKind::CollectionQuery, SpanOutcome::Ok, vec![]),
            span(SpanKind::ReserveAttempt, SpanOutcome::ResourceUnavailable, vec![]),
            span(SpanKind::ReserveAttempt, SpanOutcome::Ok, vec![]),
            span(SpanKind::MakeReservations, SpanOutcome::Ok, vec![]),
            span(SpanKind::StartObject, SpanOutcome::Ok, vec![("started", AttrValue::Int(2))]),
        ];
        let rollup = TraceRollup::from_spans(spans.iter());
        let delta = MetricsSnapshot {
            collection_queries: 1,
            schedules_attempted: 2,
            schedules_reserved: 1,
            objects_started: 2,
            ..Default::default()
        };
        assert!(reconcile_trace(&rollup, &delta).is_empty());
        assert!(!reconciliation_report(&rollup, &delta).contains("MISMATCH"));
    }

    #[test]
    fn failed_spans_do_not_count_toward_ok_counters() {
        // A failed make_reservations span must NOT claim a
        // schedules_reserved bump.
        let spans =
            [span(SpanKind::MakeReservations, SpanOutcome::ResourceUnavailable, vec![])];
        let rollup = TraceRollup::from_spans(spans.iter());
        assert!(reconcile_trace(&rollup, &MetricsSnapshot::default()).is_empty());

        let delta = MetricsSnapshot { schedules_reserved: 1, ..Default::default() };
        let mismatches = reconcile_trace(&rollup, &delta);
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].counter, "schedules_reserved");
        assert_eq!(mismatches[0].ledger, 1);
        assert_eq!(mismatches[0].trace, 0);
        assert!(reconciliation_report(&rollup, &delta).contains("MISMATCH"));
    }
}
