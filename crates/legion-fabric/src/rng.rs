//! Deterministic randomness for testbeds and schedulers.

use legion_core::hash::mix64;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Factory for deterministic, independently seeded RNG streams.
///
/// Every random decision in an experiment (random scheduler picks,
/// message-loss draws, background load walks) draws from a stream derived
/// from the testbed seed plus a purpose label, so adding randomness in
/// one component never perturbs another component's stream.
#[derive(Debug, Clone, Copy)]
pub struct DetRng {
    seed: u64,
}

impl DetRng {
    /// Creates a factory from a master seed.
    pub fn new(seed: u64) -> Self {
        DetRng { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a stream for a purpose label.
    pub fn stream(&self, label: &str) -> SmallRng {
        let mut h = self.seed;
        for b in label.bytes() {
            h = mix64(h ^ b as u64);
        }
        SmallRng::seed_from_u64(h)
    }

    /// Derives a stream for a purpose label and an index (e.g. per-host).
    pub fn stream_indexed(&self, label: &str, index: u64) -> SmallRng {
        let mut h = self.seed ^ mix64(index.wrapping_add(0x9E37_79B9));
        for b in label.bytes() {
            h = mix64(h ^ b as u64);
        }
        SmallRng::seed_from_u64(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = DetRng::new(42);
        let a: Vec<u32> = f.stream("x").sample_iter(rand::distributions::Standard).take(5).collect();
        let b: Vec<u32> = f.stream("x").sample_iter(rand::distributions::Standard).take(5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = DetRng::new(42);
        let a: u64 = f.stream("x").gen();
        let b: u64 = f.stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = DetRng::new(1).stream("x").gen();
        let b: u64 = DetRng::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = DetRng::new(7);
        let a: u64 = f.stream_indexed("host-load", 0).gen();
        let b: u64 = f.stream_indexed("host-load", 1).gen();
        assert_ne!(a, b);
    }
}
