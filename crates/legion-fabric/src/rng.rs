//! Deterministic randomness for testbeds and schedulers.

use legion_core::hash::mix64;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Factory for deterministic, independently seeded RNG streams.
///
/// Every random decision in an experiment (random scheduler picks,
/// message-loss draws, background load walks) draws from a stream derived
/// from the testbed seed plus a purpose label, so adding randomness in
/// one component never perturbs another component's stream.
#[derive(Debug, Clone, Copy)]
pub struct DetRng {
    seed: u64,
}

impl DetRng {
    /// Creates a factory from a master seed.
    pub fn new(seed: u64) -> Self {
        DetRng { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a stream for a purpose label.
    pub fn stream(&self, label: &str) -> SmallRng {
        let mut h = self.seed;
        for b in label.bytes() {
            h = mix64(h ^ b as u64);
        }
        SmallRng::seed_from_u64(h)
    }

    /// Derives a stream for a purpose label and an index (e.g. per-host).
    pub fn stream_indexed(&self, label: &str, index: u64) -> SmallRng {
        let mut h = self.seed ^ mix64(index.wrapping_add(0x9E37_79B9));
        for b in label.bytes() {
            h = mix64(h ^ b as u64);
        }
        SmallRng::seed_from_u64(h)
    }

    /// Derives a stream for a purpose label and two indices — e.g. a
    /// per-(attempt, worker) stream for a parallel fan-out, so every
    /// worker's draws are independent of worker count and join order.
    pub fn stream_indexed2(&self, label: &str, a: u64, b: u64) -> SmallRng {
        let mut h = self.seed
            ^ mix64(a.wrapping_add(0x9E37_79B9))
            ^ mix64(b.wrapping_add(0x85EB_CA6B).rotate_left(17));
        for byte in label.bytes() {
            h = mix64(h ^ byte as u64);
        }
        SmallRng::seed_from_u64(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = DetRng::new(42);
        let a: Vec<u32> = f.stream("x").sample_iter(rand::distributions::Standard).take(5).collect();
        let b: Vec<u32> = f.stream("x").sample_iter(rand::distributions::Standard).take(5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = DetRng::new(42);
        let a: u64 = f.stream("x").gen();
        let b: u64 = f.stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = DetRng::new(1).stream("x").gen();
        let b: u64 = DetRng::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = DetRng::new(7);
        let a: u64 = f.stream_indexed("host-load", 0).gen();
        let b: u64 = f.stream_indexed("host-load", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed2_streams_vary_in_both_axes_and_replay() {
        let f = DetRng::new(7);
        let base: u64 = f.stream_indexed2("fanout", 3, 0).gen();
        assert_eq!(base, f.stream_indexed2("fanout", 3, 0).gen());
        assert_ne!(base, f.stream_indexed2("fanout", 4, 0).gen());
        assert_ne!(base, f.stream_indexed2("fanout", 3, 1).gen());
        assert_ne!(base, f.stream_indexed2("other", 3, 0).gen());
    }
}
