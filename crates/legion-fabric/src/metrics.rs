//! The metrics ledger — the fabric's cost accounting.
//!
//! The paper's promised benchmarking (§6) needs operation counts as much
//! as timings: the IRS is pitched as doing "fewer lookups in the
//! Collection" than repeated random generation (§4.2), and the variant
//! bitmap exists to avoid "reservation thrashing (the canceling and
//! subsequent remaking of the same reservation)" (§3.4). Every component
//! bumps this ledger so experiments can report those counts directly.

use legion_core::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Shared atomic counters, one per accounted operation.
        #[derive(Debug, Default)]
        pub struct MetricsLedger {
            $( $(#[$doc])* pub $name: AtomicU64, )*
            /// Total simulated network latency charged, in microseconds.
            pub sim_latency_us: AtomicU64,
        }

        /// A point-in-time copy of the ledger.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $( $(#[$doc])* pub $name: u64, )*
            /// Total simulated network latency charged, in microseconds.
            pub sim_latency_us: u64,
        }

        impl MetricsLedger {
            /// Takes a snapshot of all counters.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )*
                    sim_latency_us: self.sim_latency_us.load(Ordering::Relaxed),
                }
            }

            /// Resets all counters to zero.
            pub fn reset(&self) {
                $( self.$name.store(0, Ordering::Relaxed); )*
                self.sim_latency_us.store(0, Ordering::Relaxed);
            }
        }

        impl MetricsSnapshot {
            /// Per-field difference (`self - earlier`), saturating.
            pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot {
                    $( $name: self.$name.saturating_sub(earlier.$name), )*
                    sim_latency_us: self.sim_latency_us.saturating_sub(earlier.sim_latency_us),
                }
            }
        }
    };
}

counters! {
    /// Inter-object messages sent through the fabric.
    messages,
    /// Messages lost to the failure model.
    messages_dropped,
    /// `make_reservation` calls received by hosts.
    reservation_requests,
    /// Reservations granted.
    reservations_granted,
    /// Reservations denied (capacity, policy, vault).
    reservations_denied,
    /// Reservations cancelled by Enactors.
    reservations_cancelled,
    /// Cancel-then-remake pairs on the same host for the same class —
    /// the paper's "reservation thrashing".
    reservation_thrash,
    /// Collection queries evaluated.
    collection_queries,
    /// Records examined while evaluating queries.
    collection_records_scanned,
    /// Collection record updates (push or pull).
    collection_updates,
    /// Objects started on hosts.
    objects_started,
    /// Objects killed.
    objects_killed,
    /// Objects deactivated to an OPR.
    objects_deactivated,
    /// Objects reactivated from an OPR.
    objects_reactivated,
    /// Completed migrations.
    migrations,
    /// RGE trigger firings.
    trigger_firings,
    /// Schedules (master or variant) attempted by Enactors.
    schedules_attempted,
    /// Schedules fully reserved.
    schedules_reserved,
    /// `enact_schedule` object instantiations.
    enact_instantiations,
    /// Enactor retries that slept through a backoff delay.
    enactor_backoffs,
    /// Fault-plan events injected by the fabric (all kinds).
    faults_injected,
    /// Host fail-stop crashes (injected or direct).
    host_crashes,
    /// Crashed hosts brought back up.
    host_restarts,
    /// Vaults lost (removed from the fabric) by fault injection.
    vaults_lost,
    /// Domain partitions begun.
    partitions_started,
    /// Domain partitions healed.
    partitions_healed,
    /// Inter-domain degradation bursts begun.
    link_bursts,
    /// Objects restarted from their vault OPR by a Monitor after a
    /// host crash (§2.1 shutdown/restart).
    monitor_restarts,
    /// Collection records evicted as stale (dead-host TTL).
    collection_evictions,
    /// Closed-loop rebalance sweeps executed.
    rebalance_sweeps,
    /// Migrations attempted by a rebalance sweep that failed and left
    /// the object back on (or still on) its source — wasted work.
    rebalance_rollbacks,
    /// Migrations whose planned target failed mid-flight and whose
    /// object was reactivated on an alternate host instead.
    rebalance_rehomes,
    /// Placement requests presented to the ingress front door.
    ingress_submitted,
    /// Requests admitted through the tenant's token bucket and queue.
    ingress_admitted,
    /// Requests rejected because the tenant's token bucket was empty.
    ingress_rejected_rate,
    /// Requests rejected because the tenant's bounded queue was full.
    ingress_rejected_queue,
    /// Requests rejected because the Enactor tier was saturated.
    ingress_rejected_saturated,
    /// Admitted requests whose placement eventually succeeded.
    ingress_completed,
    /// Admitted requests whose placement failed (retries exhausted).
    ingress_failed,
    /// Long-lived reservation grants requested at the front door.
    grants_requested,
    /// Pending grants approved (host reservation made).
    grants_approved,
    /// Approved grants confirmed by their tenant in time.
    grants_confirmed,
    /// Approved grants that expired unconfirmed (tokens released).
    grants_expired,
    /// Grant approvals that failed (host crashed or denied) — the
    /// pending record is reconciled away and the admission refunded.
    grants_denied,
}

impl MetricsLedger {
    /// Records simulated latency.
    pub fn charge_latency(&self, d: SimDuration) {
        self.sim_latency_us.fetch_add(d.as_micros(), Ordering::Relaxed);
    }

    /// Convenience: bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience: bump a counter by `n`.
    pub fn bump_by(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let m = MetricsLedger::default();
        MetricsLedger::bump(&m.messages);
        MetricsLedger::bump(&m.messages);
        MetricsLedger::bump(&m.reservations_granted);
        let s1 = m.snapshot();
        assert_eq!(s1.messages, 2);
        assert_eq!(s1.reservations_granted, 1);

        MetricsLedger::bump_by(&m.messages, 3);
        let s2 = m.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.messages, 3);
        assert_eq!(d.reservations_granted, 0);
    }

    #[test]
    fn latency_accumulates() {
        let m = MetricsLedger::default();
        m.charge_latency(SimDuration::from_millis(2));
        m.charge_latency(SimDuration::from_millis(3));
        assert_eq!(m.snapshot().sim_latency_us, 5000);
    }

    #[test]
    fn reset_zeroes() {
        let m = MetricsLedger::default();
        MetricsLedger::bump(&m.migrations);
        m.charge_latency(SimDuration::from_secs(1));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
