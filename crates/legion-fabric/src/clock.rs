//! The virtual clock driving all RMI components.

use legion_core::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically advancing virtual clock, shared by all fabric objects.
///
/// Experiments advance it explicitly, which keeps every run deterministic
/// and lets benches measure simulated cost independently of wall-clock.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.micros.load(Ordering::Acquire))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        SimTime(self.micros.fetch_add(d.as_micros(), Ordering::AcqRel) + d.as_micros())
    }

    /// Moves the clock forward to `t` if `t` is in the future; returns the
    /// resulting time (never goes backwards).
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_micros();
        let mut cur = self.micros.load(Ordering::Acquire);
        while cur < target {
            match self.micros.compare_exchange_weak(
                cur,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return t,
                Err(seen) => cur = seen,
            }
        }
        SimTime(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(5));
    }

    #[test]
    fn advance_to_never_regresses() {
        let c = VirtualClock::new();
        c.advance_to(SimTime::from_secs(10));
        assert_eq!(c.now(), SimTime::from_secs(10));
        c.advance_to(SimTime::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(10));
    }

    #[test]
    fn concurrent_advance_is_cumulative() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(SimDuration::from_micros(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), SimTime(8000));
    }
}
