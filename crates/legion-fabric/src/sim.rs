//! Deterministic discrete-event scheduler for whole-system simulation.
//!
//! The scoped-thread concurrency of PR 4 is honest but caps experiments
//! at dozens of in-flight episodes: every concurrent message needs an OS
//! thread, and timing-sensitive scenarios lean on wall-clock sleeps. This
//! module supplies the GridSim-style substrate from ROADMAP item 2: a
//! single event queue ordered by `(sim_time, seq)` where message latency,
//! fault-plan firings, daemon ticks, and backoff sleeps are all *events*
//! — latency becomes event reordering, not sleeping — so thousands of
//! concurrent placement episodes run in milliseconds of real time.
//!
//! # Execution model
//!
//! A [`SimHandle`] owns the queue. Work comes in two shapes:
//!
//! * **Run events** ([`SimHandle::schedule_at`] / [`SimHandle::schedule_in`])
//!   — plain closures executed on the control thread at their due time.
//!   Daemon ticks, watchdog patrols and fault firings are Run events.
//! * **Tasks** ([`SimHandle::spawn`]) — actor-style logical threads in
//!   the datacake clock-actor idiom: one task owns its state, runs
//!   straight-line code, and parks in [`SimHandle::sleep`], which turns
//!   the wait into a scheduled wake event. A placement episode (schedule
//!   → reserve → backoff → enact) is one task.
//!
//! Tasks are carried by real OS threads, but the scheduler enforces a
//! **baton discipline**: at most one logical task (or the control loop)
//! executes at any instant. The control loop pops the earliest event,
//! advances the shared [`VirtualClock`] to its time, hands the baton to
//! the woken task (or runs the closure inline), and waits for the baton
//! back before popping the next event. Concurrency is therefore entirely
//! *simulated* — interleavings are decided by the event queue, never by
//! the OS — which is what makes runs bit-identical from one seed.
//!
//! # Determinism contract
//!
//! Two runs of the same scenario from the same seed produce the same
//! event schedule, the same trace export, and the same ledger, byte for
//! byte, provided the scenario (a) draws randomness only from
//! [`crate::DetRng`] streams, (b) schedules the same events in the same
//! order, and (c) rebases the global LOID counter through
//! `Loid::replay_guard` when exact identifier strings matter. Ties at
//! one instant fire in scheduling order (the `seq` tie-break).
//!
//! # Replay on failure
//!
//! Every event is appended to an in-memory schedule log. A panic inside
//! a task or Run closure aborts the run and [`SimHandle::run`] returns a
//! [`SimError`] carrying the formatted tail of that log — a failing seed
//! reprints its event schedule, so the interleaving that broke is right
//! in the test output. See `docs/simulation.md`.

use crate::clock::VirtualClock;
use legion_core::{SimDuration, SimTime};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Identifies a spawned task within one scheduler.
type TaskId = u64;

thread_local! {
    /// `(core address, task id)` of the sim task carried by this thread,
    /// if any. The core address keeps two coexisting schedulers from
    /// mistaking each other's tasks for their own.
    static CURRENT_TASK: Cell<Option<(usize, TaskId)>> = const { Cell::new(None) };
}

/// Panic payload used to unwind parked tasks during shutdown; carriers
/// recognise it and exit quietly instead of reporting a failure.
struct SimShutdown;

/// An entry in the event queue.
enum SimEvent {
    /// Hand the baton to a parked (or not-yet-started) task.
    Wake(TaskId),
    /// Execute a closure on the control thread.
    Run { label: String, f: Box<dyn FnOnce(&SimHandle) + Send> },
}

/// One line of the replayable schedule log.
#[derive(Clone)]
struct EventRecord {
    seq: u64,
    at: SimTime,
    label: String,
}

struct TaskSlot {
    label: String,
    cv: Arc<Condvar>,
    /// Set by the control loop when the baton is handed over; cleared by
    /// the task as it resumes.
    runnable: bool,
}

struct SimState {
    queue: BTreeMap<(u64, u64), SimEvent>,
    next_seq: u64,
    next_task: TaskId,
    /// The task currently holding the baton (`None` while the control
    /// loop owns it).
    active: Option<TaskId>,
    tasks: BTreeMap<TaskId, TaskSlot>,
    threads: Vec<JoinHandle<()>>,
    log: Vec<EventRecord>,
    failure: Option<String>,
    shutdown: bool,
    tasks_spawned: u64,
}

struct SimCore {
    clock: Arc<VirtualClock>,
    state: Mutex<SimState>,
    /// Signalled when the baton returns to the control loop.
    control_cv: Condvar,
}

/// Handle to a deterministic discrete-event scheduler (cheaply `Clone`).
///
/// Create one over a fabric's clock, attach it with
/// [`crate::Fabric::attach_sim`], seed the queue with tasks and events,
/// then drain it with [`SimHandle::run`].
#[derive(Clone)]
pub struct SimHandle {
    core: Arc<SimCore>,
}

/// Summary of a completed simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRunStats {
    /// Events executed (wakes + closures).
    pub events: u64,
    /// Tasks spawned over the run's lifetime.
    pub tasks: u64,
    /// Virtual time when the queue drained.
    pub end: SimTime,
}

/// A failed simulation run: the failure message plus the formatted tail
/// of the event schedule that led to it, for seed replay.
#[derive(Clone)]
pub struct SimError {
    /// The panic message from the failing task or closure.
    pub message: String,
    /// Human-readable tail of the event schedule (see
    /// [`SimHandle::format_schedule`]).
    pub schedule: String,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation failed: {}\nevent schedule (tail):\n{}", self.message, self.schedule)
    }
}

impl fmt::Debug for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl SimHandle {
    /// A fresh scheduler driving the given clock.
    pub fn new(clock: Arc<VirtualClock>) -> Self {
        SimHandle {
            core: Arc::new(SimCore {
                clock,
                state: Mutex::new(SimState {
                    queue: BTreeMap::new(),
                    next_seq: 0,
                    next_task: 1,
                    active: None,
                    tasks: BTreeMap::new(),
                    threads: Vec::new(),
                    log: Vec::new(),
                    failure: None,
                    shutdown: false,
                    tasks_spawned: 0,
                }),
                control_cv: Condvar::new(),
            }),
        }
    }

    /// Current virtual time (the shared fabric clock).
    pub fn now(&self) -> SimTime {
        self.core.clock.now()
    }

    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.core.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether the calling thread is a task of *this* scheduler.
    pub fn in_task(&self) -> bool {
        let here = Arc::as_ptr(&self.core) as usize;
        CURRENT_TASK.with(|c| c.get().is_some_and(|(core, _)| core == here))
    }

    fn enqueue(st: &mut SimState, at: SimTime, ev: SimEvent) {
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.insert((at.as_micros(), seq), ev);
    }

    /// Schedules a closure to run on the control thread at `at` (clamped
    /// to now if already past). Closures may schedule further events and
    /// spawn tasks — a recurring tick is a closure that re-schedules
    /// itself.
    pub fn schedule_at(
        &self,
        at: SimTime,
        label: impl Into<String>,
        f: impl FnOnce(&SimHandle) + Send + 'static,
    ) {
        let at = at.max(self.now());
        let mut st = self.lock();
        Self::enqueue(&mut st, at, SimEvent::Run { label: label.into(), f: Box::new(f) });
    }

    /// Schedules a closure `delay` after now.
    pub fn schedule_in(
        &self,
        delay: SimDuration,
        label: impl Into<String>,
        f: impl FnOnce(&SimHandle) + Send + 'static,
    ) {
        self.schedule_at(self.now() + delay, label, f);
    }

    /// Spawns a logical task. The task does not start immediately: its
    /// first run is a wake event at the current virtual time, so spawn
    /// order is part of the deterministic schedule. The closure runs
    /// straight through, parking only in [`SimHandle::sleep`].
    pub fn spawn(&self, label: impl Into<String>, f: impl FnOnce(&SimHandle) + Send + 'static) {
        let label = label.into();
        let now = self.now();
        let handle = self.clone();
        let core_addr = Arc::as_ptr(&self.core) as usize;
        let mut st = self.lock();
        assert!(!st.shutdown, "spawn on a finished scheduler");
        let tid = st.next_task;
        st.next_task += 1;
        st.tasks_spawned += 1;
        let cv = Arc::new(Condvar::new());
        st.tasks.insert(tid, TaskSlot { label: label.clone(), cv: Arc::clone(&cv), runnable: false });
        Self::enqueue(&mut st, now, SimEvent::Wake(tid));
        let carrier = std::thread::Builder::new()
            .name(format!("sim-{label}"))
            .stack_size(512 * 1024)
            .spawn(move || carrier_main(handle, core_addr, tid, f))
            .expect("spawn sim carrier thread");
        st.threads.push(carrier);
    }

    /// Parks the calling task for `d` of virtual time: enqueues a wake
    /// event at `now + d`, returns the baton to the control loop, and
    /// blocks until the wake event fires. Only callable from inside a
    /// task spawned on this scheduler.
    pub fn sleep(&self, d: SimDuration) {
        let here = Arc::as_ptr(&self.core) as usize;
        let tid = CURRENT_TASK.with(|c| c.get()).filter(|&(core, _)| core == here).map(|(_, t)| t);
        let tid = tid.expect("SimHandle::sleep called outside a sim task");
        let wake_at = self.now() + d;
        let mut st = self.lock();
        Self::enqueue(&mut st, wake_at, SimEvent::Wake(tid));
        let cv = Arc::clone(&st.tasks[&tid].cv);
        st.active = None;
        self.core.control_cv.notify_one();
        loop {
            if st.shutdown {
                // Unwind out of the task body; the carrier recognises the
                // payload and exits quietly.
                drop(st);
                std::panic::panic_any(SimShutdown);
            }
            if st.tasks.get(&tid).map(|s| s.runnable) == Some(true) {
                st.tasks.get_mut(&tid).unwrap().runnable = false;
                return;
            }
            st = cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Drains the event queue, advancing the clock to each event's time
    /// and executing it. Returns run statistics, or — if any task or
    /// closure panicked — a [`SimError`] carrying the schedule tail.
    /// All carrier threads are joined before this returns.
    pub fn run(&self) -> Result<SimRunStats, SimError> {
        let mut executed = 0u64;
        let failure = loop {
            let mut st = self.lock();
            while st.active.is_some() && st.failure.is_none() {
                st = self.core.control_cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            if let Some(msg) = st.failure.take() {
                break Some(msg);
            }
            let Some((&key, _)) = st.queue.iter().next() else { break None };
            let ev = st.queue.remove(&key).unwrap();
            let at = SimTime(key.0);
            let label = match &ev {
                SimEvent::Wake(tid) => match st.tasks.get(tid) {
                    Some(slot) => format!("wake:{}", slot.label),
                    // The task finished before a pending wake fired (e.g.
                    // it was also woken by an earlier event): drop it.
                    None => {
                        continue;
                    }
                },
                SimEvent::Run { label, .. } => label.clone(),
            };
            st.log.push(EventRecord { seq: key.1, at, label });
            executed += 1;
            match ev {
                SimEvent::Wake(tid) => {
                    st.active = Some(tid);
                    let slot = st.tasks.get_mut(&tid).unwrap();
                    slot.runnable = true;
                    let cv = Arc::clone(&slot.cv);
                    drop(st);
                    self.core.clock.advance_to(at);
                    cv.notify_one();
                    // Baton comes back at the top of the loop (active
                    // cleared by the task's next sleep or its exit).
                }
                SimEvent::Run { f, .. } => {
                    drop(st);
                    self.core.clock.advance_to(at);
                    let h = self.clone();
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&h))) {
                        let mut st = self.lock();
                        st.failure = Some(panic_message(payload.as_ref()));
                    }
                }
            }
        };

        // Shut down: unwind any still-parked tasks and join every carrier.
        let threads = {
            let mut st = self.lock();
            st.shutdown = true;
            for slot in st.tasks.values() {
                slot.cv.notify_one();
            }
            std::mem::take(&mut st.threads)
        };
        for t in threads {
            let _ = t.join();
        }

        let mut st = self.lock();
        // A task may have recorded a failure while we were shutting down.
        let failure = failure.or_else(|| st.failure.take());
        match failure {
            Some(message) => {
                let schedule = format_schedule_locked(&st, 40);
                Err(SimError { message, schedule })
            }
            None => {
                let stats =
                    SimRunStats { events: executed, tasks: st.tasks_spawned, end: self.now() };
                // Allow the scheduler to be reused for a follow-up phase.
                st.shutdown = false;
                Ok(stats)
            }
        }
    }

    /// Formats the last `tail` entries of the executed event schedule —
    /// the replay transcript printed when a seeded run fails.
    pub fn format_schedule(&self, tail: usize) -> String {
        format_schedule_locked(&self.lock(), tail)
    }

    /// Number of events executed so far (schedule log length).
    pub fn events_executed(&self) -> usize {
        self.lock().log.len()
    }
}

fn format_schedule_locked(st: &SimState, tail: usize) -> String {
    let skip = st.log.len().saturating_sub(tail);
    let mut out = String::new();
    if skip > 0 {
        out.push_str(&format!("  … {skip} earlier events elided …\n"));
    }
    for rec in &st.log[skip..] {
        out.push_str(&format!("  [{:>12}µs #{:<6}] {}\n", rec.at.as_micros(), rec.seq, rec.label));
    }
    out
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked (non-string payload)".to_string()
    }
}

/// Body of a task's carrier thread: park until the first wake, run the
/// task closure under `catch_unwind`, then return the baton and retire
/// the task slot.
fn carrier_main(
    handle: SimHandle,
    core_addr: usize,
    tid: TaskId,
    f: impl FnOnce(&SimHandle) + Send,
) {
    CURRENT_TASK.with(|c| c.set(Some((core_addr, tid))));
    {
        let mut st = handle.lock();
        loop {
            if st.shutdown {
                // Never started: retire quietly without touching the baton.
                st.tasks.remove(&tid);
                return;
            }
            if st.tasks.get(&tid).map(|s| s.runnable) == Some(true) {
                st.tasks.get_mut(&tid).unwrap().runnable = false;
                break;
            }
            let cv = Arc::clone(&st.tasks[&tid].cv);
            st = cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    let result = catch_unwind(AssertUnwindSafe(|| f(&handle)));

    let mut st = handle.lock();
    if let Err(payload) = result {
        if !payload.is::<SimShutdown>() {
            let label = st.tasks.get(&tid).map(|s| s.label.clone()).unwrap_or_default();
            st.failure = Some(format!("task `{label}`: {}", panic_message(payload.as_ref())));
        }
    }
    st.tasks.remove(&tid);
    st.active = None;
    handle.core.control_cv.notify_one();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> SimHandle {
        SimHandle::new(Arc::new(VirtualClock::new()))
    }

    #[test]
    fn events_fire_in_time_then_seq_order() {
        let h = sim();
        let order = Arc::new(Mutex::new(Vec::new()));
        for (at, tag) in [(30, "c"), (10, "a"), (10, "b"), (20, "z")] {
            let order = Arc::clone(&order);
            h.schedule_at(SimTime::from_micros(at), tag, move |hh| {
                order.lock().unwrap().push((hh.now().as_micros(), tag));
            });
        }
        let stats = h.run().unwrap();
        assert_eq!(stats.events, 4);
        assert_eq!(stats.end, SimTime::from_micros(30));
        // Same instant → scheduling order ("a" before "b": both at 10µs).
        assert_eq!(*order.lock().unwrap(), vec![(10, "a"), (10, "b"), (20, "z"), (30, "c")]);
    }

    #[test]
    fn task_sleep_advances_virtual_time_only() {
        let h = sim();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        h.spawn("sleeper", move |hh| {
            s.lock().unwrap().push(hh.now());
            hh.sleep(SimDuration::from_secs(3600));
            s.lock().unwrap().push(hh.now());
        });
        let wall = std::time::Instant::now();
        h.run().unwrap();
        assert!(wall.elapsed() < std::time::Duration::from_secs(2), "sleep must be simulated");
        assert_eq!(
            *seen.lock().unwrap(),
            vec![SimTime::ZERO, SimTime::from_secs(3600)],
            "one hour of virtual time passed"
        );
    }

    #[test]
    fn tasks_interleave_deterministically() {
        // Two tasks ping-ponging through staggered sleeps interleave by
        // wake time, not by OS scheduling.
        let run = || {
            let h = sim();
            let log = Arc::new(Mutex::new(Vec::new()));
            for (name, start, step) in [("a", 0u64, 10u64), ("b", 5, 10)] {
                let log = Arc::clone(&log);
                h.spawn(name, move |hh| {
                    hh.sleep(SimDuration::from_micros(start));
                    for i in 0..5 {
                        log.lock().unwrap().push(format!("{name}{i}@{}", hh.now().as_micros()));
                        hh.sleep(SimDuration::from_micros(step));
                    }
                });
            }
            h.run().unwrap();
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        };
        let first = run();
        assert_eq!(first, run(), "same schedule every run");
        assert_eq!(first[0], "a0@0");
        assert_eq!(first[1], "b0@5");
    }

    #[test]
    fn run_closures_can_reschedule_themselves() {
        let h = sim();
        let count = Arc::new(Mutex::new(0u32));
        fn tick(hh: &SimHandle, count: Arc<Mutex<u32>>) {
            *count.lock().unwrap() += 1;
            if hh.now() < SimTime::from_secs(10) {
                let c = Arc::clone(&count);
                hh.schedule_in(SimDuration::from_secs(1), "tick", move |hh| tick(hh, c));
            }
        }
        let c = Arc::clone(&count);
        h.schedule_at(SimTime::from_secs(1), "tick", move |hh| tick(hh, c));
        h.run().unwrap();
        assert_eq!(*count.lock().unwrap(), 10);
    }

    #[test]
    fn failing_task_reports_schedule_tail() {
        let h = sim();
        h.schedule_at(SimTime::from_micros(5), "benign", |_| {});
        h.spawn("doomed", |hh| {
            hh.sleep(SimDuration::from_micros(10));
            panic!("injected failure at {now}", now = hh.now());
        });
        h.spawn("parked-forever", |hh| {
            // Still asleep when the failure aborts the run; shutdown must
            // unwind it rather than leak the carrier thread.
            hh.sleep(SimDuration::from_secs(1_000_000));
        });
        let err = h.run().unwrap_err();
        assert!(err.message.contains("injected failure"), "{}", err.message);
        assert!(err.message.contains("doomed"), "{}", err.message);
        assert!(err.schedule.contains("wake:doomed"), "schedule:\n{}", err.schedule);
    }

    #[test]
    fn failing_closure_reports_too() {
        let h = sim();
        h.schedule_at(SimTime::from_micros(1), "boom", |_| panic!("closure exploded"));
        let err = h.run().unwrap_err();
        assert!(err.message.contains("closure exploded"));
        assert!(err.schedule.contains("boom"), "schedule:\n{}", err.schedule);
    }

    #[test]
    fn spawned_tasks_run_in_spawn_order_at_same_instant() {
        let h = sim();
        let order = Arc::new(Mutex::new(Vec::new()));
        for name in ["first", "second", "third"] {
            let order = Arc::clone(&order);
            h.spawn(name, move |_| order.lock().unwrap().push(name));
        }
        h.run().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["first", "second", "third"]);
    }

    #[test]
    fn in_task_distinguishes_contexts() {
        let h = sim();
        assert!(!h.in_task(), "control context is not a task");
        let flag = Arc::new(Mutex::new((false, true)));
        let fl = Arc::clone(&flag);
        h.spawn("prober", move |hh| {
            fl.lock().unwrap().0 = hh.in_task();
        });
        let fl = Arc::clone(&flag);
        h.schedule_at(SimTime::from_micros(1), "closure-probe", move |hh| {
            fl.lock().unwrap().1 = hh.in_task();
        });
        h.run().unwrap();
        let (task_saw, closure_saw) = *flag.lock().unwrap();
        assert!(task_saw, "task context must report in_task");
        assert!(!closure_saw, "control-thread closure must not");
    }

    #[test]
    fn scheduler_is_reusable_after_a_clean_run() {
        let h = sim();
        h.schedule_at(SimTime::from_micros(1), "one", |_| {});
        h.run().unwrap();
        let again = Arc::new(Mutex::new(false));
        let a = Arc::clone(&again);
        h.spawn("two", move |_| *a.lock().unwrap() = true);
        h.run().unwrap();
        assert!(*again.lock().unwrap());
    }

    #[test]
    fn ten_thousand_tasks_complete_quickly() {
        let h = sim();
        let done = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for i in 0..10_000u64 {
            let done = Arc::clone(&done);
            h.spawn(format!("ep-{i}"), move |hh| {
                hh.sleep(SimDuration::from_micros(i % 97));
                done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        let stats = h.run().unwrap();
        assert_eq!(done.load(std::sync::atomic::Ordering::Relaxed), 10_000);
        assert_eq!(stats.tasks, 10_000);
    }
}
