//! Administrative domains and the inter-domain network model.
//!
//! "the software must unite machines from thousands of administrative
//! domains into a single coherent system" (§1). Domains matter to the RMI
//! twice: the Enactor co-allocates across them (§3), and hosts exercise
//! autonomy by refusing requests from certain domains (§3.1). The
//! topology here models the only properties the RMI observes: message
//! latency and message-loss probability between domain pairs.

use legion_core::SimDuration;

/// Identifier of an administrative domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u16);

/// A named administrative domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    /// Identifier (index into the topology matrices).
    pub id: DomainId,
    /// Human-readable name, e.g. `"uva.edu"`.
    pub name: String,
}

/// Latency and loss between every pair of domains.
#[derive(Debug, Clone)]
pub struct DomainTopology {
    domains: Vec<Domain>,
    /// `latency[i][j]`: one-way message latency from domain i to j.
    latency: Vec<Vec<SimDuration>>,
    /// `drop_prob[i][j]`: probability a message from i to j is lost.
    drop_prob: Vec<Vec<f64>>,
}

impl DomainTopology {
    /// A single-domain topology with the given intra-domain latency.
    pub fn single(intra: SimDuration) -> Self {
        Self::uniform(1, intra, intra)
    }

    /// `n` domains named `dom0..`, with uniform intra- and inter-domain
    /// latencies and no message loss.
    pub fn uniform(n: usize, intra: SimDuration, inter: SimDuration) -> Self {
        assert!(n > 0, "topology needs at least one domain");
        let domains = (0..n)
            .map(|i| Domain { id: DomainId(i as u16), name: format!("dom{i}") })
            .collect();
        let latency = (0..n)
            .map(|i| (0..n).map(|j| if i == j { intra } else { inter }).collect())
            .collect();
        let drop_prob = vec![vec![0.0; n]; n];
        DomainTopology { domains, latency, drop_prob }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the topology is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Renames a domain.
    pub fn set_name(&mut self, d: DomainId, name: impl Into<String>) {
        self.domains[d.0 as usize].name = name.into();
    }

    /// One-way latency from `a` to `b`.
    pub fn latency(&self, a: DomainId, b: DomainId) -> SimDuration {
        self.latency[a.0 as usize][b.0 as usize]
    }

    /// Sets the one-way latency for a single ordered pair.
    pub fn set_latency(&mut self, a: DomainId, b: DomainId, l: SimDuration) {
        self.latency[a.0 as usize][b.0 as usize] = l;
    }

    /// Message-loss probability from `a` to `b`.
    pub fn drop_prob(&self, a: DomainId, b: DomainId) -> f64 {
        self.drop_prob[a.0 as usize][b.0 as usize]
    }

    /// Sets the loss probability for every inter-domain ordered pair
    /// (intra-domain messages stay lossless).
    pub fn set_inter_domain_drop_prob(&mut self, p: f64) {
        let n = self.domains.len();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    self.drop_prob[i][j] = p;
                }
            }
        }
    }

    /// Sets the loss probability for a single ordered pair.
    pub fn set_drop_prob(&mut self, a: DomainId, b: DomainId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_prob[a.0 as usize][b.0 as usize] = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let t = DomainTopology::uniform(
            3,
            SimDuration::from_micros(100),
            SimDuration::from_millis(40),
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.latency(DomainId(0), DomainId(0)), SimDuration::from_micros(100));
        assert_eq!(t.latency(DomainId(0), DomainId(2)), SimDuration::from_millis(40));
        assert_eq!(t.drop_prob(DomainId(0), DomainId(1)), 0.0);
    }

    #[test]
    fn drop_prob_only_touches_inter_domain() {
        let mut t =
            DomainTopology::uniform(2, SimDuration::from_micros(1), SimDuration::from_micros(9));
        t.set_inter_domain_drop_prob(0.25);
        assert_eq!(t.drop_prob(DomainId(0), DomainId(0)), 0.0);
        assert_eq!(t.drop_prob(DomainId(0), DomainId(1)), 0.25);
        assert_eq!(t.drop_prob(DomainId(1), DomainId(0)), 0.25);
    }

    #[test]
    fn asymmetric_links_allowed() {
        let mut t =
            DomainTopology::uniform(2, SimDuration::from_micros(1), SimDuration::from_micros(9));
        t.set_latency(DomainId(0), DomainId(1), SimDuration::from_millis(5));
        assert_eq!(t.latency(DomainId(0), DomainId(1)), SimDuration::from_millis(5));
        assert_eq!(t.latency(DomainId(1), DomainId(0)), SimDuration::from_micros(9));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let mut t =
            DomainTopology::uniform(2, SimDuration::from_micros(1), SimDuration::from_micros(9));
        t.set_drop_prob(DomainId(0), DomainId(1), 1.5);
    }
}
