//! The fabric proper: object registry plus network model.

use crate::clock::VirtualClock;
use crate::domain::{DomainId, DomainTopology};
use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::MetricsLedger;
use crate::rng::DetRng;
use legion_core::{
    ClassObject, HostObject, LegionError, Loid, PlacementContext, SimDuration, SimTime,
    SpanKind, VaultDirectory, VaultObject,
};
use legion_trace::TraceSink;
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The in-process metacomputing fabric.
///
/// Holds every registered object, knows which domain each lives in, and
/// meters all inter-object traffic. Implements [`PlacementContext`] (for
/// Classes) and [`VaultDirectory`] (for Hosts), so core objects stay
/// independent of this crate.
pub struct Fabric {
    clock: Arc<VirtualClock>,
    topology: RwLock<DomainTopology>,
    hosts: RwLock<BTreeMap<Loid, Arc<dyn HostObject>>>,
    vaults: RwLock<BTreeMap<Loid, Arc<dyn VaultObject>>>,
    classes: RwLock<BTreeMap<Loid, Arc<dyn ClassObject>>>,
    /// Domain of every registered object (service objects included).
    locations: RwLock<BTreeMap<Loid, DomainId>>,
    metrics: Arc<MetricsLedger>,
    tracer: Arc<TraceSink>,
    rng: DetRng,
    link_rng: Mutex<SmallRng>,
    chaos: Mutex<Option<ChaosState>>,
}

/// Live state of an installed fault plan: the not-yet-fired events plus
/// the active (healable) network effects, against the topology as it was
/// when the plan was installed.
struct ChaosState {
    pending: Vec<crate::faults::FaultEvent>,
    next: usize,
    base: DomainTopology,
    /// `(a, b, heal_at)` — both directions are cut until `heal_at`.
    partitions: Vec<(DomainId, DomainId, SimTime)>,
    /// `(drop_prob, extra_latency, until)`.
    bursts: Vec<(f64, SimDuration, SimTime)>,
}

impl Fabric {
    /// A fabric with the given topology and master seed.
    pub fn new(topology: DomainTopology, seed: u64) -> Arc<Self> {
        let rng = DetRng::new(seed);
        let link_rng = Mutex::new(rng.stream("fabric-links"));
        let clock = Arc::new(VirtualClock::new());
        let tracer = TraceSink::new();
        let clock_for_trace = Arc::clone(&clock);
        tracer.set_clock(Arc::new(move || clock_for_trace.now()));
        Arc::new(Fabric {
            clock,
            topology: RwLock::new(topology),
            hosts: RwLock::new(BTreeMap::new()),
            vaults: RwLock::new(BTreeMap::new()),
            classes: RwLock::new(BTreeMap::new()),
            locations: RwLock::new(BTreeMap::new()),
            metrics: Arc::new(MetricsLedger::default()),
            tracer,
            rng,
            link_rng,
            chaos: Mutex::new(None),
        })
    }

    /// A single-domain fabric with microsecond-scale local latency.
    pub fn local(seed: u64) -> Arc<Self> {
        Self::new(DomainTopology::single(SimDuration::from_micros(50)), seed)
    }

    // --- registry ---------------------------------------------------------

    /// Registers a host in `domain`.
    pub fn register_host(&self, host: Arc<dyn HostObject>, domain: DomainId) {
        let loid = host.loid();
        self.hosts.write().insert(loid, host);
        self.locations.write().insert(loid, domain);
    }

    /// Removes a host from the fabric — a crash or administrative
    /// removal. Subsequent lookups fail with `NoSuchHost`, which every
    /// RMI component must "accommodate ... at any step" (§3.1). Returns
    /// the removed host, if it existed.
    pub fn unregister_host(&self, loid: Loid) -> Option<Arc<dyn HostObject>> {
        self.locations.write().remove(&loid);
        self.hosts.write().remove(&loid)
    }

    /// Registers a vault in `domain`.
    pub fn register_vault(&self, vault: Arc<dyn VaultObject>, domain: DomainId) {
        let loid = vault.loid();
        self.vaults.write().insert(loid, vault);
        self.locations.write().insert(loid, domain);
    }

    /// Removes a vault from the fabric — the OPRs it holds become
    /// unreachable. Returns the removed vault, if it existed.
    pub fn unregister_vault(&self, loid: Loid) -> Option<Arc<dyn VaultObject>> {
        self.locations.write().remove(&loid);
        self.vaults.write().remove(&loid)
    }

    /// Registers a class object (classes are placeless; they are charged
    /// domain 0 traffic unless relocated with [`Fabric::place`]).
    pub fn register_class(&self, class: Arc<dyn ClassObject>) {
        let loid = class.loid();
        self.classes.write().insert(loid, class);
        self.locations.write().insert(loid, DomainId(0));
    }

    /// Places (or moves) an arbitrary object into a domain — used for
    /// service objects like Schedulers and Collections so their traffic
    /// is charged correctly.
    pub fn place(&self, loid: Loid, domain: DomainId) {
        self.locations.write().insert(loid, domain);
    }

    /// Looks up a registered class.
    pub fn lookup_class(&self, loid: Loid) -> Option<Arc<dyn ClassObject>> {
        self.classes.read().get(&loid).cloned()
    }

    /// All class LOIDs.
    pub fn class_loids(&self) -> Vec<Loid> {
        self.classes.read().keys().copied().collect()
    }

    /// The domain an object lives in (default domain 0 if unplaced).
    pub fn domain_of(&self, loid: Loid) -> DomainId {
        self.locations.read().get(&loid).copied().unwrap_or(DomainId(0))
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.read().len()
    }

    /// Number of registered vaults.
    pub fn vault_count(&self) -> usize {
        self.vaults.read().len()
    }

    // --- network model ------------------------------------------------------

    /// Meters one message from `from` to `to`.
    ///
    /// Applies the topology's loss probability (an error models a lost or
    /// undeliverable message the caller must handle, §3.1's "failure at
    /// any step"), charges latency to the ledger, and counts the message.
    pub fn link(&self, from: Loid, to: Loid) -> Result<SimDuration, LegionError> {
        let (a, b) = (self.domain_of(from), self.domain_of(to));
        let topo = self.topology.read();
        MetricsLedger::bump(&self.metrics.messages);
        let p = topo.drop_prob(a, b);
        if p > 0.0 && self.link_rng.lock().gen::<f64>() < p {
            MetricsLedger::bump(&self.metrics.messages_dropped);
            return Err(LegionError::NetworkFailure { from, to });
        }
        let lat = topo.latency(a, b);
        self.metrics.charge_latency(lat);
        // The clock does not advance for message latency; the active
        // trace span (if any) absorbs it instead, so per-stage latency
        // histograms see where the simulated network time went.
        legion_trace::charge_active(lat);
        Ok(lat)
    }

    /// Mutates the topology (e.g. inject loss mid-experiment).
    pub fn with_topology<R>(&self, f: impl FnOnce(&mut DomainTopology) -> R) -> R {
        f(&mut self.topology.write())
    }

    /// Read-only topology access.
    pub fn topology<R>(&self, f: impl FnOnce(&DomainTopology) -> R) -> R {
        f(&self.topology.read())
    }

    // --- shared services ------------------------------------------------------

    /// The fabric clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The metrics ledger.
    pub fn metrics(&self) -> &Arc<MetricsLedger> {
        &self.metrics
    }

    /// The trace sink. Disabled by default — spans are no-ops until
    /// [`Fabric::enable_tracing`] is called — so untraced experiments
    /// pay one atomic load per instrumentation point.
    pub fn tracer(&self) -> &Arc<TraceSink> {
        &self.tracer
    }

    /// Turns on pipeline tracing and returns the sink.
    pub fn enable_tracing(&self) -> Arc<TraceSink> {
        self.tracer.enable();
        Arc::clone(&self.tracer)
    }

    /// The deterministic RNG factory.
    pub fn rng(&self) -> DetRng {
        self.rng
    }

    /// Drives one reassessment tick on every host, in LOID order,
    /// advancing the clock by `dt` first (and firing any fault-plan
    /// events that have come due). Returns the number of RGE events
    /// raised — crashed hosts contribute none, which is precisely the
    /// "missed report" signal a Monitor watches for.
    pub fn tick_all_hosts(&self, dt: SimDuration) -> usize {
        let now = self.clock.advance(dt);
        self.apply_due_faults(now);
        let hosts: Vec<Arc<dyn HostObject>> = self.hosts.read().values().cloned().collect();
        let mut events = 0;
        for h in hosts {
            events += h.reassess(now).len();
        }
        events
    }

    // --- fault injection --------------------------------------------------

    /// Installs a fault plan; its events fire as [`Fabric::tick_all_hosts`]
    /// advances the clock past them. Replaces any previous plan (active
    /// partitions and bursts from the old plan are healed first).
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        let mut chaos = self.chaos.lock();
        if let Some(old) = chaos.take() {
            *self.topology.write() = old.base.clone();
        }
        *chaos = Some(ChaosState {
            pending: plan.events().to_vec(),
            next: 0,
            base: self.topology.read().clone(),
            partitions: Vec::new(),
            bursts: Vec::new(),
        });
    }

    /// Fires every installed fault event with `at <= now`, heals expired
    /// partitions and bursts, and rebuilds the topology from the base
    /// plus the still-active effects.
    fn apply_due_faults(&self, now: SimTime) {
        let mut chaos = self.chaos.lock();
        let Some(state) = chaos.as_mut() else { return };
        let mut network_dirty = false;

        while state.next < state.pending.len() && state.pending[state.next].at <= now {
            let ev = state.pending[state.next].clone();
            state.next += 1;
            MetricsLedger::bump(&self.metrics.faults_injected);
            let span = self.tracer.span(SpanKind::Fault);
            span.attr("due_us", ev.at.as_micros() as i64);
            match ev.action {
                FaultAction::CrashHost(l) => {
                    span.attr("action", "crash_host");
                    span.attr("host", l.to_string());
                    // The host counts its own crash (idempotently); the
                    // fabric only delivers the fault.
                    if let Some(h) = self.hosts.read().get(&l) {
                        h.crash();
                    }
                }
                FaultAction::RestartHost(l) => {
                    span.attr("action", "restart_host");
                    span.attr("host", l.to_string());
                    if let Some(h) = self.hosts.read().get(&l) {
                        h.restart(now);
                    }
                }
                FaultAction::LoseVault(l) => {
                    span.attr("action", "lose_vault");
                    span.attr("vault", l.to_string());
                    if self.unregister_vault(l).is_some() {
                        MetricsLedger::bump(&self.metrics.vaults_lost);
                    }
                }
                FaultAction::Partition { a, b, heal_at } => {
                    span.attr("action", "partition");
                    span.attr("a", a.0 as i64);
                    span.attr("b", b.0 as i64);
                    span.attr("heal_at_us", heal_at.as_micros() as i64);
                    state.partitions.push((a, b, heal_at));
                    MetricsLedger::bump(&self.metrics.partitions_started);
                    network_dirty = true;
                }
                FaultAction::DegradeLinks { drop_prob, extra_latency, until } => {
                    span.attr("action", "degrade_links");
                    span.attr("drop_prob", drop_prob);
                    span.attr("extra_latency_us", extra_latency.as_micros() as i64);
                    span.attr("until_us", until.as_micros() as i64);
                    state.bursts.push((drop_prob, extra_latency, until));
                    MetricsLedger::bump(&self.metrics.link_bursts);
                    network_dirty = true;
                }
            }
            span.end_ok();
        }

        let before = state.partitions.len();
        state.partitions.retain(|&(_, _, heal_at)| heal_at > now);
        let healed = before - state.partitions.len();
        if healed > 0 {
            MetricsLedger::bump_by(&self.metrics.partitions_healed, healed as u64);
            network_dirty = true;
        }
        let burst_count = state.bursts.len();
        state.bursts.retain(|&(_, _, until)| until > now);
        if state.bursts.len() != burst_count {
            network_dirty = true;
        }

        if network_dirty {
            // Recompute from the base so overlapping effects compose and
            // heal cleanly: bursts degrade every inter-domain pair, then
            // partitions sever their pairs outright.
            let mut topo = state.base.clone();
            let n = topo.len() as u16;
            for &(p, extra, _) in &state.bursts {
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            let (a, b) = (DomainId(i), DomainId(j));
                            topo.set_drop_prob(a, b, topo.drop_prob(a, b).max(p));
                            topo.set_latency(a, b, topo.latency(a, b) + extra);
                        }
                    }
                }
            }
            for &(a, b, _) in &state.partitions {
                topo.set_drop_prob(a, b, 1.0);
                topo.set_drop_prob(b, a, 1.0);
            }
            *self.topology.write() = topo;
        }
    }

    /// Whether a partition currently severs the two domains.
    pub fn is_partitioned(&self, a: DomainId, b: DomainId) -> bool {
        self.chaos
            .lock()
            .as_ref()
            .is_some_and(|s| {
                s.partitions
                    .iter()
                    .any(|&(x, y, _)| (x == a && y == b) || (x == b && y == a))
            })
    }
}

impl PlacementContext for Fabric {
    fn lookup_host(&self, loid: Loid) -> Option<Arc<dyn HostObject>> {
        self.hosts.read().get(&loid).cloned()
    }

    fn host_loids(&self) -> Vec<Loid> {
        self.hosts.read().keys().copied().collect()
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }
}

impl VaultDirectory for Fabric {
    fn lookup_vault(&self, loid: Loid) -> Option<Arc<dyn VaultObject>> {
        self.vaults.read().get(&loid).cloned()
    }

    fn vault_loids(&self) -> Vec<Loid> {
        self.vaults.read().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::LoidKind;

    #[test]
    fn placement_and_domains() {
        let f = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(10), SimDuration::from_millis(30)),
            1,
        );
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        f.place(a, DomainId(0));
        f.place(b, DomainId(1));
        assert_eq!(f.domain_of(a), DomainId(0));
        assert_eq!(f.domain_of(b), DomainId(1));
        // Unknown objects default to domain 0.
        assert_eq!(f.domain_of(Loid::synthetic(LoidKind::Service, 99)), DomainId(0));
    }

    #[test]
    fn link_charges_latency_and_counts() {
        let f = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(10), SimDuration::from_millis(30)),
            1,
        );
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        f.place(a, DomainId(0));
        f.place(b, DomainId(1));
        let lat = f.link(a, b).unwrap();
        assert_eq!(lat, SimDuration::from_millis(30));
        let snap = f.metrics().snapshot();
        assert_eq!(snap.messages, 1);
        assert_eq!(snap.sim_latency_us, 30_000);
    }

    #[test]
    fn lossy_links_fail_sometimes() {
        let f = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(1), SimDuration::from_micros(1)),
            7,
        );
        f.with_topology(|t| t.set_inter_domain_drop_prob(0.5));
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        f.place(a, DomainId(0));
        f.place(b, DomainId(1));
        let mut failures = 0;
        for _ in 0..200 {
            if f.link(a, b).is_err() {
                failures += 1;
            }
        }
        // With p = 0.5, observing fewer than 50 or more than 150 failures
        // in 200 trials is vanishingly unlikely.
        assert!((50..=150).contains(&failures), "failures = {failures}");
        assert_eq!(f.metrics().snapshot().messages_dropped, failures);
    }

    #[test]
    fn intra_domain_is_lossless_by_default() {
        let f = Fabric::local(3);
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        for _ in 0..100 {
            assert!(f.link(a, b).is_ok());
        }
    }

    #[test]
    fn deterministic_loss_sequence() {
        let run = |seed: u64| -> Vec<bool> {
            let f = Fabric::new(
                DomainTopology::uniform(
                    2,
                    SimDuration::from_micros(1),
                    SimDuration::from_micros(1),
                ),
                seed,
            );
            f.with_topology(|t| t.set_inter_domain_drop_prob(0.3));
            let a = Loid::synthetic(LoidKind::Service, 1);
            let b = Loid::synthetic(LoidKind::Service, 2);
            f.place(a, DomainId(0));
            f.place(b, DomainId(1));
            (0..50).map(|_| f.link(a, b).is_ok()).collect()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}

#[cfg(test)]
mod stat_tests {
    use super::*;
    use legion_core::LoidKind;

    #[test]
    fn loss_frequency_tracks_probability() {
        // Empirical loss rate over many trials stays near the configured
        // probability for several p values (deterministic seed).
        for (p, lo, hi) in [(0.1, 0.05, 0.16), (0.3, 0.24, 0.37), (0.7, 0.62, 0.78)] {
            let f = Fabric::new(
                DomainTopology::uniform(
                    2,
                    SimDuration::from_micros(1),
                    SimDuration::from_micros(1),
                ),
                1234,
            );
            f.with_topology(|t| t.set_inter_domain_drop_prob(p));
            let a = Loid::synthetic(LoidKind::Service, 1);
            let b = Loid::synthetic(LoidKind::Service, 2);
            f.place(a, DomainId(0));
            f.place(b, DomainId(1));
            let n = 2000;
            let drops = (0..n).filter(|_| f.link(a, b).is_err()).count();
            let rate = drops as f64 / n as f64;
            assert!(
                (lo..=hi).contains(&rate),
                "p = {p}: empirical {rate} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn unregistered_host_disappears_from_context() {
        use legion_hosts_shim::*;
        // A minimal host stub so the fabric test stays in-crate.
        let f = Fabric::local(3);
        let h = Arc::new(StubHost::new());
        let loid = legion_core::HostObject::loid(&*h);
        f.register_host(h, DomainId(0));
        assert_eq!(f.host_count(), 1);
        assert!(f.lookup_host(loid).is_some());
        assert!(f.unregister_host(loid).is_some());
        assert!(f.lookup_host(loid).is_none());
        assert!(f.host_loids().is_empty());
        assert!(f.unregister_host(loid).is_none(), "idempotent");
    }

    /// A do-nothing HostObject for registry tests.
    mod legion_hosts_shim {
        use legion_core::*;
        use std::sync::Arc;

        pub struct StubHost {
            loid: Loid,
        }

        impl StubHost {
            pub fn new() -> Self {
                StubHost { loid: Loid::fresh(LoidKind::Host) }
            }
        }

        impl HostObject for StubHost {
            fn loid(&self) -> Loid {
                self.loid
            }
            fn make_reservation(
                &self,
                _: &ReservationRequest,
                _: SimTime,
            ) -> Result<ReservationToken, LegionError> {
                Err(LegionError::Other("stub".into()))
            }
            fn check_reservation(
                &self,
                _: &ReservationToken,
                _: SimTime,
            ) -> Result<ReservationStatus, LegionError> {
                Err(LegionError::InvalidToken)
            }
            fn cancel_reservation(&self, _: &ReservationToken) -> Result<(), LegionError> {
                Err(LegionError::InvalidToken)
            }
            fn start_object(
                &self,
                _: &ReservationToken,
                _: &[ObjectSpec],
                _: SimTime,
            ) -> Result<Vec<Loid>, LegionError> {
                Err(LegionError::Other("stub".into()))
            }
            fn kill_object(&self, o: Loid) -> Result<(), LegionError> {
                Err(LegionError::NoSuchObject(o))
            }
            fn deactivate_object(&self, o: Loid, _: SimTime) -> Result<Opr, LegionError> {
                Err(LegionError::NoSuchObject(o))
            }
            fn reactivate_object(&self, _: &Opr, _: SimTime) -> Result<(), LegionError> {
                Err(LegionError::Other("stub".into()))
            }
            fn running_objects(&self) -> Vec<Loid> {
                Vec::new()
            }
            fn get_compatible_vaults(&self) -> Vec<Loid> {
                Vec::new()
            }
            fn vault_ok(&self, _: Loid) -> bool {
                false
            }
            fn attributes(&self) -> AttributeDb {
                AttributeDb::new()
            }
            fn register_trigger(&self, _: Trigger) -> TriggerId {
                TriggerId(0)
            }
            fn remove_trigger(&self, _: TriggerId) {}
            fn register_outcall(&self, _: Arc<dyn Outcall>) {}
            fn reassess(&self, _: SimTime) -> Vec<Event> {
                Vec::new()
            }
        }
    }
}
