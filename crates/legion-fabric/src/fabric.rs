//! The fabric proper: object registry plus network model.

use crate::clock::VirtualClock;
use crate::domain::{DomainId, DomainTopology};
use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::MetricsLedger;
use crate::rng::DetRng;
use legion_core::{
    ClassObject, HostObject, LegionError, Loid, PlacementContext, SimDuration, SimTime,
    SpanKind, VaultDirectory, VaultObject,
};
use legion_trace::TraceSink;
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The in-process metacomputing fabric.
///
/// Holds every registered object, knows which domain each lives in, and
/// meters all inter-object traffic. Implements [`PlacementContext`] (for
/// Classes) and [`VaultDirectory`] (for Hosts), so core objects stay
/// independent of this crate.
pub struct Fabric {
    clock: Arc<VirtualClock>,
    topology: RwLock<DomainTopology>,
    /// Hosts and locations are copy-on-write `Arc` maps: readers on the
    /// reservation hot path grab one `Arc` clone per *attempt* (a
    /// [`RegistrySnapshot`]) instead of a registry read-lock per
    /// mapping; mutations clone-and-swap, which is cheap because
    /// registration is rare next to lookups.
    hosts: RwLock<Arc<BTreeMap<Loid, Arc<dyn HostObject>>>>,
    vaults: RwLock<BTreeMap<Loid, Arc<dyn VaultObject>>>,
    classes: RwLock<BTreeMap<Loid, Arc<dyn ClassObject>>>,
    /// Domain of every registered object (service objects included).
    locations: RwLock<Arc<BTreeMap<Loid, DomainId>>>,
    metrics: Arc<MetricsLedger>,
    tracer: Arc<TraceSink>,
    rng: DetRng,
    link_rng: Mutex<SmallRng>,
    chaos: Mutex<Option<ChaosState>>,
    /// Wire-latency emulation: real nanoseconds slept per simulated
    /// microsecond of message latency (0 = off, the default).
    realtime_ns_per_sim_us: std::sync::atomic::AtomicU64,
    /// Attached discrete-event scheduler, if any. When present, waits
    /// that would block a thread (wire emulation, enactor backoff) become
    /// scheduled events instead — see [`Fabric::attach_sim`].
    sim: RwLock<Option<crate::sim::SimHandle>>,
}

/// Live state of an installed fault plan: the not-yet-fired events plus
/// the active (healable) network effects, against the topology as it was
/// when the plan was installed.
struct ChaosState {
    pending: Vec<crate::faults::FaultEvent>,
    next: usize,
    base: DomainTopology,
    /// `(a, b, heal_at)` — both directions are cut until `heal_at`.
    partitions: Vec<(DomainId, DomainId, SimTime)>,
    /// `(drop_prob, extra_latency, until)`.
    bursts: Vec<(f64, SimDuration, SimTime)>,
}

impl Fabric {
    /// A fabric with the given topology and master seed.
    pub fn new(topology: DomainTopology, seed: u64) -> Arc<Self> {
        let rng = DetRng::new(seed);
        let link_rng = Mutex::new(rng.stream("fabric-links"));
        let clock = Arc::new(VirtualClock::new());
        let tracer = TraceSink::new();
        let clock_for_trace = Arc::clone(&clock);
        tracer.set_clock(Arc::new(move || clock_for_trace.now()));
        Arc::new(Fabric {
            clock,
            topology: RwLock::new(topology),
            hosts: RwLock::new(Arc::new(BTreeMap::new())),
            vaults: RwLock::new(BTreeMap::new()),
            classes: RwLock::new(BTreeMap::new()),
            locations: RwLock::new(Arc::new(BTreeMap::new())),
            metrics: Arc::new(MetricsLedger::default()),
            tracer,
            rng,
            link_rng,
            chaos: Mutex::new(None),
            realtime_ns_per_sim_us: std::sync::atomic::AtomicU64::new(0),
            sim: RwLock::new(None),
        })
    }

    /// A single-domain fabric with microsecond-scale local latency.
    pub fn local(seed: u64) -> Arc<Self> {
        Self::new(DomainTopology::single(SimDuration::from_micros(50)), seed)
    }

    // --- registry ---------------------------------------------------------

    /// Registers a host in `domain`.
    pub fn register_host(&self, host: Arc<dyn HostObject>, domain: DomainId) {
        let loid = host.loid();
        Arc::make_mut(&mut *self.hosts.write()).insert(loid, host);
        Arc::make_mut(&mut *self.locations.write()).insert(loid, domain);
    }

    /// Removes a host from the fabric — a crash or administrative
    /// removal. Subsequent lookups fail with `NoSuchHost`, which every
    /// RMI component must "accommodate ... at any step" (§3.1). Returns
    /// the removed host, if it existed.
    pub fn unregister_host(&self, loid: Loid) -> Option<Arc<dyn HostObject>> {
        Arc::make_mut(&mut *self.locations.write()).remove(&loid);
        Arc::make_mut(&mut *self.hosts.write()).remove(&loid)
    }

    /// Registers a vault in `domain`.
    pub fn register_vault(&self, vault: Arc<dyn VaultObject>, domain: DomainId) {
        let loid = vault.loid();
        self.vaults.write().insert(loid, vault);
        Arc::make_mut(&mut *self.locations.write()).insert(loid, domain);
    }

    /// Removes a vault from the fabric — the OPRs it holds become
    /// unreachable. Returns the removed vault, if it existed.
    pub fn unregister_vault(&self, loid: Loid) -> Option<Arc<dyn VaultObject>> {
        Arc::make_mut(&mut *self.locations.write()).remove(&loid);
        self.vaults.write().remove(&loid)
    }

    /// Registers a class object (classes are placeless; they are charged
    /// domain 0 traffic unless relocated with [`Fabric::place`]).
    pub fn register_class(&self, class: Arc<dyn ClassObject>) {
        let loid = class.loid();
        self.classes.write().insert(loid, class);
        Arc::make_mut(&mut *self.locations.write()).insert(loid, DomainId(0));
    }

    /// Places (or moves) an arbitrary object into a domain — used for
    /// service objects like Schedulers and Collections so their traffic
    /// is charged correctly.
    pub fn place(&self, loid: Loid, domain: DomainId) {
        Arc::make_mut(&mut *self.locations.write()).insert(loid, domain);
    }

    /// Takes a consistent copy-on-write snapshot of the host and
    /// location registries. A co-allocation attempt resolves every
    /// mapping against one snapshot — one `Arc` clone per attempt
    /// instead of a registry read-lock per mapping — and worker threads
    /// share it freely. Hosts registered or removed after the snapshot
    /// are invisible to it, exactly like a lookup that raced the change.
    pub fn registry(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            hosts: Arc::clone(&self.hosts.read()),
            locations: Arc::clone(&self.locations.read()),
        }
    }

    /// Looks up a registered class.
    pub fn lookup_class(&self, loid: Loid) -> Option<Arc<dyn ClassObject>> {
        self.classes.read().get(&loid).cloned()
    }

    /// All class LOIDs.
    pub fn class_loids(&self) -> Vec<Loid> {
        self.classes.read().keys().copied().collect()
    }

    /// The domain an object lives in (default domain 0 if unplaced).
    pub fn domain_of(&self, loid: Loid) -> DomainId {
        self.locations.read().get(&loid).copied().unwrap_or(DomainId(0))
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.read().len()
    }

    /// Number of registered vaults.
    pub fn vault_count(&self) -> usize {
        self.vaults.read().len()
    }

    // --- network model ------------------------------------------------------

    /// Meters one message from `from` to `to`.
    ///
    /// Applies the topology's loss probability (an error models a lost or
    /// undeliverable message the caller must handle, §3.1's "failure at
    /// any step"), charges latency to the ledger, and counts the message.
    pub fn link(&self, from: Loid, to: Loid) -> Result<SimDuration, LegionError> {
        let (a, b) = (self.domain_of(from), self.domain_of(to));
        self.link_between(a, b, None, from, to)
    }

    /// [`Fabric::link`] resolving domains from a [`RegistrySnapshot`]
    /// and, when `rng` is given, drawing any loss decision from the
    /// caller's stream instead of the fabric's shared one. Parallel
    /// reservation workers pass their per-worker `DetRng` stream so the
    /// loss sequence each mapping sees is a function of the master seed
    /// alone, not of thread interleaving; `None` preserves the serial
    /// path's shared stream bit-for-bit.
    pub fn link_via(
        &self,
        registry: &RegistrySnapshot,
        from: Loid,
        to: Loid,
        rng: Option<&mut SmallRng>,
    ) -> Result<SimDuration, LegionError> {
        let (a, b) = (registry.domain_of(from), registry.domain_of(to));
        self.link_between(a, b, rng, from, to)
    }

    fn link_between(
        &self,
        a: DomainId,
        b: DomainId,
        rng: Option<&mut SmallRng>,
        from: Loid,
        to: Loid,
    ) -> Result<SimDuration, LegionError> {
        let topo = self.topology.read();
        MetricsLedger::bump(&self.metrics.messages);
        let p = topo.drop_prob(a, b);
        // The draw happens only on lossy links, so lossless runs consume
        // nothing from either stream regardless of which one is wired.
        if p > 0.0 {
            let draw = match rng {
                Some(r) => r.gen::<f64>(),
                None => self.link_rng.lock().gen::<f64>(),
            };
            if draw < p {
                MetricsLedger::bump(&self.metrics.messages_dropped);
                return Err(LegionError::NetworkFailure { from, to });
            }
        }
        let lat = topo.latency(a, b);
        drop(topo);
        self.metrics.charge_latency(lat);
        // The clock does not advance for message latency; the active
        // trace span (if any) absorbs it instead, so per-stage latency
        // histograms see where the simulated network time went.
        legion_trace::charge_active(lat);
        let scale = self
            .realtime_ns_per_sim_us
            .load(std::sync::atomic::Ordering::Relaxed);
        if scale > 0 {
            if let Some(sim) = self.sim.read().as_ref() {
                // Under the discrete-event scheduler the wait is an
                // event, not a sleep: a sim task parks until the wake at
                // `now + lat` fires, so the episode genuinely spends the
                // wire latency in virtual time while other tasks run —
                // at full wall-clock speed. Non-task callers (control
                // thread closures, fan-out workers) cannot park and skip
                // the wait; their latency is still charged above.
                if sim.in_task() {
                    sim.sleep(lat);
                }
            } else {
                // Emulated wire latency: block the calling thread for
                // real time proportional to the simulated latency, as a
                // real RPC over this link would. Sub-20µs sleeps are
                // skipped — the kernel timer floor would inflate them
                // well past scale.
                let ns = lat.as_micros().saturating_mul(scale);
                if ns >= 20_000 {
                    std::thread::sleep(std::time::Duration::from_nanos(ns));
                }
            }
        }
        Ok(lat)
    }

    /// Enables wire-latency emulation: every metered message blocks its
    /// calling thread for `ns_per_sim_us` real nanoseconds per simulated
    /// microsecond of link latency (`0`, the default, disables it).
    ///
    /// Simulated time is unaffected — ledger charges, trace spans, and
    /// every loss draw are identical with emulation on or off. What
    /// changes is *wall-clock* behaviour: threads genuinely wait out
    /// their messages, so concurrency that overlaps wide-area latency
    /// (reservation fan-out, batched placement) shows its real effect
    /// even on a single core, exactly as it would against a real WAN.
    /// Sleeps that would round below ~20µs are skipped to stay clear of
    /// the kernel timer floor.
    ///
    /// With a scheduler attached ([`Fabric::attach_sim`]), the wait is a
    /// sim-time event instead: the calling task parks for the message's
    /// latency in *virtual* time and the run never sleeps for real —
    /// latency-overlap scenarios execute at full speed.
    pub fn set_wire_emulation(&self, ns_per_sim_us: u64) {
        self.realtime_ns_per_sim_us
            .store(ns_per_sim_us, std::sync::atomic::Ordering::Relaxed);
    }

    /// Mutates the topology (e.g. inject loss mid-experiment).
    pub fn with_topology<R>(&self, f: impl FnOnce(&mut DomainTopology) -> R) -> R {
        f(&mut self.topology.write())
    }

    /// Read-only topology access.
    pub fn topology<R>(&self, f: impl FnOnce(&DomainTopology) -> R) -> R {
        f(&self.topology.read())
    }

    // --- shared services ------------------------------------------------------

    /// The fabric clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The metrics ledger.
    pub fn metrics(&self) -> &Arc<MetricsLedger> {
        &self.metrics
    }

    /// The trace sink. Disabled by default — spans are no-ops until
    /// [`Fabric::enable_tracing`] is called — so untraced experiments
    /// pay one atomic load per instrumentation point.
    pub fn tracer(&self) -> &Arc<TraceSink> {
        &self.tracer
    }

    /// Turns on pipeline tracing and returns the sink.
    pub fn enable_tracing(&self) -> Arc<TraceSink> {
        self.tracer.enable();
        Arc::clone(&self.tracer)
    }

    /// The deterministic RNG factory.
    pub fn rng(&self) -> DetRng {
        self.rng
    }

    // --- discrete-event scheduling --------------------------------------

    /// Attaches a discrete-event scheduler (which must drive this
    /// fabric's clock). While attached, [`Fabric::wait`] parks the
    /// calling sim task instead of advancing the clock directly, and
    /// wire-emulation waits become scheduled events instead of real
    /// `thread::sleep`s. The scoped-thread path is unaffected for
    /// fabrics that never attach — the config switch is simply whether
    /// a harness calls this.
    pub fn attach_sim(&self, sim: crate::sim::SimHandle) {
        *self.sim.write() = Some(sim);
    }

    /// Detaches the scheduler, restoring pure scoped-thread behaviour.
    pub fn detach_sim(&self) {
        *self.sim.write() = None;
    }

    /// The attached scheduler, if any.
    pub fn sim(&self) -> Option<crate::sim::SimHandle> {
        self.sim.read().clone()
    }

    /// Waits out `d` of simulated time in whichever way the current
    /// execution mode calls for: a sim task parks on a scheduled wake
    /// event (other tasks run meanwhile); everything else advances the
    /// shared clock directly, exactly as the pre-sim backoff path did.
    /// Either way the clock reads `now + d` when this returns, so retry
    /// deadlines and reservation expiry behave identically under both
    /// schedulers.
    pub fn wait(&self, d: SimDuration) {
        let sim = self.sim.read().clone();
        match sim {
            Some(s) if s.in_task() => s.sleep(d),
            _ => {
                self.clock.advance(d);
            }
        }
    }

    /// Drives one reassessment tick on every host, in LOID order,
    /// advancing the clock by `dt` first (and firing any fault-plan
    /// events that have come due). Returns the number of RGE events
    /// raised — crashed hosts contribute none, which is precisely the
    /// "missed report" signal a Monitor watches for.
    pub fn tick_all_hosts(&self, dt: SimDuration) -> usize {
        let now = self.clock.advance(dt);
        self.fire_due_faults(now);
        self.reassess_all(now)
    }

    /// Runs one reassessment pass over every registered host, in LOID
    /// order, without touching the clock or the fault plan — the
    /// tick-as-event form used by the sim harness, where the scheduler
    /// owns time. Returns the number of RGE events raised.
    pub fn reassess_all(&self, now: SimTime) -> usize {
        let hosts: Vec<Arc<dyn HostObject>> = self.hosts.read().values().cloned().collect();
        let mut events = 0;
        for h in hosts {
            events += h.reassess(now).len();
        }
        events
    }

    // --- fault injection --------------------------------------------------

    /// Installs a fault plan; its events fire as [`Fabric::tick_all_hosts`]
    /// advances the clock past them. Replaces any previous plan (active
    /// partitions and bursts from the old plan are healed first).
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        let mut chaos = self.chaos.lock();
        if let Some(old) = chaos.take() {
            *self.topology.write() = old.base.clone();
        }
        *chaos = Some(ChaosState {
            pending: plan.events().to_vec(),
            next: 0,
            base: self.topology.read().clone(),
            partitions: Vec::new(),
            bursts: Vec::new(),
        });
    }

    /// Fires every installed fault event with `at <= now`, heals expired
    /// partitions and bursts, and rebuilds the topology from the base
    /// plus the still-active effects. [`Fabric::tick_all_hosts`] calls
    /// this as it advances the clock; the sim harness instead schedules
    /// it as an event at each of the plan's [`FaultPlan::firing_times`].
    pub fn fire_due_faults(&self, now: SimTime) {
        let mut chaos = self.chaos.lock();
        let Some(state) = chaos.as_mut() else { return };
        let mut network_dirty = false;

        while state.next < state.pending.len() && state.pending[state.next].at <= now {
            let ev = state.pending[state.next].clone();
            state.next += 1;
            MetricsLedger::bump(&self.metrics.faults_injected);
            let span = self.tracer.span(SpanKind::Fault);
            span.attr("due_us", ev.at.as_micros() as i64);
            match ev.action {
                FaultAction::CrashHost(l) => {
                    span.attr("action", "crash_host");
                    span.attr("host", l.to_string());
                    // The host counts its own crash (idempotently); the
                    // fabric only delivers the fault.
                    if let Some(h) = self.hosts.read().get(&l) {
                        h.crash();
                    }
                }
                FaultAction::RestartHost(l) => {
                    span.attr("action", "restart_host");
                    span.attr("host", l.to_string());
                    if let Some(h) = self.hosts.read().get(&l) {
                        h.restart(now);
                    }
                }
                FaultAction::LoseVault(l) => {
                    span.attr("action", "lose_vault");
                    span.attr("vault", l.to_string());
                    if self.unregister_vault(l).is_some() {
                        MetricsLedger::bump(&self.metrics.vaults_lost);
                    }
                }
                FaultAction::Partition { a, b, heal_at } => {
                    span.attr("action", "partition");
                    span.attr("a", a.0 as i64);
                    span.attr("b", b.0 as i64);
                    span.attr("heal_at_us", heal_at.as_micros() as i64);
                    state.partitions.push((a, b, heal_at));
                    MetricsLedger::bump(&self.metrics.partitions_started);
                    network_dirty = true;
                }
                FaultAction::DegradeLinks { drop_prob, extra_latency, until } => {
                    span.attr("action", "degrade_links");
                    span.attr("drop_prob", drop_prob);
                    span.attr("extra_latency_us", extra_latency.as_micros() as i64);
                    span.attr("until_us", until.as_micros() as i64);
                    state.bursts.push((drop_prob, extra_latency, until));
                    MetricsLedger::bump(&self.metrics.link_bursts);
                    network_dirty = true;
                }
            }
            span.end_ok();
        }

        let before = state.partitions.len();
        state.partitions.retain(|&(_, _, heal_at)| heal_at > now);
        let healed = before - state.partitions.len();
        if healed > 0 {
            MetricsLedger::bump_by(&self.metrics.partitions_healed, healed as u64);
            network_dirty = true;
        }
        let burst_count = state.bursts.len();
        state.bursts.retain(|&(_, _, until)| until > now);
        if state.bursts.len() != burst_count {
            network_dirty = true;
        }

        if network_dirty {
            // Recompute from the base so overlapping effects compose and
            // heal cleanly: bursts degrade every inter-domain pair, then
            // partitions sever their pairs outright.
            let mut topo = state.base.clone();
            let n = topo.len() as u16;
            for &(p, extra, _) in &state.bursts {
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            let (a, b) = (DomainId(i), DomainId(j));
                            topo.set_drop_prob(a, b, topo.drop_prob(a, b).max(p));
                            topo.set_latency(a, b, topo.latency(a, b) + extra);
                        }
                    }
                }
            }
            for &(a, b, _) in &state.partitions {
                topo.set_drop_prob(a, b, 1.0);
                topo.set_drop_prob(b, a, 1.0);
            }
            *self.topology.write() = topo;
        }
    }

    /// Whether a partition currently severs the two domains.
    pub fn is_partitioned(&self, a: DomainId, b: DomainId) -> bool {
        self.chaos
            .lock()
            .as_ref()
            .is_some_and(|s| {
                s.partitions
                    .iter()
                    .any(|&(x, y, _)| (x == a && y == b) || (x == b && y == a))
            })
    }
}

/// A consistent, lock-free view of the host and location registries,
/// taken once per reservation attempt via [`Fabric::registry`]. Cloning
/// is two `Arc` bumps; lookups never touch a fabric lock, so a fan-out
/// of worker threads resolving mappings concurrently contend on nothing.
#[derive(Clone)]
pub struct RegistrySnapshot {
    hosts: Arc<BTreeMap<Loid, Arc<dyn HostObject>>>,
    locations: Arc<BTreeMap<Loid, DomainId>>,
}

impl RegistrySnapshot {
    /// Looks up a host as of the snapshot.
    pub fn lookup_host(&self, loid: Loid) -> Option<Arc<dyn HostObject>> {
        self.hosts.get(&loid).cloned()
    }

    /// The domain an object lived in as of the snapshot (default domain
    /// 0 if unplaced — same rule as [`Fabric::domain_of`]).
    pub fn domain_of(&self, loid: Loid) -> DomainId {
        self.locations.get(&loid).copied().unwrap_or(DomainId(0))
    }

    /// Number of hosts in the snapshot.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }
}

impl std::fmt::Debug for RegistrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistrySnapshot")
            .field("hosts", &self.hosts.len())
            .field("locations", &self.locations.len())
            .finish()
    }
}

impl PlacementContext for Fabric {
    fn lookup_host(&self, loid: Loid) -> Option<Arc<dyn HostObject>> {
        self.hosts.read().get(&loid).cloned()
    }

    fn host_loids(&self) -> Vec<Loid> {
        self.hosts.read().keys().copied().collect()
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }
}

impl VaultDirectory for Fabric {
    fn lookup_vault(&self, loid: Loid) -> Option<Arc<dyn VaultObject>> {
        self.vaults.read().get(&loid).cloned()
    }

    fn vault_loids(&self) -> Vec<Loid> {
        self.vaults.read().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::LoidKind;

    #[test]
    fn placement_and_domains() {
        let f = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(10), SimDuration::from_millis(30)),
            1,
        );
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        f.place(a, DomainId(0));
        f.place(b, DomainId(1));
        assert_eq!(f.domain_of(a), DomainId(0));
        assert_eq!(f.domain_of(b), DomainId(1));
        // Unknown objects default to domain 0.
        assert_eq!(f.domain_of(Loid::synthetic(LoidKind::Service, 99)), DomainId(0));
    }

    #[test]
    fn link_charges_latency_and_counts() {
        let f = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(10), SimDuration::from_millis(30)),
            1,
        );
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        f.place(a, DomainId(0));
        f.place(b, DomainId(1));
        let lat = f.link(a, b).unwrap();
        assert_eq!(lat, SimDuration::from_millis(30));
        let snap = f.metrics().snapshot();
        assert_eq!(snap.messages, 1);
        assert_eq!(snap.sim_latency_us, 30_000);
    }

    #[test]
    fn lossy_links_fail_sometimes() {
        let f = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(1), SimDuration::from_micros(1)),
            7,
        );
        f.with_topology(|t| t.set_inter_domain_drop_prob(0.5));
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        f.place(a, DomainId(0));
        f.place(b, DomainId(1));
        let mut failures = 0;
        for _ in 0..200 {
            if f.link(a, b).is_err() {
                failures += 1;
            }
        }
        // With p = 0.5, observing fewer than 50 or more than 150 failures
        // in 200 trials is vanishingly unlikely.
        assert!((50..=150).contains(&failures), "failures = {failures}");
        assert_eq!(f.metrics().snapshot().messages_dropped, failures);
    }

    #[test]
    fn intra_domain_is_lossless_by_default() {
        let f = Fabric::local(3);
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        for _ in 0..100 {
            assert!(f.link(a, b).is_ok());
        }
    }

    #[test]
    fn registry_snapshot_is_immutable_view() {
        let f = Fabric::local(3);
        let a = Loid::synthetic(LoidKind::Service, 1);
        f.place(a, DomainId(0));
        let snap = f.registry();
        assert_eq!(snap.host_count(), 0);
        assert_eq!(snap.domain_of(a), DomainId(0));
        // Mutations after the snapshot are invisible to it.
        let b = Loid::synthetic(LoidKind::Service, 2);
        f.place(b, DomainId(0));
        f.place(a, DomainId(0));
        assert_eq!(snap.domain_of(b), DomainId(0), "unknown objects default to domain 0");
        assert!(snap.lookup_host(b).is_none());
        // A fresh snapshot sees the new placements.
        assert_eq!(f.registry().domain_of(a), DomainId(0));
    }

    #[test]
    fn link_via_caller_stream_is_deterministic_and_independent() {
        let run = |seed: u64| -> Vec<bool> {
            let f = Fabric::new(
                DomainTopology::uniform(
                    2,
                    SimDuration::from_micros(1),
                    SimDuration::from_micros(1),
                ),
                seed,
            );
            f.with_topology(|t| t.set_inter_domain_drop_prob(0.3));
            let a = Loid::synthetic(LoidKind::Service, 1);
            let b = Loid::synthetic(LoidKind::Service, 2);
            f.place(a, DomainId(0));
            f.place(b, DomainId(1));
            let snap = f.registry();
            let mut rng = f.rng().stream_indexed2("worker", 0, 0);
            (0..50).map(|_| f.link_via(&snap, a, b, Some(&mut rng)).is_ok()).collect()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn wire_emulation_blocks_real_time_without_changing_results() {
        let f = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(100), SimDuration::from_millis(40)),
            7,
        );
        let (a, b) = (Loid::fresh(LoidKind::Service), Loid::fresh(LoidKind::Service));
        f.place(a, DomainId(0));
        f.place(b, DomainId(1));
        let plain = f.link(a, b).expect("lossless link");

        // 10 ns per simulated µs: the 40 ms hop emulates as 400 µs.
        f.set_wire_emulation(10);
        let start = std::time::Instant::now();
        let emulated = f.link(a, b).expect("lossless link");
        let waited = start.elapsed();
        f.set_wire_emulation(0);

        assert_eq!(plain, emulated, "emulation never alters simulated results");
        assert!(
            waited >= std::time::Duration::from_micros(350),
            "inter-domain hop must block ~400µs real, waited {waited:?}"
        );
        // Intra-domain (100 µs sim → 1 µs real) stays under the 20 µs
        // sleep floor and is skipped entirely.
        f.set_wire_emulation(10);
        let start = std::time::Instant::now();
        f.link(a, a).expect("lossless link");
        assert!(start.elapsed() < std::time::Duration::from_millis(5));
        f.set_wire_emulation(0);
    }

    #[test]
    fn link_via_without_stream_matches_link() {
        // With rng = None, link_via consumes the same shared stream as
        // link — interleaving the two draws one sequence.
        let f = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(1), SimDuration::from_micros(1)),
            11,
        );
        f.with_topology(|t| t.set_inter_domain_drop_prob(0.3));
        let a = Loid::synthetic(LoidKind::Service, 1);
        let b = Loid::synthetic(LoidKind::Service, 2);
        f.place(a, DomainId(0));
        f.place(b, DomainId(1));
        let snap = f.registry();
        let mixed: Vec<bool> = (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    f.link(a, b).is_ok()
                } else {
                    f.link_via(&snap, a, b, None).is_ok()
                }
            })
            .collect();

        let f2 = Fabric::new(
            DomainTopology::uniform(2, SimDuration::from_micros(1), SimDuration::from_micros(1)),
            11,
        );
        f2.with_topology(|t| t.set_inter_domain_drop_prob(0.3));
        f2.place(a, DomainId(0));
        f2.place(b, DomainId(1));
        let pure: Vec<bool> = (0..50).map(|_| f2.link(a, b).is_ok()).collect();
        assert_eq!(mixed, pure);
    }

    #[test]
    fn deterministic_loss_sequence() {
        let run = |seed: u64| -> Vec<bool> {
            let f = Fabric::new(
                DomainTopology::uniform(
                    2,
                    SimDuration::from_micros(1),
                    SimDuration::from_micros(1),
                ),
                seed,
            );
            f.with_topology(|t| t.set_inter_domain_drop_prob(0.3));
            let a = Loid::synthetic(LoidKind::Service, 1);
            let b = Loid::synthetic(LoidKind::Service, 2);
            f.place(a, DomainId(0));
            f.place(b, DomainId(1));
            (0..50).map(|_| f.link(a, b).is_ok()).collect()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}

#[cfg(test)]
mod stat_tests {
    use super::*;
    use legion_core::LoidKind;

    #[test]
    fn loss_frequency_tracks_probability() {
        // Empirical loss rate over many trials stays near the configured
        // probability for several p values (deterministic seed).
        for (p, lo, hi) in [(0.1, 0.05, 0.16), (0.3, 0.24, 0.37), (0.7, 0.62, 0.78)] {
            let f = Fabric::new(
                DomainTopology::uniform(
                    2,
                    SimDuration::from_micros(1),
                    SimDuration::from_micros(1),
                ),
                1234,
            );
            f.with_topology(|t| t.set_inter_domain_drop_prob(p));
            let a = Loid::synthetic(LoidKind::Service, 1);
            let b = Loid::synthetic(LoidKind::Service, 2);
            f.place(a, DomainId(0));
            f.place(b, DomainId(1));
            let n = 2000;
            let drops = (0..n).filter(|_| f.link(a, b).is_err()).count();
            let rate = drops as f64 / n as f64;
            assert!(
                (lo..=hi).contains(&rate),
                "p = {p}: empirical {rate} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn unregistered_host_disappears_from_context() {
        use legion_hosts_shim::*;
        // A minimal host stub so the fabric test stays in-crate.
        let f = Fabric::local(3);
        let h = Arc::new(StubHost::new());
        let loid = legion_core::HostObject::loid(&*h);
        f.register_host(h, DomainId(0));
        assert_eq!(f.host_count(), 1);
        assert!(f.lookup_host(loid).is_some());
        assert!(f.unregister_host(loid).is_some());
        assert!(f.lookup_host(loid).is_none());
        assert!(f.host_loids().is_empty());
        assert!(f.unregister_host(loid).is_none(), "idempotent");
    }

    /// A do-nothing HostObject for registry tests.
    mod legion_hosts_shim {
        use legion_core::*;
        use std::sync::Arc;

        pub struct StubHost {
            loid: Loid,
        }

        impl StubHost {
            pub fn new() -> Self {
                StubHost { loid: Loid::fresh(LoidKind::Host) }
            }
        }

        impl HostObject for StubHost {
            fn loid(&self) -> Loid {
                self.loid
            }
            fn make_reservation(
                &self,
                _: &ReservationRequest,
                _: SimTime,
            ) -> Result<ReservationToken, LegionError> {
                Err(LegionError::Other("stub".into()))
            }
            fn check_reservation(
                &self,
                _: &ReservationToken,
                _: SimTime,
            ) -> Result<ReservationStatus, LegionError> {
                Err(LegionError::InvalidToken)
            }
            fn cancel_reservation(&self, _: &ReservationToken) -> Result<(), LegionError> {
                Err(LegionError::InvalidToken)
            }
            fn start_object(
                &self,
                _: &ReservationToken,
                _: &[ObjectSpec],
                _: SimTime,
            ) -> Result<Vec<Loid>, LegionError> {
                Err(LegionError::Other("stub".into()))
            }
            fn kill_object(&self, o: Loid) -> Result<(), LegionError> {
                Err(LegionError::NoSuchObject(o))
            }
            fn deactivate_object(&self, o: Loid, _: SimTime) -> Result<Opr, LegionError> {
                Err(LegionError::NoSuchObject(o))
            }
            fn reactivate_object(&self, _: &Opr, _: SimTime) -> Result<(), LegionError> {
                Err(LegionError::Other("stub".into()))
            }
            fn running_objects(&self) -> Vec<Loid> {
                Vec::new()
            }
            fn get_compatible_vaults(&self) -> Vec<Loid> {
                Vec::new()
            }
            fn vault_ok(&self, _: Loid) -> bool {
                false
            }
            fn attributes(&self) -> AttributeDb {
                AttributeDb::new()
            }
            fn register_trigger(&self, _: Trigger) -> TriggerId {
                TriggerId(0)
            }
            fn remove_trigger(&self, _: TriggerId) {}
            fn register_outcall(&self, _: Arc<dyn Outcall>) {}
            fn reassess(&self, _: SimTime) -> Vec<Event> {
                Vec::new()
            }
        }
    }
}
