//! Deterministic fault injection — the chaos side of the fabric.
//!
//! "Legion objects are built to accommodate failure at any step in the
//! scheduling process" (§3.1). This module supplies the failures: a
//! [`FaultPlan`] schedules host crashes and restarts, vault loss, domain
//! partitions and message-degradation bursts at virtual times. The fabric
//! applies due events at each tick ([`crate::Fabric::tick_all_hosts`]),
//! counts every injection in the [`crate::MetricsLedger`], and heals
//! partitions/bursts when their windows close.
//!
//! Plans are data, not callbacks, and the randomized builders draw from
//! [`DetRng`] streams — the whole chaos run is reproducible from the one
//! fabric seed.

use crate::domain::DomainId;
use crate::rng::DetRng;
use legion_core::{Loid, SimDuration, SimTime};
use rand::Rng;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Fail-stop a host: volatile state is lost and every call answers
    /// `HostDown` until the matching [`FaultAction::RestartHost`].
    CrashHost(Loid),
    /// Bring a crashed host back up with reclaimed (empty) resources.
    RestartHost(Loid),
    /// Remove a vault from the fabric; the OPRs it holds become
    /// unreachable (permanently — vault loss does not heal).
    LoseVault(Loid),
    /// Cut both directions between two domains until `heal_at`: every
    /// message between them is dropped. Indistinguishable from a crash
    /// to anything on the far side.
    Partition {
        /// One side of the cut.
        a: DomainId,
        /// The other side.
        b: DomainId,
        /// When the partition heals.
        heal_at: SimTime,
    },
    /// A burst of inter-domain message loss and added latency until
    /// `until` (intra-domain traffic is unaffected).
    DegradeLinks {
        /// Loss probability applied to every inter-domain pair (takes
        /// the maximum with the base topology's own loss).
        drop_prob: f64,
        /// Latency added to every inter-domain pair.
        extra_latency: SimDuration,
        /// When the burst ends.
        until: SimTime,
    },
}

/// A fault scheduled at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// Per-kind totals of the events in a plan, for checking the ledger's
/// injected-fault counters against what was scheduled.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounts {
    /// `CrashHost` events.
    pub host_crashes: u64,
    /// `RestartHost` events.
    pub host_restarts: u64,
    /// `LoseVault` events.
    pub vaults_lost: u64,
    /// `Partition` events.
    pub partitions: u64,
    /// `DegradeLinks` events.
    pub link_bursts: u64,
}

impl FaultCounts {
    /// Sum over all kinds.
    pub fn total(&self) -> u64 {
        self.host_crashes
            + self.host_restarts
            + self.vaults_lost
            + self.partitions
            + self.link_bursts
    }
}

/// A time-ordered schedule of faults to inject.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder: schedule `action` at `at`.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// Schedules `action` at `at`.
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        self.events.push(FaultEvent { at, action });
        self.events.sort_by_key(|e| e.at);
    }

    /// The scheduled events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Totals by kind.
    pub fn counts(&self) -> FaultCounts {
        let mut c = FaultCounts::default();
        for e in &self.events {
            match e.action {
                FaultAction::CrashHost(_) => c.host_crashes += 1,
                FaultAction::RestartHost(_) => c.host_restarts += 1,
                FaultAction::LoseVault(_) => c.vaults_lost += 1,
                FaultAction::Partition { .. } => c.partitions += 1,
                FaultAction::DegradeLinks { .. } => c.link_bursts += 1,
            }
        }
        c
    }

    /// Random crash/restart churn: `crashes` crash events on hosts drawn
    /// from `hosts`, uniformly placed in `(0, horizon)`, each followed by
    /// a restart `down_for` later. Deterministic in the `rng` seed; a
    /// host is never crashed again while still down.
    pub fn random_churn(
        rng: &DetRng,
        hosts: &[Loid],
        horizon: SimDuration,
        crashes: usize,
        down_for: SimDuration,
    ) -> Self {
        assert!(!hosts.is_empty(), "churn plan needs at least one host");
        let mut r = rng.stream("fault-plan-churn");
        let mut plan = FaultPlan::new();
        // Last time each host comes back up, so crash windows never
        // overlap on one host.
        let mut up_at = vec![SimTime::ZERO; hosts.len()];
        let horizon_us = horizon.as_micros().max(1);
        for _ in 0..crashes {
            let i = r.gen_range(0..hosts.len());
            let t = SimTime::from_micros(r.gen_range(0..horizon_us));
            let at = if t < up_at[i] { up_at[i] } else { t };
            let back = at + down_for;
            plan.push(at, FaultAction::CrashHost(hosts[i]));
            plan.push(back, FaultAction::RestartHost(hosts[i]));
            up_at[i] = back;
        }
        plan
    }

    /// Random transient partitions between distinct domain pairs drawn
    /// from `0..n_domains`, uniformly placed in `(0, horizon)`, each
    /// healing `lasting` later. Deterministic in the `rng` seed.
    pub fn random_partitions(
        rng: &DetRng,
        n_domains: u16,
        horizon: SimDuration,
        partitions: usize,
        lasting: SimDuration,
    ) -> Self {
        assert!(n_domains >= 2, "partitions need at least two domains");
        let mut r = rng.stream("fault-plan-partitions");
        let mut plan = FaultPlan::new();
        let horizon_us = horizon.as_micros().max(1);
        for _ in 0..partitions {
            let a = r.gen_range(0..n_domains);
            let mut b = r.gen_range(0..n_domains);
            while b == a {
                b = r.gen_range(0..n_domains);
            }
            let at = SimTime::from_micros(r.gen_range(0..horizon_us));
            plan.push(
                at,
                FaultAction::Partition {
                    a: DomainId(a),
                    b: DomainId(b),
                    heal_at: at + lasting,
                },
            );
        }
        plan
    }

    /// Merges another plan's events into this one.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Every instant at which the installed plan changes fabric state:
    /// each event's firing time plus each partition's `heal_at` and each
    /// burst's `until`, sorted and deduplicated. The sim harness
    /// schedules a [`crate::Fabric::fire_due_faults`] event at each so
    /// injections and heals land at their exact virtual times instead of
    /// being quantised to tick boundaries.
    pub fn firing_times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = Vec::with_capacity(self.events.len() * 2);
        for e in &self.events {
            times.push(e.at);
            match e.action {
                FaultAction::Partition { heal_at, .. } => times.push(heal_at),
                FaultAction::DegradeLinks { until, .. } => times.push(until),
                _ => {}
            }
        }
        times.sort();
        times.dedup();
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::LoidKind;

    fn hosts(n: u64) -> Vec<Loid> {
        (1..=n).map(|i| Loid::synthetic(LoidKind::Host, i)).collect()
    }

    #[test]
    fn counts_match_events() {
        let h = hosts(2);
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(1), FaultAction::CrashHost(h[0]))
            .at(SimTime::from_secs(5), FaultAction::RestartHost(h[0]))
            .at(
                SimTime::from_secs(2),
                FaultAction::Partition {
                    a: DomainId(0),
                    b: DomainId(1),
                    heal_at: SimTime::from_secs(4),
                },
            )
            .at(SimTime::from_secs(3), FaultAction::LoseVault(Loid::synthetic(LoidKind::Vault, 1)));
        let c = plan.counts();
        assert_eq!(c.host_crashes, 1);
        assert_eq!(c.host_restarts, 1);
        assert_eq!(c.partitions, 1);
        assert_eq!(c.vaults_lost, 1);
        assert_eq!(c.link_bursts, 0);
        assert_eq!(c.total(), 4);
        // Events come back time-ordered regardless of insertion order.
        let times: Vec<_> = plan.events().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn churn_is_deterministic_and_consistent() {
        let rng = DetRng::new(77);
        let h = hosts(4);
        let a = FaultPlan::random_churn(&rng, &h, SimDuration::from_secs(600), 8, SimDuration::from_secs(60));
        let b = FaultPlan::random_churn(&rng, &h, SimDuration::from_secs(600), 8, SimDuration::from_secs(60));
        assert_eq!(a, b);
        assert_eq!(a.counts().host_crashes, 8);
        assert_eq!(a.counts().host_restarts, 8);
        // Crash/restart alternate per host: a host is never crashed
        // while already down.
        for host in &h {
            let mut down = false;
            for e in a.events() {
                match &e.action {
                    FaultAction::CrashHost(l) if l == host => {
                        assert!(!down, "host {host} crashed while down");
                        down = true;
                    }
                    FaultAction::RestartHost(l) if l == host => {
                        assert!(down, "host {host} restarted while up");
                        down = false;
                    }
                    _ => {}
                }
            }
        }
        // A different seed yields a different plan.
        let c = FaultPlan::random_churn(
            &DetRng::new(78),
            &h,
            SimDuration::from_secs(600),
            8,
            SimDuration::from_secs(60),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn partitions_pick_distinct_domains() {
        let rng = DetRng::new(5);
        let plan =
            FaultPlan::random_partitions(&rng, 3, SimDuration::from_secs(600), 6, SimDuration::from_secs(90));
        assert_eq!(plan.counts().partitions, 6);
        for e in plan.events() {
            if let FaultAction::Partition { a, b, heal_at } = &e.action {
                assert_ne!(a, b);
                assert!(*heal_at > e.at);
            }
        }
    }
}
