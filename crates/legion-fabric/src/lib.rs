//! The simulated metacomputing fabric.
//!
//! The paper's testbed is a wide-area collection of Unix machines across
//! many administrative domains. This crate is the substitution documented
//! in DESIGN.md: an in-process fabric holding the registered Legion
//! objects (Hosts, Vaults, Classes and service objects), organized into
//! [`Domain`]s with a configurable inter-domain latency / message-failure
//! model, a [`VirtualClock`] and a deterministic RNG.
//!
//! Every inter-object interaction in the experiments goes through
//! [`Fabric::link`], which (1) applies the domain-pair failure
//! probability, (2) charges the domain-pair latency to the metrics
//! ledger, and (3) counts the message. The RMI's observable behaviour —
//! who wins, where crossovers fall — depends on this structure, not on
//! real sockets, so experiments are reproducible bit-for-bit.

pub mod clock;
pub mod domain;
pub mod fabric;
pub mod faults;
pub mod metrics;
pub mod reconcile;
pub mod rng;
pub mod sim;

pub use clock::VirtualClock;
pub use domain::{Domain, DomainId, DomainTopology};
pub use fabric::{Fabric, RegistrySnapshot};
pub use faults::{FaultAction, FaultCounts, FaultEvent, FaultPlan};
pub use metrics::{MetricsLedger, MetricsSnapshot};
pub use reconcile::{reconcile_trace, reconciliation_report, Mismatch};
pub use rng::DetRng;
pub use sim::{SimError, SimHandle, SimRunStats};
