//! The determinism law, property-tested at the fabric level.
//!
//! For *any* seed and *any* synthetic event load — actor tasks pinned to
//! domains, lossy links, virtual-time sleeps, a fault plan with a
//! partition and a link burst — two runs of the discrete-event scheduler
//! must produce byte-identical `legion-trace/v1` JSON exports, identical
//! `MetricsLedger` snapshots, and the same event schedule. Everything
//! here uses `Loid::synthetic`, so no global state leaks between runs
//! and the law holds without the LOID replay guard.

use legion_core::{
    AttributeDb, LegionError, Loid, LoidKind, Opr, SimDuration, SimTime, SpanKind, StorageStats,
    VaultObject,
};
use legion_fabric::{
    DomainId, DomainTopology, Fabric, FaultAction, FaultPlan, MetricsSnapshot, SimHandle,
    SimRunStats,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A vault that exists only to pin a synthetic LOID to a domain, so
/// `Fabric::link` resolves cross-domain paths without a full host stack.
struct PinnedEndpoint(Loid);

impl VaultObject for PinnedEndpoint {
    fn loid(&self) -> Loid {
        self.0
    }
    fn attributes(&self) -> AttributeDb {
        AttributeDb::new()
    }
    fn store_opr(&self, _opr: Opr) -> Result<(), LegionError> {
        Ok(())
    }
    fn fetch_opr(&self, object: Loid) -> Result<Opr, LegionError> {
        Err(LegionError::NetworkFailure { from: self.0, to: object })
    }
    fn delete_opr(&self, _object: Loid) -> Result<(), LegionError> {
        Ok(())
    }
    fn holds(&self, _object: Loid) -> bool {
        false
    }
    fn compatible_with_host(&self, _host_attrs: &AttributeDb) -> bool {
        true
    }
    fn storage(&self) -> StorageStats {
        StorageStats { capacity_bytes: 0, used_bytes: 0, opr_count: 0 }
    }
}

/// One actor task in the synthetic load: starts at `start_us`, then
/// alternates lossy cross-domain messages with virtual sleeps.
#[derive(Debug, Clone)]
struct TaskPlan {
    start_us: u32,
    hops: Vec<(u8, u8, u32)>,
}

fn task_plan() -> impl Strategy<Value = TaskPlan> {
    (
        0u32..3_000_000,
        proptest::collection::vec((0u8..3, 0u8..3, 0u32..400_000), 1..10),
    )
        .prop_map(|(start_us, hops)| TaskPlan { start_us, hops })
}

/// Runs the synthetic load once and returns everything observable.
fn run_once(seed: u64, load: &[TaskPlan]) -> (String, MetricsSnapshot, SimRunStats, String) {
    let topo = DomainTopology::uniform(
        3,
        SimDuration::from_micros(200),
        SimDuration::from_millis(5),
    );
    let fabric = Fabric::new(topo, seed);
    // Seed-derived loss everywhere, so every hop draws from the shared
    // deterministic stream.
    let p = 0.05 + (seed % 25) as f64 / 100.0;
    fabric.with_topology(|t| {
        for a in 0..3u16 {
            for b in 0..3u16 {
                t.set_drop_prob(DomainId(a), DomainId(b), p);
            }
        }
    });
    let endpoints: Vec<Loid> = (0..3u64)
        .map(|d| {
            let loid = Loid::synthetic(LoidKind::Vault, 900 + d);
            fabric.register_vault(Arc::new(PinnedEndpoint(loid)), DomainId(d as u16));
            loid
        })
        .collect();
    let sink = fabric.enable_tracing();
    let sim = SimHandle::new(Arc::clone(fabric.clock()));
    fabric.attach_sim(sim.clone());
    fabric.set_wire_emulation(1);

    // A fault plan that actually bites: one partition, one link burst,
    // each firing (and healing) as its own scheduled event.
    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(1),
            FaultAction::Partition {
                a: DomainId(0),
                b: DomainId(1),
                heal_at: SimTime::from_secs(2),
            },
        )
        .at(
            SimTime::from_secs(2),
            FaultAction::DegradeLinks {
                drop_prob: 0.5,
                extra_latency: SimDuration::from_millis(40),
                until: SimTime::from_secs(3),
            },
        );
    for at in plan.firing_times() {
        let fabric = Arc::clone(&fabric);
        sim.schedule_at(at, format!("faults@{at}"), move |h| fabric.fire_due_faults(h.now()));
    }
    fabric.install_fault_plan(plan);

    for (i, task) in load.iter().enumerate() {
        let fabric = Arc::clone(&fabric);
        let sink = Arc::clone(&sink);
        let endpoints = endpoints.clone();
        let task = task.clone();
        sim.schedule_at(
            SimTime::from_micros(task.start_us as u64),
            format!("arrive:{i}"),
            move |h| {
                h.spawn(format!("task-{i}"), move |h| {
                    let episode =
                        sink.begin_episode("prop-task", endpoints[i % endpoints.len()]);
                    episode.attr("task", i as i64);
                    for (hop, (from, to, gap)) in task.hops.iter().enumerate() {
                        let span = sink.span(SpanKind::ReserveAttempt);
                        span.attr("hop", hop as i64);
                        let delivered = fabric
                            .link(
                                endpoints[*from as usize % 3],
                                endpoints[*to as usize % 3],
                            )
                            .is_ok();
                        span.attr("delivered", delivered);
                        drop(span);
                        h.sleep(SimDuration::from_micros(*gap as u64));
                    }
                });
            },
        );
    }

    let stats = sim.run().unwrap_or_else(|e| panic!("{e}"));
    let schedule = sim.format_schedule(usize::MAX);
    fabric.detach_sim();
    (legion_trace::trace_json(&sink), fabric.metrics().snapshot(), stats, schedule)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The determinism law: seed + load fully determine the run.
    #[test]
    fn two_runs_are_byte_identical(
        seed in any::<u64>(),
        load in proptest::collection::vec(task_plan(), 1..12),
    ) {
        let (json_a, metrics_a, stats_a, sched_a) = run_once(seed, &load);
        let (json_b, metrics_b, stats_b, sched_b) = run_once(seed, &load);
        prop_assert_eq!(stats_a, stats_b, "event counts diverged");
        prop_assert_eq!(&sched_a, &sched_b, "event schedules diverged");
        prop_assert_eq!(metrics_a, metrics_b, "ledger snapshots diverged");
        prop_assert!(json_a == json_b, "trace JSON diverged for seed {:#x}", seed);
        prop_assert!(json_a.contains("legion-trace/v1"), "export carries the schema tag");
        // The load was not degenerate: messages were metered and traced.
        prop_assert!(metrics_a.messages > 0);
        prop_assert!(json_a.contains("prop-task"));
    }
}
