//! Property-based tests on the trace sink and histograms.
//!
//! The sink must stay structurally sound under *any* interleaving of
//! span opens, out-of-order closes, clock advances and latency charges:
//! no span ends before it starts, no child outlives its parentage (a
//! recorded parent id always names a recorded span that opened first),
//! and the per-stage histograms count exactly the closed spans.

use legion_trace::{HistogramSnapshot, SpanKind, TraceSink};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use legion_core::{Loid, SimDuration, SimTime};

/// One scripted action against the sink.
#[derive(Debug, Clone)]
enum Op {
    /// Open a span of `SpanKind::ALL[kind]` and push its guard.
    Open { kind: usize },
    /// Open an episode (a root span) and push its guard.
    OpenEpisode,
    /// Close the guard at `slot % live.len()` (drop path, any order).
    Close { slot: usize },
    /// Advance the fake virtual clock.
    Advance { us: u32 },
    /// Charge message latency to whatever span is innermost.
    Charge { us: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SpanKind::COUNT).prop_map(|kind| Op::Open { kind }),
        Just(Op::OpenEpisode),
        (0usize..64).prop_map(|slot| Op::Close { slot }),
        (0u32..5_000_000).prop_map(|us| Op::Advance { us }),
        (0u32..2_000_000).prop_map(|us| Op::Charge { us }),
    ]
}

/// Guards of either flavour, closable in any order. The fields exist
/// only to keep the guards alive until the script closes them.
#[allow(dead_code)]
enum Live {
    Span(legion_trace::SpanGuard),
    Episode(legion_trace::EpisodeGuard),
}

proptest! {
    /// Arbitrary interleavings leave the sink structurally sound.
    #[test]
    fn interleaved_spans_stay_sound(ops in proptest::collection::vec(arb_op(), 0..80)) {
        let sink = TraceSink::new();
        sink.enable();
        let t = Arc::new(AtomicU64::new(0));
        let tc = Arc::clone(&t);
        sink.set_clock(Arc::new(move || SimTime::from_micros(tc.load(Ordering::Relaxed))));

        let mut live: Vec<Live> = Vec::new();
        for op in ops {
            match op {
                Op::Open { kind } => live.push(Live::Span(sink.span(SpanKind::ALL[kind]))),
                Op::OpenEpisode => {
                    live.push(Live::Episode(sink.begin_episode("prop", Loid::NIL)))
                }
                Op::Close { slot } => {
                    if !live.is_empty() {
                        let i = slot % live.len();
                        drop(live.remove(i));
                    }
                }
                Op::Advance { us } => {
                    t.fetch_add(u64::from(us), Ordering::Relaxed);
                }
                Op::Charge { us } => {
                    legion_trace::charge_active(SimDuration::from_micros(u64::from(us)));
                }
            }
        }
        drop(live);

        prop_assert_eq!(sink.open_spans(), 0, "every guard closed its span");
        let spans = sink.spans();
        for s in &spans {
            prop_assert!(s.end >= s.start, "span ended before it started: {:?}", s);
            if s.parent.is_some() {
                let parent = spans.iter().find(|p| p.id == s.parent);
                prop_assert!(parent.is_some(), "orphaned child: {:?}", s);
                prop_assert!(parent.unwrap().id < s.id, "parent opened after child: {:?}", s);
            }
        }

        // Histograms count exactly the closed spans, stage by stage.
        let mut total = 0;
        for kind in SpanKind::ALL {
            let expected = spans.iter().filter(|s| s.kind == kind).count() as u64;
            prop_assert_eq!(sink.histogram(kind).count(), expected);
            total += expected;
        }
        prop_assert_eq!(total, spans.len() as u64);
        prop_assert_eq!(sink.rollup().total(), spans.len() as u64);
    }

    /// Histogram merge is commutative, and counts/sums are exact.
    #[test]
    fn histogram_merge_commutes(
        xs in proptest::collection::vec(0u64..10_000_000, 0..40),
        ys in proptest::collection::vec(0u64..10_000_000, 0..40),
    ) {
        let snap = |vals: &[u64]| {
            let mut h = HistogramSnapshot::empty();
            for &v in vals {
                h.record(SimDuration::from_micros(v));
            }
            h
        };
        let (a, b) = (snap(&xs), snap(&ys));
        let ab = a.merge(&b);
        let ba = b.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
        let sum: u64 = xs.iter().chain(ys.iter()).sum();
        prop_assert_eq!(ab.sum_us, sum);
        prop_assert_eq!(ab.max_us, xs.iter().chain(ys.iter()).copied().max().unwrap_or(0));
    }

    /// Histogram merge is associative.
    #[test]
    fn histogram_merge_associates(
        xs in proptest::collection::vec(0u64..10_000_000, 0..30),
        ys in proptest::collection::vec(0u64..10_000_000, 0..30),
        zs in proptest::collection::vec(0u64..10_000_000, 0..30),
    ) {
        let snap = |vals: &[u64]| {
            let mut h = HistogramSnapshot::empty();
            for &v in vals {
                h.record(SimDuration::from_micros(v));
            }
            h
        };
        let (a, b, c) = (snap(&xs), snap(&ys), snap(&zs));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    /// Quantiles are monotone in `q` and bounded by the observed max.
    #[test]
    fn quantiles_monotone_and_bounded(
        xs in proptest::collection::vec(0u64..100_000_000, 1..50),
    ) {
        let mut h = HistogramSnapshot::empty();
        for &v in &xs {
            h.record(SimDuration::from_micros(v));
        }
        let max = *xs.iter().max().unwrap();
        let mut prev = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let v = h.quantile_us(q);
            prop_assert!(v >= prev, "quantiles must not decrease");
            prop_assert!(v <= max, "quantile {} exceeds observed max {}", v, max);
            prev = v;
        }
    }
}
